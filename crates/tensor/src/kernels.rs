//! The shared parallel kernel layer.
//!
//! Every dense hot path in the workspace — the autograd tape, the ViT
//! forward/backward, the functional dataflow checks and the benchmark
//! harness — routes its inner loops through this module instead of
//! open-coding them. Kernels come in three selectable backends:
//!
//! * [`Backend::Scalar`] — textbook reference loops (`i–j–k` dot-product
//!   GEMM, one row at a time for row-wise ops). Slow, obviously correct,
//!   and the yardstick the simulator's operation counts are audited
//!   against.
//! * [`Backend::Blocked`] — cache-blocked, thread-parallel kernels. GEMMs
//!   run in `i–k–j` order with the shared `k` dimension tiled into panels
//!   of [`K_BLOCK`] rows so the right-hand panel stays cache-resident
//!   while output rows stream; transposed flavours are reduced to the
//!   same kernel via a tiled transpose. Row-wise ops (softmax, LayerNorm,
//!   bias, elementwise maps) fan rows out across scoped threads.
//! * [`Backend::Simd`] — lane-friendly GEMM microkernels built on
//!   fixed-width `[f32; LANES]` accumulator blocks the compiler
//!   autovectorizes (no intrinsics, no `unsafe`). When the right-hand
//!   operand fits in cache, two lane blocks of each output row stay in
//!   registers across the full `k` reduction; for larger operands the
//!   kernel falls back to a lane-blocked row sweep. Row-wise ops share
//!   the Blocked implementation — they are bandwidth-bound and already
//!   vectorise.
//!
//! # Backend-selection contract
//!
//! The process-wide backend defaults to `Blocked`, can be pre-selected
//! per process via the `VITCOD_BACKEND` environment variable
//! (`scalar` | `blocked` | `simd`, read once on first use), and can be
//! switched at runtime with [`set_backend`] (or per call with the
//! `*_with` variants). **All backends produce bit-identical results**:
//! every kernel accumulates each output element along ascending `k` in a
//! single dependency chain, so blocking, lane tiling and row-parallelism
//! reorder *independent* elements only, never the floating-point
//! reduction itself. Property tests assert exact equality between
//! backends; new kernels must either preserve the invariant or document
//! a tolerance.
//!
//! Thread fan-out uses `std::thread::scope` (no work-stealing runtime and
//! no `unsafe`): outputs are split into disjoint `&mut` chunks, one per
//! worker. The worker count defaults to the machine's available
//! parallelism, clamped by [`set_num_threads`] or the
//! `VITCOD_NUM_THREADS` environment variable, and degrades to plain
//! sequential execution when a kernel's work is too small to amortise a
//! spawn.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::ops::softmax_row;
use crate::Matrix;

/// Number of `k` rows per cache panel in the blocked GEMM: a panel of the
/// right-hand operand (`K_BLOCK × n` floats) is reused across every output
/// row before the next panel is streamed in.
pub const K_BLOCK: usize = 64;

/// Tile edge for the blocked transpose.
const TRANSPOSE_TILE: usize = 32;

/// Lane width of the Simd backend's accumulator blocks: eight `f32`
/// (one 256-bit vector register, or two 128-bit ones on narrower
/// machines — either way a width the autovectorizer handles).
pub const LANES: usize = 8;

/// The Simd GEMM keeps output tiles in registers only while the
/// right-hand operand is small enough to stay cache-resident across the
/// row sweep; past this footprint the strided column walk thrashes and
/// the kernel switches to its lane-blocked row sweep.
const SIMD_B_RESIDENT_BYTES: usize = 4 << 20;

/// Minimum per-thread work (elements touched, or MACs for GEMM-shaped
/// kernels) before a kernel fans out: a scoped-thread spawn/join costs
/// tens of microseconds, so each worker must bring at least ~100 µs of
/// compute for the fan-out to win.
const MIN_WORK_PER_THREAD: usize = 128 * 1024;

/// Kernel implementation selector. See the [module docs](self) for the
/// agreement contract between the three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Textbook reference loops; slow but auditable.
    Scalar,
    /// Cache-blocked, thread-parallel kernels (the default).
    #[default]
    Blocked,
    /// Lane-tiled autovectorized kernels (`[f32; LANES]` register
    /// accumulators); bit-identical to the other two by construction.
    Simd,
}

impl std::fmt::Display for Backend {
    /// Lower-case name, the inverse of [`FromStr`](std::str::FromStr) —
    /// what `VITCOD_BACKEND` accepts and what observability labels
    /// (`/v1/metrics`, `/v1/stats`) report.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Scalar => "scalar",
            Backend::Blocked => "blocked",
            Backend::Simd => "simd",
        })
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(Backend::Scalar),
            "blocked" => Ok(Backend::Blocked),
            "simd" => Ok(Backend::Simd),
            other => Err(format!(
                "unknown backend '{other}' (expected scalar | blocked | simd)"
            )),
        }
    }
}

/// Sentinel for "process backend not chosen yet": the first [`backend`]
/// call resolves it from `VITCOD_BACKEND` (kernels sit on the hot path,
/// so the environment is consulted once, not per call).
const BACKEND_UNSET: u8 = u8::MAX - 1;

static BACKEND: AtomicU8 = AtomicU8::new(BACKEND_UNSET);

/// Process-default backend: `VITCOD_BACKEND` if set and valid,
/// otherwise `Blocked`.
fn default_backend() -> Backend {
    static DEFAULT: OnceLock<Backend> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        // vitcod-lint: allow(V004, read once behind a OnceLock at first kernel call; the resolved backend never changes mid-process)
        std::env::var("VITCOD_BACKEND")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(Backend::Blocked)
    })
}

/// Sentinel for "no thread-local backend override installed".
const NO_BACKEND_OVERRIDE: u8 = u8::MAX;

std::thread_local! {
    /// Per-thread backend override installed by [`with_backend_override`].
    static BACKEND_OVERRIDE: std::cell::Cell<u8> =
        const { std::cell::Cell::new(NO_BACKEND_OVERRIDE) };
}

/// Selects the process-wide kernel backend.
pub fn set_backend(backend: Backend) {
    BACKEND.store(backend as u8, Ordering::Relaxed);
}

/// Currently selected backend: this thread's [`with_backend_override`]
/// scope if one is active, otherwise the process-wide setting.
pub fn backend() -> Backend {
    let local = BACKEND_OVERRIDE.with(|cell| cell.get());
    let raw = if local != NO_BACKEND_OVERRIDE {
        local
    } else {
        BACKEND.load(Ordering::Relaxed)
    };
    match raw {
        0 => Backend::Scalar,
        1 => Backend::Blocked,
        2 => Backend::Simd,
        _ => default_backend(),
    }
}

/// Runs `f` with `backend` selected *for this thread only*, restoring
/// the previous selection on exit (including panic unwinds). This is
/// how callers pin a backend per scope — e.g. a serving engine pinned
/// to the Scalar reference for auditing — without racing other threads
/// on the process-wide setting.
pub fn with_backend_override<T>(backend: Backend, f: impl FnOnce() -> T) -> T {
    BACKEND_OVERRIDE.with(|cell| {
        struct Restore<'a>(&'a std::cell::Cell<u8>, u8);
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                self.0.set(self.1);
            }
        }
        let _restore = Restore(cell, cell.replace(backend as u8));
        f()
    })
}

static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// Per-thread budget cap installed by [`with_thread_budget`]; `0`
    /// means no override.
    static THREAD_BUDGET: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Caps the worker-thread count (`0` restores the automatic default:
/// `VITCOD_NUM_THREADS` if set, otherwise the machine's available
/// parallelism).
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n, Ordering::Relaxed);
}

/// Runs `f` with this thread's kernel worker budget capped at `n`
/// (`0` removes the cap). Callers that fan work out at a coarser grain
/// — e.g. a serving engine spreading samples across its own workers —
/// wrap the per-worker body in this so the inner kernels do not
/// multiply the outer fan-out into `threads²` oversubscription. The cap
/// only changes how many workers a kernel spawns, never its values (the
/// backend-agreement contract).
pub fn with_thread_budget<T>(n: usize, f: impl FnOnce() -> T) -> T {
    THREAD_BUDGET.with(|cell| {
        struct Restore<'a>(&'a std::cell::Cell<usize>, usize);
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                self.0.set(self.1);
            }
        }
        let _restore = Restore(cell, cell.replace(n));
        f()
    })
}

/// Resolved worker-thread budget.
pub fn num_threads() -> usize {
    let local = THREAD_BUDGET.with(|cell| cell.get());
    if local > 0 {
        return local;
    }
    let configured = NUM_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    // The env fallback is resolved once: kernels sit on the hot path and
    // must not take the environment lock per call.
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| {
        // vitcod-lint: allow(V004, read once behind a OnceLock at first kernel call; the resolved thread budget never changes mid-process)
        std::env::var("VITCOD_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Worker count for `items` units of `work_per_item` compute each,
/// capped so every worker gets at least [`MIN_WORK_PER_THREAD`].
fn effective_threads(items: usize, work_per_item: usize) -> usize {
    if items == 0 {
        return 1;
    }
    let total_work = items.saturating_mul(work_per_item.max(1));
    num_threads()
        .min(total_work / MIN_WORK_PER_THREAD + 1)
        .min(items)
        .max(1)
}

/// Thread-local state a parallel driver hands to the workers it spawns:
/// the caller's budget divided among `workers` (so nested kernels cannot
/// re-expand to full machine parallelism — budget is conserved across
/// fan-out levels) plus the caller's backend override verbatim.
fn inherited_overrides(workers: usize) -> (usize, u8) {
    let budget = (num_threads() / workers.max(1)).max(1);
    (budget, BACKEND_OVERRIDE.with(|cell| cell.get()))
}

/// Installs [`inherited_overrides`] state on a fresh scoped worker
/// thread (no restore needed — the thread ends with `f`).
fn with_inherited<T>((budget, backend): (usize, u8), f: impl FnOnce() -> T) -> T {
    THREAD_BUDGET.with(|cell| cell.set(budget));
    BACKEND_OVERRIDE.with(|cell| cell.set(backend));
    f()
}

// ---------------------------------------------------------------------------
// Parallel driving helpers
// ---------------------------------------------------------------------------

/// Runs `f(first_row, chunk)` over contiguous row chunks of a row-major
/// buffer, in parallel when the total work warrants it.
///
/// `data.len()` must be a multiple of `cols`; each invocation receives a
/// disjoint `&mut` window starting at row `first_row`. The work estimate
/// assumes ~`cols` operations per row; kernels that do more per row
/// (GEMM does `cols · k` MACs) should use
/// [`for_each_row_chunk_weighted`] so wide-but-short outputs still fan
/// out.
pub fn for_each_row_chunk<T: Send>(
    data: &mut [T],
    cols: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    for_each_row_chunk_weighted(data, cols, cols, f)
}

/// [`for_each_row_chunk`] with an explicit per-row work estimate
/// (elements touched or MACs), used to decide the fan-out.
pub fn for_each_row_chunk_weighted<T: Send>(
    data: &mut [T],
    cols: usize,
    work_per_row: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    if data.is_empty() || cols == 0 {
        return;
    }
    debug_assert_eq!(
        data.len() % cols,
        0,
        "buffer is not row-major of width cols"
    );
    let rows = data.len() / cols;
    let threads = effective_threads(rows, work_per_row);
    if threads <= 1 {
        f(0, data);
        return;
    }
    let rows_per = rows.div_ceil(threads);
    let ov = inherited_overrides(threads);
    std::thread::scope(|scope| {
        for (i, chunk) in data.chunks_mut(rows_per * cols).enumerate() {
            let f = &f;
            scope.spawn(move || with_inherited(ov, || f(i * rows_per, chunk)));
        }
    });
}

/// Splits `data` at the ascending `bounds` (which must start at `0` and
/// end at `data.len()`) and runs `f(segment_index, segment)` for each
/// piece, in parallel when there is more than one worker available.
///
/// This is the driver for CSC-ordered workloads: the caller partitions a
/// values buffer at column boundaries and each worker owns a disjoint
/// column range.
pub fn par_segments<T: Send>(data: &mut [T], bounds: &[usize], f: impl Fn(usize, &mut [T]) + Sync) {
    assert!(bounds.len() >= 2, "need at least one segment");
    assert_eq!(*bounds.first().unwrap(), 0, "bounds must start at 0");
    assert_eq!(
        *bounds.last().unwrap(),
        data.len(),
        "bounds must end at data.len()"
    );
    let segments = bounds.len() - 1;
    if segments == 1 || num_threads() <= 1 {
        let mut rest = data;
        let mut offset = 0;
        for (i, w) in bounds.windows(2).enumerate() {
            let (seg, tail) = rest.split_at_mut(w[1] - offset);
            f(i, seg);
            rest = tail;
            offset = w[1];
        }
        return;
    }
    let ov = inherited_overrides(segments);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut offset = 0;
        for (i, w) in bounds.windows(2).enumerate() {
            let (seg, tail) = rest.split_at_mut(w[1] - offset);
            let f = &f;
            scope.spawn(move || with_inherited(ov, || f(i, seg)));
            rest = tail;
            offset = w[1];
        }
    });
}

/// Builds a `Vec` of `n` items where item `i` is `f(i)`, fanning the
/// calls out across scoped threads when `n · work_per_item` justifies
/// the spawns. Used to parallelise per-head and per-sample work that
/// produces owned values.
pub fn par_map_collect<T: Send, F: Fn(usize) -> T + Sync>(
    n: usize,
    work_per_item: usize,
    f: F,
) -> Vec<T> {
    let threads = effective_threads(n, work_per_item);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let per = n.div_ceil(threads);
    let ov = inherited_overrides(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                let range = t * per..((t + 1) * per).min(n);
                scope.spawn(move || with_inherited(ov, || range.map(f).collect::<Vec<T>>()))
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for handle in handles {
            out.extend(handle.join().expect("kernel worker panicked"));
        }
        out
    })
}

// ---------------------------------------------------------------------------
// GEMM flavours
// ---------------------------------------------------------------------------

/// Matrix product `a · b` on the ambient backend.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    matmul_with(backend(), a, b)
}

/// Matrix product `a · b` on an explicit backend.
pub fn matmul_with(backend: Backend, a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul inner dimensions differ: {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    match backend {
        Backend::Scalar => scalar_matmul(a, b),
        Backend::Blocked => blocked_matmul(a, b),
        Backend::Simd => simd_matmul(a, b),
    }
}

/// Matrix product with a transposed right-hand side, `a · bᵀ`, on the
/// ambient backend. This is attention's `S = Q · Kᵀ` layout: both
/// operands token-major.
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    matmul_nt_with(backend(), a, b)
}

/// `a · bᵀ` on an explicit backend.
pub fn matmul_nt_with(backend: Backend, a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt inner dimensions differ: {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    match backend {
        Backend::Scalar => scalar_matmul_nt(a, b),
        // Reduction to the direct kernel: out[i][j] = Σ_k a[i,k]·bᵀ[k,j]
        // visits k in the same ascending order as the direct dot product,
        // so the transpose changes layout, not numerics.
        Backend::Blocked => blocked_matmul(a, &transpose_with(Backend::Blocked, b)),
        Backend::Simd => simd_matmul(a, &transpose_with(Backend::Simd, b)),
    }
}

/// Matrix product with a transposed left-hand side, `aᵀ · b`, on the
/// ambient backend.
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    matmul_tn_with(backend(), a, b)
}

/// `aᵀ · b` on an explicit backend.
pub fn matmul_tn_with(backend: Backend, a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn inner dimensions differ: {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    match backend {
        Backend::Scalar => scalar_matmul_tn(a, b),
        Backend::Blocked => blocked_matmul(&transpose_with(Backend::Blocked, a), b),
        Backend::Simd => simd_matmul(&transpose_with(Backend::Simd, a), b),
    }
}

/// Transpose on the ambient backend.
pub fn transpose(a: &Matrix) -> Matrix {
    transpose_with(backend(), a)
}

/// Transpose on an explicit backend. The blocked flavour walks
/// [`TRANSPOSE_TILE`]-square tiles so both the source and destination are
/// touched a cache line at a time, and fans output rows across threads.
pub fn transpose_with(backend: Backend, a: &Matrix) -> Matrix {
    let (rows, cols) = a.shape();
    let mut out = Matrix::zeros(cols, rows);
    if a.is_empty() {
        return out;
    }
    match backend {
        Backend::Scalar => {
            let src = a.as_slice();
            let dst = out.as_mut_slice();
            for r in 0..rows {
                for c in 0..cols {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
        Backend::Blocked | Backend::Simd => {
            let src = a.as_slice();
            // Parallel over output row chunks; each output row is a
            // source column, so chunks read disjoint column stripes.
            for_each_row_chunk(out.as_mut_slice(), rows, |first_out_row, chunk| {
                let out_rows = chunk.len() / rows;
                for c0 in (0..out_rows).step_by(TRANSPOSE_TILE) {
                    let c1 = (c0 + TRANSPOSE_TILE).min(out_rows);
                    for r0 in (0..rows).step_by(TRANSPOSE_TILE) {
                        let r1 = (r0 + TRANSPOSE_TILE).min(rows);
                        for c in c0..c1 {
                            let col = first_out_row + c;
                            for r in r0..r1 {
                                chunk[c * rows + r] = src[r * cols + col];
                            }
                        }
                    }
                }
            });
        }
    }
    out
}

/// Textbook `i–j–k` GEMM: per-element dot products with a column-strided
/// walk of `b`. Kept deliberately naive — this is the reference the
/// blocked kernel (and the simulator's MAC counts) are audited against.
fn scalar_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, kdim) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..kdim {
                acc += av[i * kdim + k] * bv[k * n + j];
            }
            ov[i * n + j] = acc;
        }
    }
    out
}

fn scalar_matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, kdim) = a.shape();
    let n = b.rows();
    let mut out = Matrix::zeros(m, n);
    let ov = out.as_mut_slice();
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let brow = b.row(j);
            let mut acc = 0.0f32;
            for k in 0..kdim {
                acc += arow[k] * brow[k];
            }
            ov[i * n + j] = acc;
        }
    }
    out
}

fn scalar_matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let (kdim, m) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..kdim {
                acc += av[k * m + i] * bv[k * n + j];
            }
            ov[i * n + j] = acc;
        }
    }
    out
}

/// Cache-blocked `i–k–j` GEMM, row-parallel over the output.
///
/// The shared dimension is tiled into [`K_BLOCK`]-row panels of `b`; for
/// each panel every output row streams once, with the unit-stride inner
/// loop `out_row += a_ik · b_row` vectorising cleanly. Because panels are
/// visited in ascending `k`, each output element still accumulates in the
/// exact order of the scalar reference (see the module docs).
fn blocked_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, kdim) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 || kdim == 0 {
        return out;
    }
    let av = a.as_slice();
    let bv = b.as_slice();
    // Each output row costs kdim · n MACs, far more than the n elements
    // it holds — weight the fan-out decision accordingly.
    for_each_row_chunk_weighted(out.as_mut_slice(), n, kdim * n, |first_row, chunk| {
        let chunk_rows = chunk.len() / n;
        for k0 in (0..kdim).step_by(K_BLOCK) {
            let k1 = (k0 + K_BLOCK).min(kdim);
            for ci in 0..chunk_rows {
                let arow = &av[(first_row + ci) * kdim..(first_row + ci + 1) * kdim];
                let orow = &mut chunk[ci * n..(ci + 1) * n];
                for (k, &aik) in arow[k0..k1].iter().enumerate() {
                    // Exact-zero skip: masked/sparse operands carry many
                    // structural zeros, and `acc + 0·x` is a bitwise no-op
                    // for finite data, so parity with Scalar is preserved.
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &bv[(k0 + k) * n..(k0 + k + 1) * n];
                    for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
                        *o += aik * bkj;
                    }
                }
            }
        }
    });
    out
}

/// Lane-tiled GEMM, row-parallel over the output.
///
/// Two shapes, chosen by the right-hand operand's footprint:
///
/// * **Register tiles** (`b` cache-resident): for each 2·[`LANES`]-wide
///   column tile, every output row carries two `[f32; LANES]`
///   accumulator blocks in registers across the *full* `k` reduction —
///   one load of `a` per scalar, one streamed read of `b` per row, one
///   store per output element. This is the fast path for the
///   transformer projection shapes.
/// * **Row sweep** (`b` larger than [`SIMD_B_RESIDENT_BYTES`]): the
///   blocked `i–k–j` panel walk with an explicit lane-blocked inner
///   loop, accumulating into the output row in memory.
///
/// Both paths reduce each output element along ascending `k` in a
/// single dependency chain — no per-panel partial sums are ever folded
/// together — so results are bit-identical to the Scalar reference.
/// Unlike [`blocked_matmul`] there is no exact-zero skip: skipping
/// depends on values, and the tiled loads here are cheaper than the
/// branch.
fn simd_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, kdim) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 || kdim == 0 {
        return out;
    }
    let av = a.as_slice();
    let bv = b.as_slice();
    let b_resident = kdim * n * std::mem::size_of::<f32>() <= SIMD_B_RESIDENT_BYTES;
    for_each_row_chunk_weighted(out.as_mut_slice(), n, kdim * n, |first_row, chunk| {
        if b_resident {
            simd_register_tiles(av, bv, chunk, first_row, kdim, n);
        } else {
            simd_row_sweep(av, bv, chunk, first_row, kdim, n);
        }
    });
    out
}

/// Register-tile path of [`simd_matmul`]: column-tile outer, row inner,
/// full-`k` register accumulation.
fn simd_register_tiles(
    av: &[f32],
    bv: &[f32],
    chunk: &mut [f32],
    first_row: usize,
    kdim: usize,
    n: usize,
) {
    let chunk_rows = chunk.len() / n;
    const TILE: usize = 2 * LANES;
    let mut j = 0;
    while j + TILE <= n {
        for ci in 0..chunk_rows {
            let arow = &av[(first_row + ci) * kdim..(first_row + ci + 1) * kdim];
            let mut acc0 = [0.0f32; LANES];
            let mut acc1 = [0.0f32; LANES];
            for (kk, &aik) in arow.iter().enumerate() {
                let brow = &bv[kk * n + j..kk * n + j + TILE];
                for l in 0..LANES {
                    acc0[l] += aik * brow[l];
                }
                for l in 0..LANES {
                    acc1[l] += aik * brow[LANES + l];
                }
            }
            let orow = &mut chunk[ci * n + j..ci * n + j + TILE];
            orow[..LANES].copy_from_slice(&acc0);
            orow[LANES..].copy_from_slice(&acc1);
        }
        j += TILE;
    }
    // Tail columns that do not fill a tile: one full-k scalar chain per
    // element, still ascending k.
    for jj in j..n {
        for ci in 0..chunk_rows {
            let arow = &av[(first_row + ci) * kdim..(first_row + ci + 1) * kdim];
            let mut acc = 0.0f32;
            for (kk, &aik) in arow.iter().enumerate() {
                acc += aik * bv[kk * n + jj];
            }
            chunk[ci * n + jj] = acc;
        }
    }
}

/// Row-sweep path of [`simd_matmul`]: `i–k–j` panels like the blocked
/// kernel, with the `j` loop explicitly lane-blocked.
fn simd_row_sweep(
    av: &[f32],
    bv: &[f32],
    chunk: &mut [f32],
    first_row: usize,
    kdim: usize,
    n: usize,
) {
    let chunk_rows = chunk.len() / n;
    let lanes_end = n - n % LANES;
    for k0 in (0..kdim).step_by(K_BLOCK) {
        let k1 = (k0 + K_BLOCK).min(kdim);
        for ci in 0..chunk_rows {
            let arow = &av[(first_row + ci) * kdim..(first_row + ci + 1) * kdim];
            let orow = &mut chunk[ci * n..(ci + 1) * n];
            for (k, &aik) in arow[k0..k1].iter().enumerate() {
                let brow = &bv[(k0 + k) * n..(k0 + k + 1) * n];
                let (olanes, otail) = orow.split_at_mut(lanes_end);
                for (oblk, bblk) in olanes
                    .chunks_exact_mut(LANES)
                    .zip(brow[..lanes_end].chunks_exact(LANES))
                {
                    for l in 0..LANES {
                        oblk[l] += aik * bblk[l];
                    }
                }
                for (o, &bkj) in otail.iter_mut().zip(brow[lanes_end..].iter()) {
                    *o += aik * bkj;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Row-wise and elementwise ops
// ---------------------------------------------------------------------------

/// Row-wise softmax on the ambient backend (row-parallel when blocked).
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    let cols = x.cols();
    match backend() {
        Backend::Scalar => {
            for r in 0..out.rows() {
                softmax_row(out.row_mut(r));
            }
        }
        Backend::Blocked | Backend::Simd => {
            for_each_row_chunk(out.as_mut_slice(), cols, |_, chunk| {
                for row in chunk.chunks_mut(cols) {
                    softmax_row(row);
                }
            });
        }
    }
    out
}

/// Backward of a row-wise softmax: given probabilities `p` and upstream
/// gradient `dp`, returns `ds` where
/// `ds = p ⊙ (dp − rowsum(dp ⊙ p))`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn softmax_backward(probs: &Matrix, dp: &Matrix) -> Matrix {
    assert_eq!(probs.shape(), dp.shape(), "softmax_backward shape mismatch");
    let cols = probs.cols();
    let mut out = Matrix::zeros(probs.rows(), cols);
    if cols == 0 {
        return out;
    }
    let pv = probs.as_slice();
    let dv = dp.as_slice();
    for_each_row_chunk(out.as_mut_slice(), cols, |first_row, chunk| {
        for (ci, orow) in chunk.chunks_mut(cols).enumerate() {
            let base = (first_row + ci) * cols;
            let prow = &pv[base..base + cols];
            let drow = &dv[base..base + cols];
            let mut dot = 0.0f32;
            for (p, d) in prow.iter().zip(drow.iter()) {
                dot += p * d;
            }
            for ((o, &p), &d) in orow.iter_mut().zip(prow).zip(drow) {
                *o = p * (d - dot);
            }
        }
    });
    out
}

/// Row-wise LayerNorm (inference form) on the ambient backend.
///
/// # Panics
///
/// Panics if `gamma`/`beta` lengths differ from `x.cols()`.
pub fn layernorm_rows(x: &Matrix, gamma: &[f32], beta: &[f32], eps: f32) -> Matrix {
    assert_eq!(gamma.len(), x.cols(), "gamma length mismatch");
    assert_eq!(beta.len(), x.cols(), "beta length mismatch");
    let cols = x.cols();
    let mut out = x.clone();
    if cols == 0 {
        return out;
    }
    let normalise = |row: &mut [f32]| {
        let n = row.len() as f32;
        let mean = row.iter().sum::<f32>() / n;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let inv = 1.0 / (var + eps).sqrt();
        for (i, v) in row.iter_mut().enumerate() {
            *v = (*v - mean) * inv * gamma[i] + beta[i];
        }
    };
    match backend() {
        Backend::Scalar => {
            for r in 0..out.rows() {
                normalise(out.row_mut(r));
            }
        }
        Backend::Blocked | Backend::Simd => {
            for_each_row_chunk(out.as_mut_slice(), cols, |_, chunk| {
                for row in chunk.chunks_mut(cols) {
                    normalise(row);
                }
            });
        }
    }
    out
}

/// Training-mode LayerNorm forward: returns `(out, normed, inv_std)`
/// where `normed` caches the pre-scale normalised activations and
/// `inv_std` the per-row `1/σ`, both needed by
/// [`layernorm_backward`].
///
/// # Panics
///
/// Panics if `gamma`/`beta` lengths differ from `x.cols()`.
pub fn layernorm_train_forward(
    x: &Matrix,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) -> (Matrix, Matrix, Vec<f32>) {
    assert_eq!(gamma.len(), x.cols(), "gamma length mismatch");
    assert_eq!(beta.len(), x.cols(), "beta length mismatch");
    let (rows, cols) = x.shape();
    let mut out = Matrix::zeros(rows, cols);
    let mut normed = Matrix::zeros(rows, cols);
    let mut inv_std = vec![0.0f32; rows];
    if rows == 0 || cols == 0 {
        return (out, normed, inv_std);
    }
    let xv = x.as_slice();
    // Per-row statistics (two reductions per row) fan out like the
    // elementwise passes that follow, so no stage of the op serialises.
    let stats = par_map_collect(rows, cols * 3, |r| {
        let row = &xv[r * cols..(r + 1) * cols];
        let n = cols as f32;
        let mean = row.iter().sum::<f32>() / n;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        (mean, 1.0 / (var + eps).sqrt())
    });
    let mut means = vec![0.0f32; rows];
    for (r, &(mean, inv)) in stats.iter().enumerate() {
        means[r] = mean;
        inv_std[r] = inv;
    }
    for_each_row_chunk(normed.as_mut_slice(), cols, |first_row, chunk| {
        for (ci, nrow) in chunk.chunks_mut(cols).enumerate() {
            let r = first_row + ci;
            let xrow = &xv[r * cols..(r + 1) * cols];
            for (n, &xval) in nrow.iter_mut().zip(xrow.iter()) {
                *n = (xval - means[r]) * inv_std[r];
            }
        }
    });
    let nv = normed.as_slice();
    for_each_row_chunk(out.as_mut_slice(), cols, |first_row, chunk| {
        for (ci, orow) in chunk.chunks_mut(cols).enumerate() {
            let base = (first_row + ci) * cols;
            for (c, o) in orow.iter_mut().enumerate() {
                *o = nv[base + c] * gamma[c] + beta[c];
            }
        }
    });
    (out, normed, inv_std)
}

/// Backward of [`layernorm_train_forward`]: returns `(gx, ggamma, gbeta)`.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn layernorm_backward(
    gout: &Matrix,
    normed: &Matrix,
    inv_std: &[f32],
    gamma: &[f32],
) -> (Matrix, Matrix, Matrix) {
    let (rows, cols) = gout.shape();
    assert_eq!(normed.shape(), (rows, cols), "normed shape mismatch");
    assert_eq!(inv_std.len(), rows, "inv_std length mismatch");
    assert_eq!(gamma.len(), cols, "gamma length mismatch");
    let mut gx = Matrix::zeros(rows, cols);
    let mut ggamma = Matrix::zeros(1, cols);
    let mut gbeta = Matrix::zeros(1, cols);
    if rows == 0 || cols == 0 {
        return (gx, ggamma, gbeta);
    }
    let gv = gout.as_slice();
    let nv = normed.as_slice();
    // gx is row-parallel; the 1×c parameter gradients are column
    // reductions over rows and stay sequential (they are O(rows·cols)
    // adds on 1×c outputs — cheap next to the gx pass).
    for_each_row_chunk(gx.as_mut_slice(), cols, |first_row, chunk| {
        let n = cols as f32;
        for (ci, grow) in chunk.chunks_mut(cols).enumerate() {
            let r = first_row + ci;
            let base = r * cols;
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            for c in 0..cols {
                let d = gv[base + c] * gamma[c];
                sum_dxhat += d;
                sum_dxhat_xhat += d * nv[base + c];
            }
            for (c, g) in grow.iter_mut().enumerate() {
                let d = gv[base + c] * gamma[c];
                let xh = nv[base + c];
                *g = inv_std[r] / n * (n * d - sum_dxhat - xh * sum_dxhat_xhat);
            }
        }
    });
    {
        let gg = ggamma.as_mut_slice();
        let gb = gbeta.as_mut_slice();
        for r in 0..rows {
            let base = r * cols;
            for c in 0..cols {
                gg[c] += gv[base + c] * nv[base + c];
                gb[c] += gv[base + c];
            }
        }
    }
    (gx, ggamma, gbeta)
}

/// Broadcast-adds a bias row to every row of `x` (row-parallel).
///
/// # Panics
///
/// Panics if `bias.len() != x.cols()`.
pub fn add_bias(x: &Matrix, bias: &[f32]) -> Matrix {
    assert_eq!(bias.len(), x.cols(), "bias length mismatch");
    let cols = x.cols();
    let mut out = x.clone();
    for_each_row_chunk(out.as_mut_slice(), cols, |_, chunk| {
        for row in chunk.chunks_mut(cols) {
            for (v, b) in row.iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }
    });
    out
}

/// Column sums as a `1 × cols` matrix (the gradient of a broadcast bias).
pub fn col_sums(x: &Matrix) -> Matrix {
    let (rows, cols) = x.shape();
    let mut out = Matrix::zeros(1, cols);
    let xv = x.as_slice();
    let ov = out.as_mut_slice();
    for r in 0..rows {
        for (o, &v) in ov.iter_mut().zip(&xv[r * cols..(r + 1) * cols]) {
            *o += v;
        }
    }
    out
}

/// Column means as a `1 × cols` matrix.
pub fn mean_rows(x: &Matrix) -> Matrix {
    let rows = x.rows().max(1) as f32;
    let mut out = col_sums(x);
    let inv = 1.0 / rows;
    for v in out.as_mut_slice() {
        *v *= inv;
    }
    out
}

/// Repeats a `1 × cols` row `rows` times, scaled by `scale` (the backward
/// of [`mean_rows`] uses `scale = 1/rows`).
///
/// # Panics
///
/// Panics if `row` is not a single row.
pub fn broadcast_row(row: &Matrix, rows: usize, scale: f32) -> Matrix {
    assert_eq!(row.rows(), 1, "broadcast_row needs a 1 x c matrix");
    let cols = row.cols();
    let mut out = Matrix::zeros(rows, cols);
    let rv = row.as_slice();
    for_each_row_chunk(out.as_mut_slice(), cols, |_, chunk| {
        for orow in chunk.chunks_mut(cols) {
            for (o, &v) in orow.iter_mut().zip(rv.iter()) {
                *o = v * scale;
            }
        }
    });
    out
}

/// Elementwise map (row-parallel when blocked).
pub fn map(x: &Matrix, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
    let mut out = x.clone();
    let cols = x.cols();
    match backend() {
        Backend::Scalar => {
            for v in out.as_mut_slice() {
                *v = f(*v);
            }
        }
        Backend::Blocked | Backend::Simd => {
            for_each_row_chunk(out.as_mut_slice(), cols.max(1), |_, chunk| {
                for v in chunk {
                    *v = f(*v);
                }
            });
        }
    }
    out
}

/// Elementwise binary map `f(a[i], b[i])` (row-parallel when blocked).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn zip_map(a: &Matrix, b: &Matrix, f: impl Fn(f32, f32) -> f32 + Sync) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "zip_map shape mismatch");
    let cols = a.cols();
    let mut out = a.clone();
    let bv = b.as_slice();
    match backend() {
        Backend::Scalar => {
            for (v, &w) in out.as_mut_slice().iter_mut().zip(bv) {
                *v = f(*v, w);
            }
        }
        Backend::Blocked | Backend::Simd => {
            for_each_row_chunk(out.as_mut_slice(), cols.max(1), |first_row, chunk| {
                let base = first_row * cols.max(1);
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = f(*v, bv[base + i]);
                }
            });
        }
    }
    out
}

/// Adds an additive attention-mask bias in place: finite entries add to
/// the score, `-inf` entries force the score to `-inf` (an exactly-zero
/// probability after softmax).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn apply_mask_bias(scores: &mut Matrix, bias: &Matrix) {
    assert_eq!(scores.shape(), bias.shape(), "mask shape mismatch");
    let cols = scores.cols();
    let bv = bias.as_slice();
    for_each_row_chunk(scores.as_mut_slice(), cols.max(1), |first_row, chunk| {
        let base = first_row * cols.max(1);
        for (i, s) in chunk.iter_mut().enumerate() {
            let b = bv[base + i];
            if b == f32::NEG_INFINITY {
                *s = f32::NEG_INFINITY;
            } else {
                *s += b;
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Head-mixing (the ViTCoD auto-encoder primitive)
// ---------------------------------------------------------------------------

/// Head-dimension mixing: with `a` of shape `n × (h_in·dk)` and `w` of
/// shape `h_in × h_out`, output head `j` is `Σ_i w[i,j] · head_i`
/// (token-row-parallel).
///
/// # Panics
///
/// Panics if `a.cols() != w.rows() · dk`.
pub fn head_mix(a: &Matrix, w: &Matrix, dk: usize) -> Matrix {
    let (h_in, h_out) = w.shape();
    assert_eq!(a.cols(), h_in * dk, "input cols must equal h_in * dk");
    let n = a.rows();
    let mut out = Matrix::zeros(n, h_out * dk);
    if n == 0 || h_out == 0 || dk == 0 {
        return out;
    }
    let av = a.as_slice();
    let wv = w.as_slice();
    let in_cols = h_in * dk;
    let out_cols = h_out * dk;
    for_each_row_chunk_weighted(
        out.as_mut_slice(),
        out_cols,
        in_cols * h_out,
        |first_row, chunk| {
            for (ci, orow) in chunk.chunks_mut(out_cols).enumerate() {
                let arow = &av[(first_row + ci) * in_cols..(first_row + ci + 1) * in_cols];
                for j in 0..h_out {
                    let oseg = &mut orow[j * dk..(j + 1) * dk];
                    for i in 0..h_in {
                        let wij = wv[i * h_out + j];
                        if wij == 0.0 {
                            continue;
                        }
                        let aseg = &arow[i * dk..(i + 1) * dk];
                        for (o, &x) in oseg.iter_mut().zip(aseg.iter()) {
                            *o += wij * x;
                        }
                    }
                }
            }
        },
    );
    out
}

/// Backward of [`head_mix`]: returns `(ga, gw)` for upstream gradient
/// `gout` of shape `n × (h_out·dk)`.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn head_mix_backward(a: &Matrix, w: &Matrix, dk: usize, gout: &Matrix) -> (Matrix, Matrix) {
    let (h_in, h_out) = w.shape();
    let n = a.rows();
    assert_eq!(a.cols(), h_in * dk, "input cols must equal h_in * dk");
    assert_eq!(gout.shape(), (n, h_out * dk), "gout shape mismatch");
    let in_cols = h_in * dk;
    let out_cols = h_out * dk;
    let av = a.as_slice();
    let wv = w.as_slice();
    let gv = gout.as_slice();
    // d_in[t, i·dk+f] = Σ_j gout[t, j·dk+f] · w[i,j] — token-row-parallel.
    let mut ga = Matrix::zeros(n, in_cols);
    for_each_row_chunk_weighted(
        ga.as_mut_slice(),
        in_cols.max(1),
        in_cols * h_out,
        |first_row, chunk| {
            for (ci, grow) in chunk.chunks_mut(in_cols).enumerate() {
                let gorow = &gv[(first_row + ci) * out_cols..(first_row + ci + 1) * out_cols];
                for i in 0..h_in {
                    let gseg = &mut grow[i * dk..(i + 1) * dk];
                    for j in 0..h_out {
                        let wij = wv[i * h_out + j];
                        if wij == 0.0 {
                            continue;
                        }
                        let goseg = &gorow[j * dk..(j + 1) * dk];
                        for (g, &go) in gseg.iter_mut().zip(goseg.iter()) {
                            *g += go * wij;
                        }
                    }
                }
            }
        },
    );
    // dW[i,j] = Σ_{t,f} a[t, i·dk+f] · gout[t, j·dk+f] — small output,
    // sequential accumulation over tokens.
    let mut gw = Matrix::zeros(h_in, h_out);
    {
        let gwv = gw.as_mut_slice();
        for t in 0..n {
            let arow = &av[t * in_cols..(t + 1) * in_cols];
            let gorow = &gv[t * out_cols..(t + 1) * out_cols];
            for i in 0..h_in {
                let aseg = &arow[i * dk..(i + 1) * dk];
                for j in 0..h_out {
                    let goseg = &gorow[j * dk..(j + 1) * dk];
                    let mut acc = 0.0f32;
                    for (&x, &go) in aseg.iter().zip(goseg.iter()) {
                        acc += x * go;
                    }
                    gwv[i * h_out + j] += acc;
                }
            }
        }
    }
    (ga, gw)
}

// ---------------------------------------------------------------------------
// Attention
// ---------------------------------------------------------------------------

/// Forward pass of one attention head:
/// `softmax(q·kᵀ·scale + mask_bias) · v`; returns `(out, probs)`.
///
/// # Panics
///
/// Panics if `q`/`k` feature dims differ, `k`/`v` token counts differ, or
/// the mask is not `q.rows() × k.rows()`.
pub fn attention_head(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    scale: f32,
    mask_bias: Option<&Matrix>,
) -> (Matrix, Matrix) {
    assert_eq!(q.cols(), k.cols(), "q/k feature dims differ");
    assert_eq!(k.rows(), v.rows(), "k/v token counts differ");
    let mut scores = matmul_nt(q, k);
    for s in scores.as_mut_slice() {
        *s *= scale;
    }
    if let Some(bias) = mask_bias {
        assert_eq!(
            bias.shape(),
            (q.rows(), k.rows()),
            "mask shape must be q.rows x k.rows"
        );
        apply_mask_bias(&mut scores, bias);
    }
    let probs = softmax_rows(&scores);
    let out = matmul(&probs, v);
    (out, probs)
}

/// Backward pass of one attention head given its cached `probs`; returns
/// `(gq, gk, gv)`.
pub fn attention_head_backward(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    scale: f32,
    probs: &Matrix,
    gout: &Matrix,
) -> (Matrix, Matrix, Matrix) {
    // dV = Pᵀ · dO
    let gv = matmul_tn(probs, gout);
    // dP = dO · Vᵀ
    let dp = matmul_nt(gout, v);
    // dS = P ⊙ (dP − rowsum(dP ⊙ P))
    let mut ds = softmax_backward(probs, &dp);
    // dQ = dS·K·scale ; dK = dSᵀ·Q·scale — fold the scale into dS once.
    for s in ds.as_mut_slice() {
        *s *= scale;
    }
    let gq = matmul(&ds, k);
    let gk = matmul_tn(&ds, q);
    (gq, gk, gv)
}

/// Result of [`multi_head_attention`].
#[derive(Debug, Clone)]
pub struct MhaForward {
    /// Concatenated head outputs, `n × (h·dk)`.
    pub out: Matrix,
    /// Per-head probability matrices, each `n × n`.
    pub probs: Vec<Matrix>,
}

/// Fused multi-head attention forward over head-fused `q`/`k`/`v` of
/// shape `n × (h·dk)`: heads fan out across worker threads, each running
/// [`attention_head`] on its column stripe.
///
/// `masks[h]`, when present, is the additive bias for head `h` (`0` kept,
/// `-inf` pruned); pass an empty slice for all-dense heads.
///
/// # Panics
///
/// Panics if shapes are inconsistent, `q.cols()` is not a multiple of
/// `dk`, or `masks` is non-empty but shorter than the head count.
pub fn multi_head_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    dk: usize,
    scale: f32,
    masks: &[Option<Matrix>],
) -> MhaForward {
    assert!(dk > 0, "dk must be positive");
    assert_eq!(q.shape(), k.shape(), "q/k shapes differ");
    assert_eq!(q.shape(), v.shape(), "q/v shapes differ");
    assert_eq!(q.cols() % dk, 0, "cols must be a multiple of dk");
    let heads = q.cols() / dk;
    assert!(
        masks.is_empty() || masks.len() >= heads,
        "masks must cover all heads"
    );
    let n = q.rows();
    // Per-head cost: two n×n×dk GEMMs plus the softmax.
    let per_head = par_map_collect(heads, 2 * n * n * dk, |h| {
        let c0 = h * dk;
        let qh = q.submatrix(0, n, c0, c0 + dk);
        let kh = k.submatrix(0, n, c0, c0 + dk);
        let vh = v.submatrix(0, n, c0, c0 + dk);
        let bias = masks.get(h).and_then(|m| m.as_ref());
        attention_head(&qh, &kh, &vh, scale, bias)
    });
    let outs: Vec<&Matrix> = per_head.iter().map(|(o, _)| o).collect();
    let out = Matrix::hcat(&outs);
    let probs = per_head.into_iter().map(|(_, p)| p).collect();
    MhaForward { out, probs }
}

/// Backward of [`multi_head_attention`]: heads fan out in parallel;
/// returns `(gq, gk, gv)` in the fused `n × (h·dk)` layout.
///
/// # Panics
///
/// Panics if shapes disagree with the forward pass.
pub fn multi_head_attention_backward(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    dk: usize,
    scale: f32,
    probs: &[Matrix],
    gout: &Matrix,
) -> (Matrix, Matrix, Matrix) {
    let heads = probs.len();
    let n = q.rows();
    assert_eq!(q.cols(), heads * dk, "q cols must equal heads * dk");
    assert_eq!(gout.shape(), q.shape(), "gout shape mismatch");
    // Backward runs four n×n×dk GEMMs per head.
    let per_head = par_map_collect(heads, 4 * n * n * dk, |h| {
        let c0 = h * dk;
        let qh = q.submatrix(0, n, c0, c0 + dk);
        let kh = k.submatrix(0, n, c0, c0 + dk);
        let vh = v.submatrix(0, n, c0, c0 + dk);
        let gh = gout.submatrix(0, n, c0, c0 + dk);
        attention_head_backward(&qh, &kh, &vh, scale, &probs[h], &gh)
    });
    let gq = Matrix::hcat(&per_head.iter().map(|(g, _, _)| g).collect::<Vec<_>>());
    let gk = Matrix::hcat(&per_head.iter().map(|(_, g, _)| g).collect::<Vec<_>>());
    let gv = Matrix::hcat(&per_head.iter().map(|(_, _, g)| g).collect::<Vec<_>>());
    (gq, gk, gv)
}

#[cfg(test)]
// Exact float equality below asserts bit-identical kernel replay.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::Initializer;

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        Initializer::Normal { std: 1.0 }.sample(rows, cols, seed)
    }

    #[test]
    fn backends_agree_bitwise_on_matmul() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (64, 64, 64),
            (65, 33, 17),
            (197, 192, 64),
        ] {
            let a = random(m, k, 1);
            let b = random(k, n, 2);
            let blocked = matmul_with(Backend::Blocked, &a, &b);
            let scalar = matmul_with(Backend::Scalar, &a, &b);
            assert_eq!(blocked, scalar, "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn backends_agree_bitwise_on_transposed_flavours() {
        let a = random(33, 48, 3);
        let b = random(21, 48, 4);
        assert_eq!(
            matmul_nt_with(Backend::Blocked, &a, &b),
            matmul_nt_with(Backend::Scalar, &a, &b)
        );
        let c = random(33, 21, 5);
        assert_eq!(
            matmul_tn_with(Backend::Blocked, &a, &c),
            matmul_tn_with(Backend::Scalar, &a, &c)
        );
    }

    #[test]
    fn simd_backend_agrees_bitwise_on_all_gemm_flavours() {
        // Shapes straddle the lane width: exact multiples of 16, a
        // sub-lane matrix, and ragged tails.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (64, 64, 64),
            (65, 33, 17),
            (197, 192, 64),
            (9, 40, 23),
        ] {
            let a = random(m, k, 21);
            let b = random(k, n, 22);
            assert_eq!(
                matmul_with(Backend::Simd, &a, &b),
                matmul_with(Backend::Scalar, &a, &b),
                "shape ({m},{k},{n})"
            );
        }
        let a = random(33, 48, 23);
        let b = random(21, 48, 24);
        assert_eq!(
            matmul_nt_with(Backend::Simd, &a, &b),
            matmul_nt_with(Backend::Scalar, &a, &b)
        );
        let c = random(33, 21, 25);
        assert_eq!(
            matmul_tn_with(Backend::Simd, &a, &c),
            matmul_tn_with(Backend::Scalar, &a, &c)
        );
    }

    #[test]
    fn simd_row_sweep_path_agrees_bitwise() {
        // b exceeds SIMD_B_RESIDENT_BYTES (1030² floats ≈ 4.2 MB), so
        // this exercises the row-sweep fallback, tail included.
        let dim = 1030;
        assert!(dim * dim * std::mem::size_of::<f32>() > SIMD_B_RESIDENT_BYTES);
        let a = random(4, dim, 26);
        let b = random(dim, dim, 27);
        assert_eq!(
            matmul_with(Backend::Simd, &a, &b),
            matmul_with(Backend::Blocked, &a, &b)
        );
    }

    #[test]
    fn backend_parses_from_str() {
        assert_eq!("scalar".parse(), Ok(Backend::Scalar));
        assert_eq!(" Blocked ".parse(), Ok(Backend::Blocked));
        assert_eq!("SIMD".parse(), Ok(Backend::Simd));
        assert!("avx512".parse::<Backend>().is_err());
    }

    #[test]
    fn transpose_matches_naive() {
        let a = random(37, 61, 6);
        assert_eq!(
            transpose_with(Backend::Blocked, &a),
            transpose_with(Backend::Scalar, &a)
        );
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        assert_eq!(matmul(&a, &b).shape(), (0, 3));
        let a = Matrix::zeros(1, 0);
        let b = Matrix::zeros(0, 5);
        assert_eq!(matmul(&a, &b), Matrix::zeros(1, 5));
        assert_eq!(transpose(&Matrix::zeros(0, 7)).shape(), (7, 0));
    }

    #[test]
    fn forced_multithread_path_is_identical() {
        // Shapes big enough to clear MIN_WORK_PER_THREAD so the scoped
        // fan-out genuinely runs with several workers.
        let a = random(256, 256, 7);
        let b = random(256, 256, 8);
        let soft_input = random(1024, 512, 9);
        let sequential = matmul_with(Backend::Blocked, &a, &b);
        let soft_seq = softmax_rows(&soft_input);
        set_num_threads(4);
        assert_eq!(effective_threads(256, 256 * 256), 4);
        let parallel = matmul_with(Backend::Blocked, &a, &b);
        let soft_par = softmax_rows(&soft_input);
        set_num_threads(0);
        assert_eq!(sequential, parallel);
        assert_eq!(soft_seq, soft_par);
    }

    #[test]
    fn small_kernels_stay_sequential() {
        // A ViT-scale softmax row block is ~40k elements — below the
        // fan-out threshold, so no threads should spawn for it.
        set_num_threads(8);
        let threads = effective_threads(197, 197);
        set_num_threads(0);
        assert_eq!(threads, 1);
    }

    #[test]
    fn softmax_backward_matches_tape_formula() {
        let p = softmax_rows(&random(5, 9, 9));
        let dp = random(5, 9, 10);
        let ds = softmax_backward(&p, &dp);
        for r in 0..5 {
            let mut dot = 0.0f32;
            for c in 0..9 {
                dot += dp.get(r, c) * p.get(r, c);
            }
            for c in 0..9 {
                let want = p.get(r, c) * (dp.get(r, c) - dot);
                assert!((ds.get(r, c) - want).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn head_mix_identity_is_noop() {
        let x = random(6, 4 * 3, 11);
        let w = Matrix::identity(4);
        assert!(head_mix(&x, &w, 3).max_abs_diff(&x) < 1e-7);
    }

    #[test]
    fn head_mix_backward_matches_finite_difference() {
        let a = random(3, 2 * 2, 12);
        let w = random(2, 3, 13);
        let gout = random(3, 3 * 2, 14);
        let (ga, gw) = head_mix_backward(&a, &w, 2, &gout);
        let loss = |a: &Matrix, w: &Matrix| {
            let y = head_mix(a, w, 2);
            y.as_slice()
                .iter()
                .zip(gout.as_slice())
                .map(|(y, g)| y * g)
                .sum::<f32>()
        };
        let h = 1e-2;
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                let mut ap = a.clone();
                ap.set(r, c, a.get(r, c) + h);
                let mut am = a.clone();
                am.set(r, c, a.get(r, c) - h);
                let fd = (loss(&ap, &w) - loss(&am, &w)) / (2.0 * h);
                assert!((fd - ga.get(r, c)).abs() < 1e-2, "ga({r},{c})");
            }
        }
        for r in 0..w.rows() {
            for c in 0..w.cols() {
                let mut wp = w.clone();
                wp.set(r, c, w.get(r, c) + h);
                let mut wm = w.clone();
                wm.set(r, c, w.get(r, c) - h);
                let fd = (loss(&a, &wp) - loss(&a, &wm)) / (2.0 * h);
                assert!((fd - gw.get(r, c)).abs() < 1e-2, "gw({r},{c})");
            }
        }
    }

    #[test]
    fn multi_head_attention_matches_per_head_composition() {
        let n = 8;
        let dk = 4;
        let heads = 3;
        let q = random(n, heads * dk, 15);
        let k = random(n, heads * dk, 16);
        let v = random(n, heads * dk, 17);
        let mut mask = Matrix::zeros(n, n);
        mask.set(2, 5, f32::NEG_INFINITY);
        let masks = vec![None, Some(mask.clone()), None];
        let fused = multi_head_attention(&q, &k, &v, dk, 0.5, &masks);
        for (h, mask) in masks.iter().enumerate() {
            let c0 = h * dk;
            let qh = q.submatrix(0, n, c0, c0 + dk);
            let kh = k.submatrix(0, n, c0, c0 + dk);
            let vh = v.submatrix(0, n, c0, c0 + dk);
            let (out_h, probs_h) = attention_head(&qh, &kh, &vh, 0.5, mask.as_ref());
            assert_eq!(fused.probs[h], probs_h, "head {h} probs");
            assert_eq!(
                fused.out.submatrix(0, n, c0, c0 + dk),
                out_h,
                "head {h} out"
            );
        }
        assert_eq!(fused.probs[1].get(2, 5), 0.0, "masked position");
    }

    #[test]
    fn par_segments_covers_every_segment() {
        let mut data: Vec<u32> = vec![0; 10];
        par_segments(&mut data, &[0, 3, 3, 7, 10], |i, seg| {
            for v in seg {
                *v = i as u32 + 1;
            }
        });
        assert_eq!(data, vec![1, 1, 1, 3, 3, 3, 3, 4, 4, 4]);
    }

    #[test]
    fn thread_budget_caps_and_restores() {
        // Thread-local only: no interaction with the global setting, so
        // this is race-free under the parallel test harness.
        let inside = with_thread_budget(2, || {
            assert_eq!(num_threads(), 2);
            let nested = with_thread_budget(5, num_threads);
            assert_eq!(nested, 5);
            assert_eq!(num_threads(), 2, "nested cap must restore");
            effective_threads(1024, 1 << 20)
        });
        assert_eq!(inside, 2);
    }

    #[test]
    fn nested_fanout_inherits_divided_budget_and_backend() {
        // 4 items of heavy work under a budget of 4 → 4 workers, each
        // inheriting a budget of 4/4 = 1 and the caller's backend
        // override, so nested kernels can neither oversubscribe nor
        // escape a pinned backend.
        let seen = with_backend_override(Backend::Scalar, || {
            with_thread_budget(4, || {
                par_map_collect(4, 1 << 20, |_| (num_threads(), backend()))
            })
        });
        assert_eq!(seen.len(), 4);
        for (budget, b) in seen {
            assert_eq!(budget, 1, "worker budget not divided");
            assert_eq!(b, Backend::Scalar, "backend override not inherited");
        }
    }

    #[test]
    fn backend_override_scopes_and_survives_panics() {
        let ambient = backend();
        let inside = with_backend_override(Backend::Scalar, backend);
        assert_eq!(inside, Backend::Scalar);
        assert_eq!(backend(), ambient, "override must restore on exit");
        let result =
            std::panic::catch_unwind(|| with_backend_override(Backend::Scalar, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(backend(), ambient, "override must restore on panic");
    }

    #[test]
    fn par_map_collect_preserves_order() {
        set_num_threads(3);
        let v = par_map_collect(10, 1 << 20, |i| i * i);
        set_num_threads(0);
        assert_eq!(v, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }
}
