//! Dense matrix kernels for the ViTCoD reproduction.
//!
//! This crate provides the numerical substrate used everywhere else in the
//! workspace: a row-major [`Matrix`] of `f32` with the linear-algebra and
//! neural-network primitives a Vision Transformer needs (matrix
//! multiplication in all transpose flavours, row softmax, LayerNorm, GELU),
//! plus seeded random initialisation so every experiment in the repository
//! is reproducible bit-for-bit.
//!
//! The crate is deliberately free of `unsafe` and of external BLAS
//! dependencies: the ViTCoD paper's experiments are small enough (hundreds
//! of tokens, hundreds of feature dimensions) that a cache-friendly naive
//! kernel is sufficient, and keeping the kernels readable makes the
//! simulator's operation counts auditable against them.
//!
//! # Example
//!
//! ```
//! use vitcod_tensor::Matrix;
//!
//! let q = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
//! let k = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! // S = Q * K^T, the SDDMM left operand of self-attention.
//! let s = q.matmul_nt(&k);
//! assert_eq!(s.get(0, 1), 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod init;
mod matrix;
mod ops;
mod quant;
mod stats;

pub use error::ShapeError;
pub use init::{Initializer, SeedableRngExt};
pub use matrix::Matrix;
pub use ops::{gelu, gelu_grad, relu, sigmoid, softmax_row};
pub use quant::{QuantParams, QuantizedMatrix};
pub use stats::{argmax, l2_norm, mean, variance};
