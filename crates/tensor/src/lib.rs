//! Dense matrix kernels for the ViTCoD reproduction.
//!
//! This crate provides the numerical substrate used everywhere else in the
//! workspace: a row-major [`Matrix`] of `f32` with the linear-algebra and
//! neural-network primitives a Vision Transformer needs (matrix
//! multiplication in all transpose flavours, row softmax, LayerNorm, GELU),
//! plus seeded random initialisation so every experiment in the repository
//! is reproducible bit-for-bit.
//!
//! The crate is deliberately free of `unsafe` and of external BLAS
//! dependencies. All dense hot paths route through the [`kernels`]
//! module, which provides three runtime-selectable backends: a textbook
//! scalar reference, cache-blocked thread-parallel kernels, and
//! lane-tiled autovectorized kernels (see [`kernels`] for the blocking
//! schemes and the backend-agreement contract). Keeping the reference
//! kernels readable makes the simulator's operation counts auditable
//! against them. The [`sparse`] module mirrors the dense layer for
//! CSC-indexed attention (SDDMM, sparse softmax, SpMM) under the same
//! contract, and [`int8_gemm`] over [`PackedGemmWeights`] /
//! [`QuantizedRows`] supplies the serving path's quantized projection
//! GEMM.
//!
//! # Example
//!
//! ```
//! use vitcod_tensor::Matrix;
//!
//! let q = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
//! let k = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! // S = Q * K^T, the SDDMM left operand of self-attention.
//! let s = q.matmul_nt(&k);
//! assert_eq!(s.get(0, 1), 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod init;
pub mod kernels;
mod matrix;
mod ops;
mod quant;
pub mod sparse;
mod stats;

pub use error::ShapeError;
pub use init::{Initializer, SeedableRngExt};
pub use kernels::Backend;
pub use matrix::Matrix;
pub use ops::{gelu, gelu_grad, relu, sigmoid, softmax_row};
pub use quant::{
    int8_gemm, int8_gemm_with, PackedGemmWeights, QuantParams, QuantizedMatrix, QuantizedRows,
    MAX_INT8_GEMM_K,
};
pub use sparse::{CscMatrix, SparseScores, SparsityPattern};
pub use stats::{argmax, l2_norm, mean, variance};
