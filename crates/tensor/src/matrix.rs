use std::fmt;
use std::ops::{Add, Mul, Sub};

use crate::ShapeError;

/// A dense, row-major matrix of `f32`.
///
/// `Matrix` is the workhorse type of the workspace: queries, keys, values,
/// attention maps, projection weights and auto-encoder weights are all
/// `Matrix` values. It stores its elements contiguously, exposes the usual
/// elementwise and matrix-product operations, and validates shapes either
/// dynamically (panicking variants, used internally where shapes are
/// invariants) or fallibly (`try_*` variants, for user-facing boundaries).
///
/// # Example
///
/// ```
/// use vitcod_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Example
    ///
    /// ```
    /// # use vitcod_tensor::Matrix;
    /// let m = Matrix::zeros(2, 3);
    /// assert_eq!(m.shape(), (2, 3));
    /// assert_eq!(m.get(1, 2), 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape ({rows}, {cols})",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    ///
    /// # Example
    ///
    /// ```
    /// # use vitcod_tensor::Matrix;
    /// let m = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f32);
    /// assert_eq!(m.get(1, 1), 3.0);
    /// ```
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new `Vec`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "column {c} out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// View of the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the underlying row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the transpose (routed through [`crate::kernels`]).
    pub fn transpose(&self) -> Matrix {
        crate::kernels::transpose(self)
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.try_matmul(rhs).expect("matmul shape mismatch")
    }

    /// Fallible matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `self.cols() != rhs.rows()`.
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError::new("matmul", self.shape(), rhs.shape()));
        }
        Ok(crate::kernels::matmul(self, rhs))
    }

    /// Matrix product with a transposed right-hand side: `self · rhsᵀ`.
    ///
    /// This is the natural layout for attention's `S = Q · Kᵀ` where both
    /// `Q` and `K` are stored token-major. Routed through
    /// [`crate::kernels`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        crate::kernels::matmul_nt(self, rhs)
    }

    /// Matrix product with a transposed left-hand side: `selfᵀ · rhs`.
    /// Routed through [`crate::kernels`].
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        crate::kernels::matmul_tn(self, rhs)
    }

    /// Elementwise sum. See also the `+` operator.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if shapes differ.
    pub fn try_add(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError::new("add", self.shape(), rhs.shape()));
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if shapes differ.
    pub fn try_sub(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError::new("sub", self.shape(), rhs.shape()));
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if shapes differ.
    pub fn try_hadamard(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError::new("hadamard", self.shape(), rhs.shape()));
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a * b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Elementwise product, panicking on shape mismatch.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.try_hadamard(rhs).expect("hadamard shape mismatch")
    }

    /// Returns `self` scaled by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Adds `rhs` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// Adds `scale * rhs` into `self` in place (AXPY).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, scale: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += scale * b;
        }
    }

    /// Extracts the sub-matrix of rows `r0..r1` and columns `c0..c1`.
    ///
    /// # Panics
    ///
    /// Panics if the ranges exceed the matrix bounds or are reversed.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(
            r0 <= r1 && r1 <= self.rows,
            "row range {r0}..{r1} out of bounds"
        );
        assert!(
            c0 <= c1 && c1 <= self.cols,
            "col range {c0}..{c1} out of bounds"
        );
        Matrix::from_fn(r1 - r0, c1 - c0, |r, c| self.get(r0 + r, c0 + c))
    }

    /// Concatenates matrices horizontally (along columns).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn hcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hcat requires at least one part");
        let rows = parts[0].rows;
        assert!(
            parts.iter().all(|p| p.rows == rows),
            "hcat requires equal row counts"
        );
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                out.row_mut(r)[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Concatenates matrices vertically (along rows).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or column counts differ.
    pub fn vcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vcat requires at least one part");
        let cols = parts[0].cols;
        assert!(
            parts.iter().all(|p| p.cols == cols),
            "vcat requires equal column counts"
        );
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Reorders the rows so that output row `i` is input row `perm[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != self.rows()` or an index is out of bounds.
    pub fn permute_rows(&self, perm: &[usize]) -> Matrix {
        assert_eq!(perm.len(), self.rows, "permutation length mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (i, &p) in perm.iter().enumerate() {
            assert!(p < self.rows, "permutation index {p} out of bounds");
            out.row_mut(i).copy_from_slice(self.row(p));
        }
        out
    }

    /// Reorders the columns so that output column `j` is input column
    /// `perm[j]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != self.cols()` or an index is out of bounds.
    pub fn permute_cols(&self, perm: &[usize]) -> Matrix {
        assert_eq!(perm.len(), self.cols, "permutation length mismatch");
        Matrix::from_fn(self.rows, self.cols, |r, c| self.get(r, perm[c]))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Number of elements with absolute value above `eps`.
    pub fn count_nonzero(&self, eps: f32) -> usize {
        self.data.iter().filter(|v| v.abs() > eps).count()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute difference to `rhs`; useful for numeric tests.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f32 {
        assert_eq!(self.shape(), rhs.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            let row: Vec<String> = self
                .row(r)
                .iter()
                .take(8)
                .map(|v| format!("{v:8.4}"))
                .collect();
            let ellipsis = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", row.join(", "), ellipsis)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.try_add(rhs).expect("add shape mismatch")
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.try_sub(rhs).expect("sub shape mismatch")
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f32) -> Matrix {
        self.scale(rhs)
    }
}

#[cfg(test)]
// Exact float equality below asserts bit-identical kernel replay.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.sum(), 0.0);
        let f = Matrix::filled(2, 3, 2.0);
        assert_eq!(f.sum(), 12.0);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(5, 4, |r, c| (r * c) as f32 * 0.5);
        let expected = a.matmul(&b.transpose());
        assert!(a.matmul_nt(&b).max_abs_diff(&expected) < 1e-6);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 2 + c) as f32);
        let b = Matrix::from_fn(4, 5, |r, c| (r + 3 * c) as f32 * 0.1);
        let expected = a.transpose().matmul(&b);
        assert!(a.matmul_tn(&b).max_abs_diff(&expected) < 1e-5);
    }

    #[test]
    fn try_matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.try_matmul(&b).is_err());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 2.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 8.0]]));
        assert_eq!(&a * 2.0, Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn submatrix_extracts_block() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let s = a.submatrix(1, 3, 2, 4);
        assert_eq!(s, Matrix::from_rows(&[&[6.0, 7.0], &[10.0, 11.0]]));
    }

    #[test]
    fn hcat_vcat_round_trip() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        let h = Matrix::hcat(&[&a, &b]);
        assert_eq!(h, Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]));
        let v = Matrix::vcat(&[&a, &b]);
        assert_eq!(v, Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]));
    }

    #[test]
    fn permute_rows_and_cols() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(
            a.permute_rows(&[1, 0]),
            Matrix::from_rows(&[&[3.0, 4.0], &[1.0, 2.0]])
        );
        assert_eq!(
            a.permute_cols(&[1, 0]),
            Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]])
        );
    }

    #[test]
    fn count_nonzero_uses_eps() {
        let a = Matrix::from_rows(&[&[0.0, 1e-9, 0.5]]);
        assert_eq!(a.count_nonzero(1e-6), 1);
        assert_eq!(a.count_nonzero(0.0), 2);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::filled(1, 2, 1.0);
        let b = Matrix::filled(1, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::filled(1, 2, 2.0));
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Matrix::zeros(1, 1));
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Matrix::zeros(1, 1).get(1, 0);
    }
}
