//! Small statistics helpers shared across the workspace.

/// Arithmetic mean of a slice; `0.0` for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(vitcod_tensor::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population variance of a slice; `0.0` for an empty slice.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / xs.len() as f32
}

/// Euclidean norm of a slice.
pub fn l2_norm(xs: &[f32]) -> f32 {
    xs.iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Index of the maximum element; ties resolve to the first maximum.
///
/// Returns `None` for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(vitcod_tensor::argmax(&[0.1, 0.9, 0.5]), Some(1));
/// assert_eq!(vitcod_tensor::argmax::<f32>(&[]), None);
/// ```
pub fn argmax<T: PartialOrd + Copy>(xs: &[T]) -> Option<usize> {
    if xs.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, v) in xs.iter().enumerate().skip(1) {
        if *v > xs[best] {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
// Exact float equality below asserts bit-identical kernel replay.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[2.0, 4.0]), 1.0);
        assert_eq!(variance(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn l2_norm_known_value() {
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn argmax_prefers_first_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[7]), Some(0));
    }
}
