//! Scalar and row-wise neural-network primitives.

use crate::Matrix;

/// Fast `tanh` via a clamped 13/6-degree rational (Padé-style)
/// approximation — the classic single-precision kernel used by Eigen
/// and XLA. Accurate to a few ulp of libm over the whole range, but a
/// straight-line sequence of fused multiply-adds and one division, so
/// it pipelines and autovectorises where libm's `tanhf` cannot.
///
/// GELU evaluates one `tanh` per MLP activation; at training scale that
/// makes this function one of the largest elementwise costs of a
/// forward/backward step, which is why the approximation is worth its
/// twelve constants.
fn tanh_fast(x: f32) -> f32 {
    // tanh saturates to ±1 (in f32) past this point.
    const CLAMP: f32 = 7.998_811_7;
    const TINY: f32 = 0.000_4;
    const ALPHA_1: f32 = 4.893_525e-3;
    const ALPHA_3: f32 = 6.372_619e-4;
    const ALPHA_5: f32 = 1.485_722_4e-5;
    const ALPHA_7: f32 = 5.122_297e-8;
    const ALPHA_9: f32 = -8.604_672e-11;
    const ALPHA_11: f32 = 2.000_188e-13;
    const ALPHA_13: f32 = -2.760_768_5e-16;
    const BETA_0: f32 = 4.893_525_3e-3;
    const BETA_2: f32 = 2.268_434_7e-3;
    const BETA_4: f32 = 1.185_347e-4;
    const BETA_6: f32 = 1.198_258_4e-6;
    if x.abs() < TINY {
        // tanh(x) = x - x³/3 + …; below this threshold the linear term
        // is exact in f32 and the rational form would only lose bits.
        return x;
    }
    let x = x.clamp(-CLAMP, CLAMP);
    let x2 = x * x;
    let mut p = ALPHA_13;
    p = x2 * p + ALPHA_11;
    p = x2 * p + ALPHA_9;
    p = x2 * p + ALPHA_7;
    p = x2 * p + ALPHA_5;
    p = x2 * p + ALPHA_3;
    p = x2 * p + ALPHA_1;
    let p = x * p;
    let mut q = BETA_6;
    q = x2 * q + BETA_4;
    q = x2 * q + BETA_2;
    q = x2 * q + BETA_0;
    p / q
}

/// Gaussian Error Linear Unit, the ViT MLP non-linearity.
///
/// Uses the tanh approximation adopted by the original BERT/ViT codebases:
/// `0.5 x (1 + tanh(sqrt(2/π)(x + 0.044715 x³)))`, with the inner tanh
/// evaluated by [`tanh_fast`].
///
/// # Example
///
/// ```
/// assert_eq!(vitcod_tensor::gelu(0.0), 0.0);
/// assert!(vitcod_tensor::gelu(3.0) > 2.9);
/// ```
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + tanh_fast(SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)))
}

/// Derivative of [`gelu`] with respect to its input.
pub fn gelu_grad(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    let inner = SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x);
    let t = tanh_fast(inner);
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * SQRT_2_OVER_PI * (1.0 + 3.0 * 0.044_715 * x * x)
}

/// Rectified linear unit.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Numerically stable softmax over a single row, in place.
///
/// Entries equal to `f32::NEG_INFINITY` (masked-out attention positions)
/// map to exactly `0.0`.
///
/// # Example
///
/// ```
/// let mut row = [0.0_f32, 0.0, f32::NEG_INFINITY];
/// vitcod_tensor::softmax_row(&mut row);
/// assert!((row[0] - 0.5).abs() < 1e-6);
/// assert_eq!(row[2], 0.0);
/// ```
pub fn softmax_row(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        // Fully masked row: define softmax as all zeros rather than NaN so
        // pruned attention rows stay well-behaved.
        row.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let mut sum = 0.0;
    for v in row.iter_mut() {
        if *v == f32::NEG_INFINITY {
            *v = 0.0;
        } else {
            *v = (*v - max).exp();
            sum += *v;
        }
    }
    if sum > 0.0 {
        row.iter_mut().for_each(|v| *v /= sum);
    }
}

impl Matrix {
    /// Applies a numerically stable softmax to each row.
    ///
    /// # Example
    ///
    /// ```
    /// use vitcod_tensor::Matrix;
    /// let m = Matrix::from_rows(&[&[1.0, 1.0, 1.0]]).softmax_rows();
    /// assert!((m.row(0)[0] - 1.0 / 3.0).abs() < 1e-6);
    /// ```
    pub fn softmax_rows(&self) -> Matrix {
        crate::kernels::softmax_rows(self)
    }

    /// LayerNorm over each row with learnable `gamma`/`beta`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma.len()` or `beta.len()` differ from `self.cols()`.
    pub fn layernorm_rows(&self, gamma: &[f32], beta: &[f32], eps: f32) -> Matrix {
        crate::kernels::layernorm_rows(self, gamma, beta, eps)
    }

    /// Applies [`gelu`] elementwise.
    pub fn gelu(&self) -> Matrix {
        self.map(gelu)
    }

    /// Applies [`relu`] elementwise.
    pub fn relu(&self) -> Matrix {
        self.map(relu)
    }
}

#[cfg(test)]
// Exact float equality below asserts bit-identical kernel replay.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn tanh_fast_tracks_libm() {
        // Dense sweep across the active range plus the clamp/tiny
        // boundaries: the rational approximation must stay within 1e-6
        // of libm, and saturate exactly at the tails.
        let mut x = -10.0f32;
        while x <= 10.0 {
            let err = (tanh_fast(x) - x.tanh()).abs();
            assert!(err < 1e-6, "tanh_fast({x}) off by {err}");
            x += 0.001;
        }
        assert_eq!(tanh_fast(0.0), 0.0);
        assert!((tanh_fast(20.0) - 1.0).abs() < 1e-6, "saturates at +1");
        assert!((tanh_fast(-20.0) + 1.0).abs() < 1e-6, "saturates at -1");
        assert_eq!(tanh_fast(1e-5), 1e-5, "tiny inputs pass through");
    }

    #[test]
    fn gelu_reference_points() {
        assert_eq!(gelu(0.0), 0.0);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // Asymptotics: identity for large positive, zero for large negative.
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-3.0_f32, -1.0, -0.1, 0.0, 0.5, 2.0, 4.0] {
            let h = 1e-3;
            let fd = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!(
                (gelu_grad(x) - fd).abs() < 1e-2,
                "x={x}: analytic {} vs fd {}",
                gelu_grad(x),
                fd
            );
        }
    }

    #[test]
    fn softmax_row_sums_to_one() {
        let mut row = [1.0, 2.0, 3.0, 4.0];
        softmax_row(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(row.windows(2).all(|w| w[0] < w[1]), "monotone in logits");
    }

    #[test]
    fn softmax_handles_full_mask() {
        let mut row = [f32::NEG_INFINITY; 3];
        softmax_row(&mut row);
        assert_eq!(row, [0.0; 3]);
    }

    #[test]
    fn softmax_handles_partial_mask() {
        let mut row = [0.0, f32::NEG_INFINITY, 0.0];
        softmax_row(&mut row);
        assert!((row[0] - 0.5).abs() < 1e-6);
        assert_eq!(row[1], 0.0);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = [1.0, 2.0, 3.0];
        let mut b = [101.0, 102.0, 103.0];
        softmax_row(&mut a);
        softmax_row(&mut b);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let gamma = vec![1.0; 4];
        let beta = vec![0.0; 4];
        let n = m.layernorm_rows(&gamma, &beta, 1e-5);
        let row = n.row(0);
        let mean: f32 = row.iter().sum::<f32>() / 4.0;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layernorm_applies_gamma_beta() {
        let m = Matrix::from_rows(&[&[1.0, 2.0]]);
        let n = m.layernorm_rows(&[2.0, 2.0], &[1.0, 1.0], 1e-5);
        let row = n.row(0);
        // Normalised row is [-1, 1]; scaled by 2 and shifted by 1 -> [-1, 3].
        assert!((row[0] + 1.0).abs() < 1e-2);
        assert!((row[1] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn relu_and_sigmoid_basics() {
        assert_eq!(relu(-1.0), 0.0);
        assert_eq!(relu(2.0), 2.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.999);
    }
}
