//! The sparse kernel layer: CSC-indexed attention dataflows.
//!
//! This module mirrors the dense [`crate::kernels`] layer for the
//! workloads the ViTCoD accelerator's sparser engine runs: a
//! K-stationary SDDMM that emits attention scores column by column over
//! a fixed [`CscMatrix`] index, a row-wise softmax *in the sparse
//! domain*, and an output-stationary SpMM that streams the sparse
//! probabilities through resident output rows. An 8-bit SDDMM variant
//! runs the same walk on quantized operands with i32 accumulation, as
//! the accelerator's MAC lines do.
//!
//! # Backend contract
//!
//! Every kernel follows the dense layer's agreement contract: the
//! [`Backend::Scalar`] flavour is a plain sequential reference loop; the
//! [`Backend::Blocked`] flavour partitions the CSC stream into
//! column segments (SDDMM), query rows (softmax) or output-row chunks
//! (SpMM) and fans them across worker threads ([`Backend::Simd`] shares
//! that partitioning — these walks are index-bound, not lane-bound) —
//! and **all produce bit-identical values**, because parallelisation
//! only splits disjoint outputs while each value's accumulation order
//! is unchanged.

use std::sync::Arc;

use crate::kernels::{self, Backend};
use crate::ops::softmax_row;
use crate::{Matrix, QuantizedMatrix, QuantizedRows};

/// A boolean sparsity pattern over an `n × n` attention map.
///
/// Implemented by `vitcod_core::AttentionMask`; the generic
/// [`CscMatrix::from_mask`] constructor keeps this crate free of any
/// dependency on the algorithm layer while call sites keep their
/// `CscMatrix::from_mask(&mask)` spelling.
pub trait SparsityPattern {
    /// Token count `n` (the pattern is `n × n`).
    fn size(&self) -> usize;
    /// Whether position `(q, k)` is kept.
    fn is_kept(&self, q: usize, k: usize) -> bool;
}

/// Compressed-sparse-column index structure of a fixed attention mask.
///
/// The ViTCoD accelerator pre-loads fixed sparse attention indexes in
/// CSC form because it matches the K-stationary dataflow: walking one
/// CSC column enumerates exactly the Q rows that pair with the
/// currently-resident K vector.
///
/// # Example
///
/// ```
/// use vitcod_tensor::sparse::CscMatrix;
///
/// // Keep the diagonal of a 3-token map.
/// let csc = CscMatrix::from_indicator(3, |q, k| q == k);
/// assert_eq!(csc.nnz(), 3);
/// assert_eq!(csc.col_rows(1), &[1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CscMatrix {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    // Row-major companion, precomputed once: for each query row, the
    // positions its values occupy in the CSC-ordered values buffer
    // (ascending column order). This is the gather the sparse softmax
    // needs per call; deriving it here keeps the serving hot path free
    // of per-inference index rebuilds.
    row_ptr: Vec<usize>,
    row_pos: Vec<u32>,
    // Column index of every CSC value position (the inverse of the
    // column walk), precomputed once so the row-major backward walks
    // never re-derive it per call.
    col_of: Vec<u32>,
}

impl CscMatrix {
    /// Builds the CSC index of the positions where `kept(q, k)` is true.
    pub fn from_indicator(n: usize, kept: impl Fn(usize, usize) -> bool) -> Self {
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::new();
        col_ptr.push(0);
        for k in 0..n {
            for q in 0..n {
                if kept(q, k) {
                    row_idx.push(q as u32);
                }
            }
            col_ptr.push(row_idx.len());
        }
        Self::from_csc_vectors(n, col_ptr, row_idx)
    }

    /// Builds the CSC index of a [`SparsityPattern`].
    pub fn from_mask<P: SparsityPattern + ?Sized>(mask: &P) -> Self {
        Self::from_indicator(mask.size(), |q, k| mask.is_kept(q, k))
    }

    /// Builds the index directly from per-column row lists — the
    /// deserialization constructor: `O(nnz)` instead of the `O(n²)`
    /// indicator scan.
    ///
    /// # Errors
    ///
    /// Returns a message when `cols.len() != n`, a row index is out of
    /// bounds, or a column's rows are not strictly ascending.
    pub fn try_from_col_rows(n: usize, cols: &[Vec<u32>]) -> Result<Self, String> {
        if cols.len() != n {
            return Err(format!("expected {n} columns, got {}", cols.len()));
        }
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::new();
        col_ptr.push(0);
        for (k, rows) in cols.iter().enumerate() {
            let mut prev: Option<u32> = None;
            for &q in rows {
                if q as usize >= n {
                    return Err(format!("column {k}: row {q} out of bounds (n = {n})"));
                }
                if prev.is_some_and(|p| p >= q) {
                    return Err(format!("column {k}: rows not strictly ascending"));
                }
                prev = Some(q);
                row_idx.push(q);
            }
            col_ptr.push(row_idx.len());
        }
        Ok(Self::from_csc_vectors(n, col_ptr, row_idx))
    }

    /// Assembles the full index (including the precomputed row gather
    /// and per-value column map) from validated CSC vectors.
    fn from_csc_vectors(n: usize, col_ptr: Vec<usize>, row_idx: Vec<u32>) -> Self {
        // Counting sort of value positions by row: ascending position
        // within a row is ascending column, since CSC order is
        // column-major.
        let mut row_counts = vec![0usize; n];
        for &q in &row_idx {
            row_counts[q as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        for r in 0..n {
            row_ptr.push(row_ptr[r] + row_counts[r]);
        }
        let mut next = row_ptr[..n].to_vec();
        let mut row_pos = vec![0u32; row_idx.len()];
        for (p, &q) in row_idx.iter().enumerate() {
            row_pos[next[q as usize]] = p as u32;
            next[q as usize] += 1;
        }
        let mut col_of = vec![0u32; row_idx.len()];
        for k in 0..n {
            for c in &mut col_of[col_ptr[k]..col_ptr[k + 1]] {
                *c = k as u32;
            }
        }
        Self {
            n,
            col_ptr,
            row_idx,
            row_ptr,
            row_pos,
            col_of,
        }
    }

    /// Serializes the index as one line of per-column row lists:
    /// columns separated by `;`, row indices within a column by `,`
    /// (empty columns stay empty). The inverse of
    /// [`CscMatrix::from_index_string`].
    ///
    /// # Example
    ///
    /// ```
    /// use vitcod_tensor::sparse::CscMatrix;
    ///
    /// let csc = CscMatrix::from_indicator(3, |q, k| q == k);
    /// assert_eq!(csc.to_index_string(), "0;1;2");
    /// assert_eq!(CscMatrix::from_index_string(3, "0;1;2").unwrap(), csc);
    /// ```
    pub fn to_index_string(&self) -> String {
        let mut out = String::new();
        for k in 0..self.n {
            if k > 0 {
                out.push(';');
            }
            for (i, q) in self.col_rows(k).iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&q.to_string());
            }
        }
        out
    }

    /// Parses an index written by [`CscMatrix::to_index_string`].
    ///
    /// # Errors
    ///
    /// Returns a message on malformed numbers, out-of-bounds rows, or
    /// a column count that disagrees with `n`.
    pub fn from_index_string(n: usize, text: &str) -> Result<Self, String> {
        let cols: Vec<Vec<u32>> = text
            .split(';')
            .map(|col| {
                if col.is_empty() {
                    return Ok(Vec::new());
                }
                col.split(',')
                    .map(|v| {
                        v.parse::<u32>()
                            .map_err(|_| format!("malformed row index '{v}'"))
                    })
                    .collect()
            })
            .collect::<Result<_, String>>()?;
        // `"".split(';')` yields one empty column; treat it as zero
        // columns so the empty index round-trips at n = 0.
        let cols = if n == 0 && text.is_empty() {
            Vec::new()
        } else {
            cols
        };
        Self::try_from_col_rows(n, &cols)
    }

    /// Token count `n`.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Row indices of column `k`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.size()`.
    pub fn col_rows(&self, k: usize) -> &[u32] {
        assert!(k < self.n, "column {k} out of bounds");
        // Casting back and forth keeps the storage compact (u32 covers
        // any realistic token count) while the API stays usize-friendly.
        let lo = self.col_ptr[k];
        let hi = self.col_ptr[k + 1];
        &self.row_idx[lo..hi]
    }

    /// Non-zero count of column `k`.
    pub fn col_nnz(&self, k: usize) -> usize {
        self.col_rows(k).len()
    }

    /// Positions that row `q`'s kept entries occupy in a CSC-ordered
    /// values buffer, ascending column order (precomputed — the row
    /// gather of the sparse softmax).
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.size()`.
    pub fn row_value_positions(&self, q: usize) -> &[u32] {
        assert!(q < self.n, "row {q} out of bounds");
        &self.row_pos[self.row_ptr[q]..self.row_ptr[q + 1]]
    }

    /// Size of the index structure in bytes: `(n + 1)` column pointers
    /// (4 B each) plus one 4-byte row index per non-zero. This is what
    /// the accelerator's 20 KB index buffer must hold per tile.
    pub fn index_bytes(&self) -> usize {
        (self.col_ptr.len() + self.row_idx.len()) * 4
    }

    /// Iterates the kept `(q, k)` positions in column-major (CSC value)
    /// order — the order [`SparseScores`] values are stored in.
    pub fn iter_kept(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |k| self.col_rows(k).iter().map(move |&q| (q as usize, k)))
    }

    /// Exclusive prefix sum of per-column non-zero counts: `off[k]` is
    /// the position of column `k`'s first value in a CSC-ordered values
    /// buffer.
    fn column_offsets(&self) -> Vec<usize> {
        let mut off = Vec::with_capacity(self.n + 1);
        off.push(0usize);
        for k in 0..self.n {
            off.push(off[k] + self.col_nnz(k));
        }
        off
    }

    /// Column index of every CSC value position, in value order — the
    /// companion of [`Self::row_value_positions`] the row-major backward
    /// walks need to recover which key column a gathered value belongs
    /// to. Precomputed at construction.
    fn value_columns(&self) -> &[u32] {
        &self.col_of
    }

    /// Partitions the CSC columns into contiguous ranges of roughly
    /// equal non-zero count, one per worker thread. Returns
    /// `(value_bounds, column_starts)`, both `segments + 1` long,
    /// suitable for [`kernels::par_segments`].
    fn column_partition(&self, col_off: &[usize]) -> (Vec<usize>, Vec<usize>) {
        let n = self.n;
        let nnz = self.nnz();
        let threads = kernels::num_threads().max(1);
        let target = nnz.div_ceil(threads).max(1);
        let mut value_bounds = vec![0usize];
        let mut column_starts = vec![0usize];
        for k in 0..n {
            let seg_nnz = col_off[k + 1] - value_bounds.last().unwrap();
            if seg_nnz >= target && k + 1 < n {
                value_bounds.push(col_off[k + 1]);
                column_starts.push(k + 1);
            }
        }
        value_bounds.push(nnz);
        column_starts.push(n);
        (value_bounds, column_starts)
    }
}

/// Sparse attention scores in CSC layout: one value per kept `(q, k)`
/// position, column-major, aligned with a [`CscMatrix`] index.
///
/// The index is held behind an [`Arc`]: a fixed attention mask is shared
/// by every score/probability/gradient buffer of a head — and by every
/// sample of a training batch — so the kernels pass the index by
/// reference count instead of copying `O(nnz)` structure per call.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseScores {
    index: Arc<CscMatrix>,
    values: Vec<f32>,
}

impl SparseScores {
    /// Wraps a CSC-ordered values buffer with its index.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != index.nnz()`.
    pub fn new(index: CscMatrix, values: Vec<f32>) -> Self {
        Self::new_shared(Arc::new(index), values)
    }

    /// [`Self::new`] over an already-shared index (no copy).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != index.nnz()`.
    pub fn new_shared(index: Arc<CscMatrix>, values: Vec<f32>) -> Self {
        assert_eq!(values.len(), index.nnz(), "one value per kept position");
        Self { index, values }
    }

    /// The CSC index describing which positions the values occupy.
    pub fn index(&self) -> &CscMatrix {
        &self.index
    }

    /// The stored values in column-major (CSC) order.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Number of stored scores.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Densifies into an `n × n` matrix (zeros at pruned positions).
    pub fn to_dense(&self) -> Matrix {
        let n = self.index.size();
        let mut out = Matrix::zeros(n, n);
        let mut pos = 0;
        for k in 0..n {
            for &q in self.index.col_rows(k) {
                out.set(q as usize, k, self.values[pos]);
                pos += 1;
            }
        }
        out
    }

    /// Applies a row-wise softmax *in the sparse domain* on the ambient
    /// backend: each query row's kept scores are normalised among
    /// themselves, exactly what the engines' softmax units do after a
    /// complete attention row is available.
    pub fn softmax_rows(&self) -> SparseScores {
        self.softmax_rows_with(kernels::backend())
    }

    /// [`Self::softmax_rows`] on an explicit backend.
    pub fn softmax_rows_with(&self, backend: Backend) -> SparseScores {
        let n = self.index.size();
        let mut values = self.values.clone();
        // The row gather is precomputed on the index
        // ([`CscMatrix::row_value_positions`]), so each call only does
        // the normalisation itself. Per-row normalisation fans out
        // across workers when blocked; with a single worker, rows run in
        // place through one reused scratch buffer (identical arithmetic,
        // no per-row allocation — training tapes at small token counts
        // are dominated by exactly this kind of bookkeeping).
        if matches!(backend, Backend::Scalar) || kernels::num_threads() <= 1 {
            let mut scratch = Vec::new();
            for r in 0..n {
                let positions = self.index.row_value_positions(r);
                scratch.clear();
                scratch.extend(positions.iter().map(|&p| self.values[p as usize]));
                softmax_row(&mut scratch);
                for (&p, &v) in positions.iter().zip(scratch.iter()) {
                    values[p as usize] = v;
                }
            }
        } else {
            let normalise = |r: usize| {
                let mut row: Vec<f32> = self
                    .index
                    .row_value_positions(r)
                    .iter()
                    .map(|&p| self.values[p as usize])
                    .collect();
                softmax_row(&mut row);
                row
            };
            let work_per_row = self.values.len() / n.max(1) + 1;
            let softmaxed = kernels::par_map_collect(n, work_per_row, normalise);
            for (r, row) in softmaxed.into_iter().enumerate() {
                for (&p, v) in self.index.row_value_positions(r).iter().zip(row) {
                    values[p as usize] = v;
                }
            }
        }
        SparseScores {
            index: self.index.clone(),
            values,
        }
    }
}

/// K-stationary SDDMM (paper Fig. 11(b) / Fig. 13(a)) on the ambient
/// backend: K columns are loaded one at a time; for each kept `(q, k)`
/// position listed in the CSC index, a `dk`-length dot product
/// accumulates across the MAC line (inter-PE accumulation), emitting
/// attention scores column by column.
///
/// On the blocked backend the CSC columns are partitioned into
/// contiguous non-zero-balanced ranges and fanned out across worker
/// threads, each writing its own disjoint slice of the values buffer
/// (the software analogue of the accelerator distributing K columns
/// over MAC lines).
///
/// `scale` is the `1/sqrt(dk)` attention scaling.
///
/// # Panics
///
/// Panics if `q`/`k` have different feature dims or the index size
/// differs from the token count.
pub fn sddmm_k_stationary(q: &Matrix, k: &Matrix, index: &CscMatrix, scale: f32) -> SparseScores {
    sddmm_k_stationary_with(kernels::backend(), q, k, index, scale)
}

/// [`sddmm_k_stationary`] on an explicit backend.
pub fn sddmm_k_stationary_with(
    backend: Backend,
    q: &Matrix,
    k: &Matrix,
    index: &CscMatrix,
    scale: f32,
) -> SparseScores {
    let values = sddmm_values(backend, q, k, index, scale);
    SparseScores {
        index: Arc::new(index.clone()),
        values,
    }
}

/// [`sddmm_k_stationary`] over an `Arc`-shared index on the ambient
/// backend: the emitted scores reference the caller's index instead of
/// copying it — the form the training tape uses, where one frozen index
/// serves every sample of every step.
pub fn sddmm_k_stationary_shared(
    q: &Matrix,
    k: &Matrix,
    index: &Arc<CscMatrix>,
    scale: f32,
) -> SparseScores {
    sddmm_k_stationary_shared_with(kernels::backend(), q, k, index, scale)
}

/// [`sddmm_k_stationary_shared`] on an explicit backend.
pub fn sddmm_k_stationary_shared_with(
    backend: Backend,
    q: &Matrix,
    k: &Matrix,
    index: &Arc<CscMatrix>,
    scale: f32,
) -> SparseScores {
    let values = sddmm_values(backend, q, k, index, scale);
    SparseScores {
        index: index.clone(),
        values,
    }
}

/// The K-stationary SDDMM walk shared by the owned and `Arc`-shared
/// entry points.
fn sddmm_values(
    backend: Backend,
    q: &Matrix,
    k: &Matrix,
    index: &CscMatrix,
    scale: f32,
) -> Vec<f32> {
    assert_eq!(q.cols(), k.cols(), "q/k feature dims differ");
    assert_eq!(q.rows(), index.size(), "index size must match tokens");
    assert_eq!(k.rows(), index.size(), "index size must match tokens");
    let mut values = vec![0.0f32; index.nnz()];
    let emit = |cols: std::ops::Range<usize>, out: &mut [f32]| {
        let mut pos = 0;
        for col in cols {
            // K column resident; related Q rows stream temporally.
            let k_vec = k.row(col);
            for &qi in index.col_rows(col) {
                let q_vec = q.row(qi as usize);
                let mut acc = 0.0f32;
                for (a, b) in q_vec.iter().zip(k_vec.iter()) {
                    acc += a * b;
                }
                out[pos] = acc * scale;
                pos += 1;
            }
        }
    };
    // A single worker walks the whole stream directly; the partition
    // bookkeeping only pays for itself when segments actually fan out.
    if matches!(backend, Backend::Scalar) || kernels::num_threads() <= 1 {
        emit(0..index.size(), &mut values);
    } else {
        let col_off = index.column_offsets();
        let (value_bounds, column_starts) = index.column_partition(&col_off);
        kernels::par_segments(&mut values, &value_bounds, |seg, out| {
            emit(column_starts[seg]..column_starts[seg + 1], out)
        });
    }
    values
}

/// 8-bit K-stationary SDDMM: the same walk with i8 operands and i32
/// accumulation, dequantised at emission — the MAC lines' arithmetic.
///
/// # Panics
///
/// Panics on shape mismatches as [`sddmm_k_stationary`] does.
pub fn sddmm_k_stationary_int8(
    q: &QuantizedMatrix,
    k: &QuantizedMatrix,
    index: &CscMatrix,
    scale: f32,
) -> SparseScores {
    sddmm_k_stationary_int8_with(kernels::backend(), q, k, index, scale)
}

/// [`sddmm_k_stationary_int8`] on an explicit backend.
pub fn sddmm_k_stationary_int8_with(
    backend: Backend,
    q: &QuantizedMatrix,
    k: &QuantizedMatrix,
    index: &CscMatrix,
    scale: f32,
) -> SparseScores {
    assert_eq!(q.shape().1, k.shape().1, "q/k feature dims differ");
    assert_eq!(q.shape().0, index.size(), "index size must match tokens");
    assert_eq!(k.shape().0, index.size(), "index size must match tokens");
    let out_scale = q.params().scale * k.params().scale * scale;
    let mut values = vec![0.0f32; index.nnz()];
    let emit = |cols: std::ops::Range<usize>, out: &mut [f32]| {
        let mut pos = 0;
        for col in cols {
            let k_vec = k.row_raw(col);
            for &qi in index.col_rows(col) {
                let q_vec = q.row_raw(qi as usize);
                let mut acc: i32 = 0;
                for (a, b) in q_vec.iter().zip(k_vec.iter()) {
                    acc += (*a as i32) * (*b as i32);
                }
                out[pos] = acc as f32 * out_scale;
                pos += 1;
            }
        }
    };
    match backend {
        Backend::Scalar => emit(0..index.size(), &mut values),
        // Integer accumulation is order-exact, so the Simd backend can
        // share the column-partitioned fan-out unchanged.
        Backend::Blocked | Backend::Simd => {
            let col_off = index.column_offsets();
            let (value_bounds, column_starts) = index.column_partition(&col_off);
            kernels::par_segments(&mut values, &value_bounds, |seg, out| {
                emit(column_starts[seg]..column_starts[seg + 1], out)
            });
        }
    }
    SparseScores {
        index: Arc::new(index.clone()),
        values,
    }
}

/// Output-stationary SpMM (paper Fig. 13(b)) on the ambient backend:
/// output rows `V′[q, :]` stay resident in the PE registers (intra-PE
/// accumulation) while the sparse attention probabilities and V rows
/// stream through; each kept `(q, k)` score accumulates `prob · V[k, :]`
/// into output row `q`.
///
/// # Panics
///
/// Panics if shapes disagree with the score index.
pub fn spmm_output_stationary(scores: &SparseScores, v: &Matrix) -> Matrix {
    spmm_output_stationary_with(kernels::backend(), scores, v)
}

/// [`spmm_output_stationary`] on an explicit backend.
pub fn spmm_output_stationary_with(backend: Backend, scores: &SparseScores, v: &Matrix) -> Matrix {
    let n = scores.index.size();
    assert_eq!(v.rows(), n, "V token count must match index");
    let cols = v.cols();
    let mut out = Matrix::zeros(n, cols);
    if cols == 0 {
        return out;
    }
    let index = &scores.index;
    let values = &scores.values;
    // Output rows stay resident (intra-PE accumulation) while the sparse
    // probabilities and V rows stream through. Each invocation owns a
    // disjoint output-row window and walks the full CSC stream,
    // accumulating only the (q, k) pairs whose output row it owns — the
    // index walk is duplicated per worker but the MACs are not. Exact
    // zeros are skipped in both flavours, keeping them bit-identical.
    let accumulate = |first_row: usize, chunk: &mut [f32]| {
        let chunk_rows = chunk.len() / cols;
        let mut pos = 0;
        for k in 0..n {
            let v_row = v.row(k);
            for &q in index.col_rows(k) {
                let p = values[pos];
                pos += 1;
                let q = q as usize;
                if p == 0.0 || q < first_row || q >= first_row + chunk_rows {
                    continue;
                }
                let local = q - first_row;
                let out_row = &mut chunk[local * cols..(local + 1) * cols];
                for (o, vv) in out_row.iter_mut().zip(v_row.iter()) {
                    *o += p * vv;
                }
            }
        }
    };
    match backend {
        Backend::Scalar => accumulate(0, out.as_mut_slice()),
        Backend::Blocked | Backend::Simd => {
            let work_per_row = cols * (scores.values.len() / n.max(1) + 1);
            kernels::for_each_row_chunk_weighted(out.as_mut_slice(), cols, work_per_row, accumulate)
        }
    }
    out
}

/// Executes one head's full sparse attention through the accelerator's
/// dataflow: K-stationary SDDMM → sparse softmax → output-stationary
/// SpMM.
pub fn attention_head(q: &Matrix, k: &Matrix, v: &Matrix, index: &CscMatrix, scale: f32) -> Matrix {
    let scores = sddmm_k_stationary(q, k, index, scale);
    let probs = scores.softmax_rows();
    spmm_output_stationary(&probs, v)
}

/// [`attention_head`] with an 8-bit SDDMM: the attention scores are
/// computed from quantized Q/K with i32 accumulation (the MAC lines'
/// arithmetic); softmax and SpMM run in fp32 on the dequantised scores.
pub fn attention_head_int8(
    q: &QuantizedMatrix,
    k: &QuantizedMatrix,
    v: &Matrix,
    index: &CscMatrix,
    scale: f32,
) -> Matrix {
    let scores = sddmm_k_stationary_int8(q, k, index, scale);
    let probs = scores.softmax_rows();
    spmm_output_stationary(&probs, v)
}

/// 8-bit K-stationary SDDMM over per-row-quantized fused activations:
/// the serving engine quantizes the full `n × (h·dk)` Q and K tensors
/// once per layer as [`QuantizedRows`], and each head hands this kernel
/// its column window. Per-row scales survive the slicing, so no
/// per-head requantization happens; each score dequantizes through
/// `q.scale(qi) · k.scale(col) · scale`.
///
/// # Panics
///
/// Panics if shapes or the window disagree with the index.
pub fn sddmm_k_stationary_int8_rows(
    q: &QuantizedRows,
    k: &QuantizedRows,
    cols: std::ops::Range<usize>,
    index: &CscMatrix,
    scale: f32,
) -> SparseScores {
    sddmm_k_stationary_int8_rows_with(kernels::backend(), q, k, cols, index, scale)
}

/// [`sddmm_k_stationary_int8_rows`] on an explicit backend.
pub fn sddmm_k_stationary_int8_rows_with(
    backend: Backend,
    q: &QuantizedRows,
    k: &QuantizedRows,
    cols: std::ops::Range<usize>,
    index: &CscMatrix,
    scale: f32,
) -> SparseScores {
    assert_eq!(q.shape().1, k.shape().1, "q/k feature dims differ");
    assert!(cols.end <= q.shape().1, "column window out of bounds");
    assert_eq!(q.shape().0, index.size(), "index size must match tokens");
    assert_eq!(k.shape().0, index.size(), "index size must match tokens");
    let mut values = vec![0.0f32; index.nnz()];
    let emit = |columns: std::ops::Range<usize>, out: &mut [f32]| {
        let mut pos = 0;
        for col in columns {
            let k_vec = k.row_window_wide(col, cols.clone());
            let k_factor = k.row_scale(col) * scale;
            for &qi in index.col_rows(col) {
                let q_vec = q.row_window_wide(qi as usize, cols.clone());
                let mut acc: i32 = 0;
                for (a, b) in q_vec.iter().zip(k_vec.iter()) {
                    acc += (*a as i32) * (*b as i32);
                }
                out[pos] = acc as f32 * (q.row_scale(qi as usize) * k_factor);
                pos += 1;
            }
        }
    };
    match backend {
        Backend::Scalar => emit(0..index.size(), &mut values),
        Backend::Blocked | Backend::Simd => {
            let col_off = index.column_offsets();
            let (value_bounds, column_starts) = index.column_partition(&col_off);
            kernels::par_segments(&mut values, &value_bounds, |seg, out| {
                emit(column_starts[seg]..column_starts[seg + 1], out)
            });
        }
    }
    SparseScores {
        index: Arc::new(index.clone()),
        values,
    }
}

/// [`attention_head_int8`] over the layer's shared per-row-quantized
/// Q/K with a head column window: int8 SDDMM → fp32 sparse softmax →
/// fp32 SpMM.
pub fn attention_head_int8_rows(
    q: &QuantizedRows,
    k: &QuantizedRows,
    cols: std::ops::Range<usize>,
    v: &Matrix,
    index: &CscMatrix,
    scale: f32,
) -> Matrix {
    let scores = sddmm_k_stationary_int8_rows(q, k, cols, index, scale);
    let probs = scores.softmax_rows();
    spmm_output_stationary(&probs, v)
}

// ---------------------------------------------------------------------------
// Backward kernels (sparse training)
// ---------------------------------------------------------------------------

/// Backward of [`sddmm_k_stationary`] on the ambient backend: given the
/// upstream gradient `dscores` w.r.t. the emitted sparse scores, returns
/// `(gq, gk)` — dense gradients for Q and K that only accumulate over the
/// kept positions, so the pass costs `O(nnz · dk)` instead of `O(n² · dk)`.
///
/// Per kept `(q, k)`: `gq[q, :] += scale · dS[q,k] · K[k, :]` and
/// `gk[k, :] += scale · dS[q,k] · Q[q, :]`.
///
/// # Panics
///
/// Panics if `q`/`k` shapes disagree with the score index.
pub fn sddmm_backward(
    q: &Matrix,
    k: &Matrix,
    dscores: &SparseScores,
    scale: f32,
) -> (Matrix, Matrix) {
    sddmm_backward_with(kernels::backend(), q, k, dscores, scale)
}

/// [`sddmm_backward`] on an explicit backend.
///
/// The Q gradient is query-row-parallel (each worker owns disjoint `gq`
/// rows and walks that row's kept positions in ascending column order via
/// the precomputed row gather); the K gradient is key-column-parallel
/// (each worker owns disjoint `gk` rows — CSC columns — and walks each
/// column's kept rows ascending). Both flavours accumulate every output
/// element in the same order, so Scalar and Blocked agree bitwise.
pub fn sddmm_backward_with(
    backend: Backend,
    q: &Matrix,
    k: &Matrix,
    dscores: &SparseScores,
    scale: f32,
) -> (Matrix, Matrix) {
    let index = &dscores.index;
    let n = index.size();
    assert_eq!(q.cols(), k.cols(), "q/k feature dims differ");
    assert_eq!(q.rows(), n, "index size must match tokens");
    assert_eq!(k.rows(), n, "index size must match tokens");
    let dk = q.cols();
    let ds = &dscores.values;
    let nnz = dscores.nnz();
    let per_row_work = dk * (nnz / n.max(1) + 1);

    let mut gq = Matrix::zeros(n, dk);
    let mut gk = Matrix::zeros(n, dk);
    if matches!(backend, Backend::Scalar) || kernels::num_threads() <= 1 {
        // Single fused CSC walk: each gq row still accumulates in
        // ascending column order and each gk row in ascending query
        // order — exactly the orders of the parallel flavours below, so
        // the fast path is bit-identical to them.
        if dk > 0 {
            let mut pos = 0;
            for col in 0..n {
                let k_vec = k.row(col);
                for &qi in index.col_rows(col) {
                    let g = ds[pos] * scale;
                    pos += 1;
                    if g == 0.0 {
                        continue;
                    }
                    let q_vec = q.row(qi as usize);
                    for (o, &kv) in gq.row_mut(qi as usize).iter_mut().zip(k_vec.iter()) {
                        *o += g * kv;
                    }
                    for (o, &qv) in gk.row_mut(col).iter_mut().zip(q_vec.iter()) {
                        *o += g * qv;
                    }
                }
            }
        }
        return (gq, gk);
    }
    let col_of = index.value_columns();
    let gq_rows = |first_row: usize, chunk: &mut [f32]| {
        if dk == 0 {
            return;
        }
        for (ci, grow) in chunk.chunks_mut(dk).enumerate() {
            let qi = first_row + ci;
            for &p in index.row_value_positions(qi) {
                let g = ds[p as usize] * scale;
                if g == 0.0 {
                    continue;
                }
                let k_vec = k.row(col_of[p as usize] as usize);
                for (o, &kv) in grow.iter_mut().zip(k_vec.iter()) {
                    *o += g * kv;
                }
            }
        }
    };
    kernels::for_each_row_chunk_weighted(gq.as_mut_slice(), dk.max(1), per_row_work, gq_rows);

    let col_off = index.column_offsets();
    let gk_rows = |first_col: usize, chunk: &mut [f32]| {
        if dk == 0 {
            return;
        }
        for (ci, grow) in chunk.chunks_mut(dk).enumerate() {
            let col = first_col + ci;
            for (pos, &qi) in (col_off[col]..).zip(index.col_rows(col).iter()) {
                let g = ds[pos] * scale;
                if g == 0.0 {
                    continue;
                }
                let q_vec = q.row(qi as usize);
                for (o, &qv) in grow.iter_mut().zip(q_vec.iter()) {
                    *o += g * qv;
                }
            }
        }
    };
    kernels::for_each_row_chunk_weighted(gk.as_mut_slice(), dk.max(1), per_row_work, gk_rows);
    (gq, gk)
}

/// Backward of [`SparseScores::softmax_rows`] on the ambient backend:
/// given the softmaxed probabilities `probs` and the upstream gradient
/// `dprobs` (both in the same CSC layout), returns the gradient w.r.t.
/// the pre-softmax scores:
/// `dS = P ⊙ (dP − rowsum(dP ⊙ P))`, rows restricted to kept positions.
///
/// # Panics
///
/// Panics if `probs` and `dprobs` disagree in size or non-zero count.
pub fn sparse_softmax_backward(probs: &SparseScores, dprobs: &SparseScores) -> SparseScores {
    sparse_softmax_backward_with(kernels::backend(), probs, dprobs)
}

/// [`sparse_softmax_backward`] on an explicit backend (query-row-parallel
/// when blocked, like the forward).
pub fn sparse_softmax_backward_with(
    backend: Backend,
    probs: &SparseScores,
    dprobs: &SparseScores,
) -> SparseScores {
    let index = &probs.index;
    let n = index.size();
    // Arc identity is the O(1) common case (dprobs shares probs' index
    // through the backward chain); the structural comparison only runs
    // for independently-built indexes, where a mismatch would silently
    // pair gradients with the wrong (q, k) cells.
    assert!(
        Arc::ptr_eq(index, &dprobs.index) || *index == dprobs.index,
        "probs/dprobs indexes differ"
    );
    let pv = &probs.values;
    let dv = &dprobs.values;
    let mut values = vec![0.0f32; probs.nnz()];
    if matches!(backend, Backend::Scalar) || kernels::num_threads() <= 1 {
        // Rows partition the values buffer, so a single worker writes
        // each row's results straight into place — no per-row buffers.
        for r in 0..n {
            let positions = index.row_value_positions(r);
            let mut dot = 0.0f32;
            for &p in positions {
                dot += pv[p as usize] * dv[p as usize];
            }
            for &p in positions {
                values[p as usize] = pv[p as usize] * (dv[p as usize] - dot);
            }
        }
    } else {
        let backward_row = |r: usize| {
            let positions = index.row_value_positions(r);
            let mut dot = 0.0f32;
            for &p in positions {
                dot += pv[p as usize] * dv[p as usize];
            }
            positions
                .iter()
                .map(|&p| pv[p as usize] * (dv[p as usize] - dot))
                .collect::<Vec<f32>>()
        };
        let work_per_row = 2 * (probs.nnz() / n.max(1) + 1);
        let rows = kernels::par_map_collect(n, work_per_row, backward_row);
        for (r, row) in rows.into_iter().enumerate() {
            for (&p, v) in index.row_value_positions(r).iter().zip(row) {
                values[p as usize] = v;
            }
        }
    }
    SparseScores {
        index: index.clone(),
        values,
    }
}

/// Backward of [`spmm_output_stationary`] on the ambient backend: given
/// the sparse probabilities `probs`, the value matrix `v` and the
/// upstream gradient `gout` of the attention output, returns
/// `(dprobs, gv)`:
///
/// * `dprobs[q, k] = ⟨gout[q, :], v[k, :]⟩` at kept positions — an SDDMM
///   over the same CSC index (`O(nnz · dk)`);
/// * `gv[k, :] = Σ_{q kept in column k} probs[q,k] · gout[q, :]` —
///   key-column-parallel like the K gradient of [`sddmm_backward`].
///
/// # Panics
///
/// Panics if shapes disagree with the score index.
pub fn spmm_backward(probs: &SparseScores, v: &Matrix, gout: &Matrix) -> (SparseScores, Matrix) {
    spmm_backward_with(kernels::backend(), probs, v, gout)
}

/// [`spmm_backward`] on an explicit backend.
pub fn spmm_backward_with(
    backend: Backend,
    probs: &SparseScores,
    v: &Matrix,
    gout: &Matrix,
) -> (SparseScores, Matrix) {
    let index = &probs.index;
    let n = index.size();
    assert_eq!(v.rows(), n, "V token count must match index");
    assert_eq!(gout.rows(), n, "gout token count must match index");
    assert_eq!(gout.cols(), v.cols(), "gout/V feature dims differ");
    let dk = v.cols();
    // dP is the same K-stationary walk as the forward SDDMM, with the
    // upstream gradient standing in for Q and V for K; it shares the
    // probabilities' index instead of copying it.
    let dprobs = SparseScores {
        index: probs.index.clone(),
        values: sddmm_values(backend, gout, v, index, 1.0),
    };

    let mut gv = Matrix::zeros(n, dk);
    let pv = &probs.values;
    if matches!(backend, Backend::Scalar) || kernels::num_threads() <= 1 {
        // Single sequential walk of the stream; per-gv-row order is
        // ascending query like the chunked flavour below.
        if dk > 0 {
            let mut pos = 0;
            for col in 0..n {
                for &qi in index.col_rows(col) {
                    let p = pv[pos];
                    pos += 1;
                    if p == 0.0 {
                        continue;
                    }
                    let g_vec = gout.row(qi as usize);
                    for (o, &g) in gv.row_mut(col).iter_mut().zip(g_vec.iter()) {
                        *o += p * g;
                    }
                }
            }
        }
        return (dprobs, gv);
    }
    let col_off = index.column_offsets();
    let gv_rows = |first_col: usize, chunk: &mut [f32]| {
        if dk == 0 {
            return;
        }
        for (ci, grow) in chunk.chunks_mut(dk).enumerate() {
            let col = first_col + ci;
            for (pos, &qi) in (col_off[col]..).zip(index.col_rows(col).iter()) {
                let p = pv[pos];
                if p == 0.0 {
                    continue;
                }
                let g_vec = gout.row(qi as usize);
                for (o, &g) in grow.iter_mut().zip(g_vec.iter()) {
                    *o += p * g;
                }
            }
        }
    };
    let per_row_work = dk * (probs.nnz() / n.max(1) + 1);
    kernels::for_each_row_chunk_weighted(gv.as_mut_slice(), dk.max(1), per_row_work, gv_rows);
    (dprobs, gv)
}

/// Backward of [`attention_head`] on the ambient backend: given the
/// cached sparse probabilities of the forward pass and the upstream
/// gradient `gout`, returns `(gq, gk, gv)`. Every stage scales with
/// `nnz` instead of `n²` — this is what makes sparse *training* cost
/// follow the mask density, not just inference.
pub fn attention_head_backward(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    scale: f32,
    probs: &SparseScores,
    gout: &Matrix,
) -> (Matrix, Matrix, Matrix) {
    attention_head_backward_with(kernels::backend(), q, k, v, scale, probs, gout)
}

/// [`attention_head_backward`] on an explicit backend.
pub fn attention_head_backward_with(
    backend: Backend,
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    scale: f32,
    probs: &SparseScores,
    gout: &Matrix,
) -> (Matrix, Matrix, Matrix) {
    let (dprobs, gv) = spmm_backward_with(backend, probs, v, gout);
    let dscores = sparse_softmax_backward_with(backend, probs, &dprobs);
    let (gq, gk) = sddmm_backward_with(backend, q, k, &dscores, scale);
    (gq, gk, gv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Initializer;

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        Initializer::Normal { std: 1.0 }.sample(rows, cols, seed)
    }

    /// Diagonal + first-column + next-neighbour pattern (a miniature of
    /// the paper's polarized maps).
    fn diag_global(n: usize) -> CscMatrix {
        CscMatrix::from_indicator(n, |q, k| q == k || k == 0 || k == (q + 1) % n)
    }

    #[test]
    fn from_indicator_columns_ascending_and_counted() {
        let csc = diag_global(8);
        for k in 0..8 {
            let rows = csc.col_rows(k);
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "col {k} not sorted");
            assert_eq!(csc.col_nnz(k), rows.len());
        }
        assert_eq!(csc.iter_kept().count(), csc.nnz());
        assert_eq!(csc.index_bytes(), (9 + csc.nnz()) * 4);
    }

    #[test]
    fn row_value_positions_invert_the_csc_walk() {
        let csc = diag_global(12);
        let entries: Vec<(usize, usize)> = csc.iter_kept().collect();
        let mut seen = vec![false; csc.nnz()];
        for q in 0..12 {
            let mut prev_col = None;
            for &p in csc.row_value_positions(q) {
                let (pq, pk) = entries[p as usize];
                assert_eq!(pq, q, "position {p} gathered into wrong row");
                assert!(
                    prev_col < Some(pk),
                    "row {q} positions not ascending by column"
                );
                prev_col = Some(pk);
                assert!(!seen[p as usize], "position {p} gathered twice");
                seen[p as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some value positions unmapped");
    }

    #[test]
    fn sddmm_matches_dense_scores_at_kept_positions() {
        let (q, k) = (random(24, 16, 1), random(24, 16, 2));
        let index = diag_global(24);
        let sparse = sddmm_k_stationary(&q, &k, &index, 0.25);
        let dense = q.matmul_nt(&k).scale(0.25);
        let sd = sparse.to_dense();
        for (qq, kk) in index.iter_kept() {
            assert!(
                (sd.get(qq, kk) - dense.get(qq, kk)).abs() < 1e-5,
                "score ({qq},{kk}) differs"
            );
        }
    }

    #[test]
    fn backends_agree_bitwise_on_the_full_dataflow() {
        let (q, k, v) = (random(33, 8, 3), random(33, 8, 4), random(33, 8, 5));
        let index = diag_global(33);
        let scores_s = sddmm_k_stationary_with(Backend::Scalar, &q, &k, &index, 0.3);
        let scores_b = sddmm_k_stationary_with(Backend::Blocked, &q, &k, &index, 0.3);
        assert_eq!(scores_s, scores_b);
        let probs_s = scores_s.softmax_rows_with(Backend::Scalar);
        let probs_b = scores_b.softmax_rows_with(Backend::Blocked);
        assert_eq!(probs_s, probs_b);
        assert_eq!(
            spmm_output_stationary_with(Backend::Scalar, &probs_s, &v),
            spmm_output_stationary_with(Backend::Blocked, &probs_b, &v)
        );
    }

    #[test]
    fn forced_multithread_dataflow_is_identical() {
        let (q, k, v) = (random(40, 8, 6), random(40, 8, 7), random(40, 8, 8));
        let index = diag_global(40);
        let sequential = attention_head(&q, &k, &v, &index, 0.3);
        kernels::set_num_threads(4);
        let parallel = attention_head(&q, &k, &v, &index, 0.3);
        kernels::set_num_threads(0);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn sparse_softmax_rows_sum_to_one() {
        let (q, k) = (random(16, 8, 9), random(16, 8, 10));
        let index = diag_global(16);
        let probs = sddmm_k_stationary(&q, &k, &index, 0.3).softmax_rows();
        let dense = probs.to_dense();
        for r in 0..16 {
            let s: f32 = dense.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn int8_backends_agree_bitwise() {
        let (q, k) = (random(24, 32, 11), random(24, 32, 12));
        let index = diag_global(24);
        let (qi, ki) = (QuantizedMatrix::quantize(&q), QuantizedMatrix::quantize(&k));
        assert_eq!(
            sddmm_k_stationary_int8_with(Backend::Scalar, &qi, &ki, &index, 0.2),
            sddmm_k_stationary_int8_with(Backend::Blocked, &qi, &ki, &index, 0.2)
        );
    }

    #[test]
    fn spmm_rows_without_kept_positions_stay_zero() {
        let v = random(8, 4, 13);
        // Only row 3 attends (to columns 1 and 2).
        let index = CscMatrix::from_indicator(8, |q, k| q == 3 && (k == 1 || k == 2));
        let scores = SparseScores::new(index, vec![0.5, 0.5]);
        let out = spmm_output_stationary(&scores, &v);
        for r in 0..8 {
            if r != 3 {
                assert!(out.row(r).iter().all(|&x| x == 0.0), "row {r} not zero");
            }
        }
        assert!(out.row(3).iter().any(|&x| x != 0.0));
    }

    #[test]
    #[should_panic(expected = "one value per kept position")]
    fn sparse_scores_length_mismatch_panics() {
        SparseScores::new(diag_global(4), vec![0.0; 3]);
    }

    #[test]
    fn index_string_round_trips_including_empty_columns() {
        // Row 0 attends nowhere in column 2; column 3 is fully empty.
        let csc = CscMatrix::from_indicator(5, |q, k| k != 3 && (q + k) % 2 == 0);
        let text = csc.to_index_string();
        let back = CscMatrix::from_index_string(5, &text).unwrap();
        assert_eq!(back, csc);
        // The restored index carries the same precomputed row gather.
        for q in 0..5 {
            assert_eq!(back.row_value_positions(q), csc.row_value_positions(q));
        }
        let dg = diag_global(9);
        assert_eq!(
            CscMatrix::from_index_string(9, &dg.to_index_string()).unwrap(),
            dg
        );
    }

    /// Densifies a CSC-ordered gradient for comparison with the dense
    /// reference.
    fn dense_masked_reference(
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        index: &CscMatrix,
        scale: f32,
        gout: &Matrix,
    ) -> (Matrix, Matrix, Matrix) {
        let n = index.size();
        let mut bias = Matrix::filled(n, n, f32::NEG_INFINITY);
        for (qq, kk) in index.iter_kept() {
            bias.set(qq, kk, 0.0);
        }
        let (_, probs) = kernels::attention_head(q, k, v, scale, Some(&bias));
        kernels::attention_head_backward(q, k, v, scale, &probs, gout)
    }

    #[test]
    fn backward_matches_dense_masked_reference() {
        let (n, dk) = (24, 8);
        let (q, k, v) = (random(n, dk, 20), random(n, dk, 21), random(n, dk, 22));
        let gout = random(n, dk, 23);
        let index = diag_global(n);
        let probs = sddmm_k_stationary(&q, &k, &index, 0.3).softmax_rows();
        let (gq, gk, gv) = attention_head_backward(&q, &k, &v, 0.3, &probs, &gout);
        let (rgq, rgk, rgv) = dense_masked_reference(&q, &k, &v, &index, 0.3, &gout);
        assert!(
            gq.max_abs_diff(&rgq) < 1e-4,
            "gq off by {}",
            gq.max_abs_diff(&rgq)
        );
        assert!(
            gk.max_abs_diff(&rgk) < 1e-4,
            "gk off by {}",
            gk.max_abs_diff(&rgk)
        );
        assert!(
            gv.max_abs_diff(&rgv) < 1e-4,
            "gv off by {}",
            gv.max_abs_diff(&rgv)
        );
    }

    #[test]
    fn backward_backends_agree_bitwise() {
        let (n, dk) = (33, 8);
        let (q, k, v) = (random(n, dk, 24), random(n, dk, 25), random(n, dk, 26));
        let gout = random(n, dk, 27);
        let index = diag_global(n);
        let probs = sddmm_k_stationary(&q, &k, &index, 0.25).softmax_rows();
        let s = attention_head_backward_with(Backend::Scalar, &q, &k, &v, 0.25, &probs, &gout);
        let b = attention_head_backward_with(Backend::Blocked, &q, &k, &v, 0.25, &probs, &gout);
        assert_eq!(s.0, b.0, "gq backends disagree");
        assert_eq!(s.1, b.1, "gk backends disagree");
        assert_eq!(s.2, b.2, "gv backends disagree");
        // Granular kernels agree too.
        let dp_s = spmm_backward_with(Backend::Scalar, &probs, &v, &gout);
        let dp_b = spmm_backward_with(Backend::Blocked, &probs, &v, &gout);
        assert_eq!(dp_s.0, dp_b.0);
        assert_eq!(dp_s.1, dp_b.1);
        let ds_s = sparse_softmax_backward_with(Backend::Scalar, &probs, &dp_s.0);
        let ds_b = sparse_softmax_backward_with(Backend::Blocked, &probs, &dp_b.0);
        assert_eq!(ds_s, ds_b);
        let g_s = sddmm_backward_with(Backend::Scalar, &q, &k, &ds_s, 0.25);
        let g_b = sddmm_backward_with(Backend::Blocked, &q, &k, &ds_b, 0.25);
        assert_eq!(g_s, g_b);
    }

    #[test]
    fn forced_multithread_backward_is_identical() {
        let (n, dk) = (40, 8);
        let (q, k, v) = (random(n, dk, 28), random(n, dk, 29), random(n, dk, 30));
        let gout = random(n, dk, 31);
        let index = diag_global(n);
        let probs = sddmm_k_stationary(&q, &k, &index, 0.3).softmax_rows();
        let sequential = attention_head_backward(&q, &k, &v, 0.3, &probs, &gout);
        let parallel = kernels::with_thread_budget(4, || {
            attention_head_backward(&q, &k, &v, 0.3, &probs, &gout)
        });
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn sddmm_backward_finite_difference_on_tiny_head() {
        // d/dQ and d/dK of loss = Σ gout ⊙ sddmm(Q, K) on a 4-token head.
        let (n, dk) = (4, 3);
        let (q, k) = (random(n, dk, 32), random(n, dk, 33));
        let index = CscMatrix::from_indicator(n, |r, c| r == c || c == 0);
        let gout: Vec<f32> = (0..index.nnz()).map(|i| 0.5 + 0.1 * i as f32).collect();
        let loss = |q: &Matrix, k: &Matrix| {
            sddmm_k_stationary(q, k, &index, 0.5)
                .values()
                .iter()
                .zip(&gout)
                .map(|(s, g)| s * g)
                .sum::<f32>()
        };
        let ds = SparseScores::new(index.clone(), gout.clone());
        let (gq, gk) = sddmm_backward(&q, &k, &ds, 0.5);
        let h = 1e-2f32;
        for r in 0..n {
            for c in 0..dk {
                let mut qp = q.clone();
                qp.set(r, c, q.get(r, c) + h);
                let mut qm = q.clone();
                qm.set(r, c, q.get(r, c) - h);
                let fd = (loss(&qp, &k) - loss(&qm, &k)) / (2.0 * h);
                assert!((fd - gq.get(r, c)).abs() < 1e-2, "gq({r},{c})");
                let mut kp = k.clone();
                kp.set(r, c, k.get(r, c) + h);
                let mut km = k.clone();
                km.set(r, c, k.get(r, c) - h);
                let fd = (loss(&q, &kp) - loss(&q, &km)) / (2.0 * h);
                assert!((fd - gk.get(r, c)).abs() < 1e-2, "gk({r},{c})");
            }
        }
    }

    #[test]
    fn value_columns_invert_the_walk() {
        let csc = diag_global(9);
        let cols = csc.value_columns();
        for (p, (_, k)) in csc.iter_kept().enumerate() {
            assert_eq!(cols[p] as usize, k, "position {p}");
        }
    }

    #[test]
    fn from_col_rows_rejects_bad_input() {
        assert!(
            CscMatrix::try_from_col_rows(2, &[vec![0]]).is_err(),
            "short"
        );
        assert!(
            CscMatrix::try_from_col_rows(2, &[vec![0, 2], vec![]]).is_err(),
            "row out of bounds"
        );
        assert!(
            CscMatrix::try_from_col_rows(2, &[vec![1, 0], vec![]]).is_err(),
            "descending rows"
        );
        assert!(CscMatrix::from_index_string(3, "0;1;9").is_err());
        assert!(CscMatrix::from_index_string(3, "0;x;2").is_err());
        assert!(CscMatrix::from_index_string(3, "0;1").is_err());
    }
}
