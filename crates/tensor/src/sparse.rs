//! The sparse kernel layer: CSC-indexed attention dataflows.
//!
//! This module mirrors the dense [`crate::kernels`] layer for the
//! workloads the ViTCoD accelerator's sparser engine runs: a
//! K-stationary SDDMM that emits attention scores column by column over
//! a fixed [`CscMatrix`] index, a row-wise softmax *in the sparse
//! domain*, and an output-stationary SpMM that streams the sparse
//! probabilities through resident output rows. An 8-bit SDDMM variant
//! runs the same walk on quantized operands with i32 accumulation, as
//! the accelerator's MAC lines do.
//!
//! # Backend contract
//!
//! Every kernel follows the dense layer's agreement contract: the
//! [`Backend::Scalar`] flavour is a plain sequential reference loop, the
//! [`Backend::Blocked`] flavour partitions the CSC stream into
//! column segments (SDDMM), query rows (softmax) or output-row chunks
//! (SpMM) and fans them across worker threads — and **both produce
//! bit-identical values**, because parallelisation only splits disjoint
//! outputs while each value's accumulation order is unchanged.

use crate::kernels::{self, Backend};
use crate::ops::softmax_row;
use crate::{Matrix, QuantizedMatrix};

/// A boolean sparsity pattern over an `n × n` attention map.
///
/// Implemented by `vitcod_core::AttentionMask`; the generic
/// [`CscMatrix::from_mask`] constructor keeps this crate free of any
/// dependency on the algorithm layer while call sites keep their
/// `CscMatrix::from_mask(&mask)` spelling.
pub trait SparsityPattern {
    /// Token count `n` (the pattern is `n × n`).
    fn size(&self) -> usize;
    /// Whether position `(q, k)` is kept.
    fn is_kept(&self, q: usize, k: usize) -> bool;
}

/// Compressed-sparse-column index structure of a fixed attention mask.
///
/// The ViTCoD accelerator pre-loads fixed sparse attention indexes in
/// CSC form because it matches the K-stationary dataflow: walking one
/// CSC column enumerates exactly the Q rows that pair with the
/// currently-resident K vector.
///
/// # Example
///
/// ```
/// use vitcod_tensor::sparse::CscMatrix;
///
/// // Keep the diagonal of a 3-token map.
/// let csc = CscMatrix::from_indicator(3, |q, k| q == k);
/// assert_eq!(csc.nnz(), 3);
/// assert_eq!(csc.col_rows(1), &[1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CscMatrix {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    // Row-major companion, precomputed once: for each query row, the
    // positions its values occupy in the CSC-ordered values buffer
    // (ascending column order). This is the gather the sparse softmax
    // needs per call; deriving it here keeps the serving hot path free
    // of per-inference index rebuilds.
    row_ptr: Vec<usize>,
    row_pos: Vec<u32>,
}

impl CscMatrix {
    /// Builds the CSC index of the positions where `kept(q, k)` is true.
    pub fn from_indicator(n: usize, kept: impl Fn(usize, usize) -> bool) -> Self {
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::new();
        col_ptr.push(0);
        for k in 0..n {
            for q in 0..n {
                if kept(q, k) {
                    row_idx.push(q as u32);
                }
            }
            col_ptr.push(row_idx.len());
        }
        // Counting sort of value positions by row: ascending position
        // within a row is ascending column, since CSC order is
        // column-major.
        let mut row_counts = vec![0usize; n];
        for &q in &row_idx {
            row_counts[q as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        for r in 0..n {
            row_ptr.push(row_ptr[r] + row_counts[r]);
        }
        let mut next = row_ptr[..n].to_vec();
        let mut row_pos = vec![0u32; row_idx.len()];
        for (p, &q) in row_idx.iter().enumerate() {
            row_pos[next[q as usize]] = p as u32;
            next[q as usize] += 1;
        }
        Self {
            n,
            col_ptr,
            row_idx,
            row_ptr,
            row_pos,
        }
    }

    /// Builds the CSC index of a [`SparsityPattern`].
    pub fn from_mask<P: SparsityPattern + ?Sized>(mask: &P) -> Self {
        Self::from_indicator(mask.size(), |q, k| mask.is_kept(q, k))
    }

    /// Builds the index directly from per-column row lists — the
    /// deserialization constructor: `O(nnz)` instead of the `O(n²)`
    /// indicator scan.
    ///
    /// # Errors
    ///
    /// Returns a message when `cols.len() != n`, a row index is out of
    /// bounds, or a column's rows are not strictly ascending.
    pub fn try_from_col_rows(n: usize, cols: &[Vec<u32>]) -> Result<Self, String> {
        if cols.len() != n {
            return Err(format!("expected {n} columns, got {}", cols.len()));
        }
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::new();
        col_ptr.push(0);
        for (k, rows) in cols.iter().enumerate() {
            let mut prev: Option<u32> = None;
            for &q in rows {
                if q as usize >= n {
                    return Err(format!("column {k}: row {q} out of bounds (n = {n})"));
                }
                if prev.is_some_and(|p| p >= q) {
                    return Err(format!("column {k}: rows not strictly ascending"));
                }
                prev = Some(q);
                row_idx.push(q);
            }
            col_ptr.push(row_idx.len());
        }
        Ok(Self::from_csc_vectors(n, col_ptr, row_idx))
    }

    /// Assembles the full index (including the precomputed row gather)
    /// from validated CSC vectors.
    fn from_csc_vectors(n: usize, col_ptr: Vec<usize>, row_idx: Vec<u32>) -> Self {
        let mut row_counts = vec![0usize; n];
        for &q in &row_idx {
            row_counts[q as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        for r in 0..n {
            row_ptr.push(row_ptr[r] + row_counts[r]);
        }
        let mut next = row_ptr[..n].to_vec();
        let mut row_pos = vec![0u32; row_idx.len()];
        for (p, &q) in row_idx.iter().enumerate() {
            row_pos[next[q as usize]] = p as u32;
            next[q as usize] += 1;
        }
        Self {
            n,
            col_ptr,
            row_idx,
            row_ptr,
            row_pos,
        }
    }

    /// Serializes the index as one line of per-column row lists:
    /// columns separated by `;`, row indices within a column by `,`
    /// (empty columns stay empty). The inverse of
    /// [`CscMatrix::from_index_string`].
    ///
    /// # Example
    ///
    /// ```
    /// use vitcod_tensor::sparse::CscMatrix;
    ///
    /// let csc = CscMatrix::from_indicator(3, |q, k| q == k);
    /// assert_eq!(csc.to_index_string(), "0;1;2");
    /// assert_eq!(CscMatrix::from_index_string(3, "0;1;2").unwrap(), csc);
    /// ```
    pub fn to_index_string(&self) -> String {
        let mut out = String::new();
        for k in 0..self.n {
            if k > 0 {
                out.push(';');
            }
            for (i, q) in self.col_rows(k).iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&q.to_string());
            }
        }
        out
    }

    /// Parses an index written by [`CscMatrix::to_index_string`].
    ///
    /// # Errors
    ///
    /// Returns a message on malformed numbers, out-of-bounds rows, or
    /// a column count that disagrees with `n`.
    pub fn from_index_string(n: usize, text: &str) -> Result<Self, String> {
        let cols: Vec<Vec<u32>> = text
            .split(';')
            .map(|col| {
                if col.is_empty() {
                    return Ok(Vec::new());
                }
                col.split(',')
                    .map(|v| {
                        v.parse::<u32>()
                            .map_err(|_| format!("malformed row index '{v}'"))
                    })
                    .collect()
            })
            .collect::<Result<_, String>>()?;
        // `"".split(';')` yields one empty column; treat it as zero
        // columns so the empty index round-trips at n = 0.
        let cols = if n == 0 && text.is_empty() {
            Vec::new()
        } else {
            cols
        };
        Self::try_from_col_rows(n, &cols)
    }

    /// Token count `n`.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Row indices of column `k`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.size()`.
    pub fn col_rows(&self, k: usize) -> &[u32] {
        assert!(k < self.n, "column {k} out of bounds");
        // Casting back and forth keeps the storage compact (u32 covers
        // any realistic token count) while the API stays usize-friendly.
        let lo = self.col_ptr[k];
        let hi = self.col_ptr[k + 1];
        &self.row_idx[lo..hi]
    }

    /// Non-zero count of column `k`.
    pub fn col_nnz(&self, k: usize) -> usize {
        self.col_rows(k).len()
    }

    /// Positions that row `q`'s kept entries occupy in a CSC-ordered
    /// values buffer, ascending column order (precomputed — the row
    /// gather of the sparse softmax).
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.size()`.
    pub fn row_value_positions(&self, q: usize) -> &[u32] {
        assert!(q < self.n, "row {q} out of bounds");
        &self.row_pos[self.row_ptr[q]..self.row_ptr[q + 1]]
    }

    /// Size of the index structure in bytes: `(n + 1)` column pointers
    /// (4 B each) plus one 4-byte row index per non-zero. This is what
    /// the accelerator's 20 KB index buffer must hold per tile.
    pub fn index_bytes(&self) -> usize {
        (self.col_ptr.len() + self.row_idx.len()) * 4
    }

    /// Iterates the kept `(q, k)` positions in column-major (CSC value)
    /// order — the order [`SparseScores`] values are stored in.
    pub fn iter_kept(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |k| self.col_rows(k).iter().map(move |&q| (q as usize, k)))
    }

    /// Exclusive prefix sum of per-column non-zero counts: `off[k]` is
    /// the position of column `k`'s first value in a CSC-ordered values
    /// buffer.
    fn column_offsets(&self) -> Vec<usize> {
        let mut off = Vec::with_capacity(self.n + 1);
        off.push(0usize);
        for k in 0..self.n {
            off.push(off[k] + self.col_nnz(k));
        }
        off
    }

    /// Partitions the CSC columns into contiguous ranges of roughly
    /// equal non-zero count, one per worker thread. Returns
    /// `(value_bounds, column_starts)`, both `segments + 1` long,
    /// suitable for [`kernels::par_segments`].
    fn column_partition(&self, col_off: &[usize]) -> (Vec<usize>, Vec<usize>) {
        let n = self.n;
        let nnz = self.nnz();
        let threads = kernels::num_threads().max(1);
        let target = nnz.div_ceil(threads).max(1);
        let mut value_bounds = vec![0usize];
        let mut column_starts = vec![0usize];
        for k in 0..n {
            let seg_nnz = col_off[k + 1] - value_bounds.last().unwrap();
            if seg_nnz >= target && k + 1 < n {
                value_bounds.push(col_off[k + 1]);
                column_starts.push(k + 1);
            }
        }
        value_bounds.push(nnz);
        column_starts.push(n);
        (value_bounds, column_starts)
    }
}

/// Sparse attention scores in CSC layout: one value per kept `(q, k)`
/// position, column-major, aligned with a [`CscMatrix`] index.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseScores {
    index: CscMatrix,
    values: Vec<f32>,
}

impl SparseScores {
    /// Wraps a CSC-ordered values buffer with its index.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != index.nnz()`.
    pub fn new(index: CscMatrix, values: Vec<f32>) -> Self {
        assert_eq!(values.len(), index.nnz(), "one value per kept position");
        Self { index, values }
    }

    /// The CSC index describing which positions the values occupy.
    pub fn index(&self) -> &CscMatrix {
        &self.index
    }

    /// The stored values in column-major (CSC) order.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Number of stored scores.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Densifies into an `n × n` matrix (zeros at pruned positions).
    pub fn to_dense(&self) -> Matrix {
        let n = self.index.size();
        let mut out = Matrix::zeros(n, n);
        let mut pos = 0;
        for k in 0..n {
            for &q in self.index.col_rows(k) {
                out.set(q as usize, k, self.values[pos]);
                pos += 1;
            }
        }
        out
    }

    /// Applies a row-wise softmax *in the sparse domain* on the ambient
    /// backend: each query row's kept scores are normalised among
    /// themselves, exactly what the engines' softmax units do after a
    /// complete attention row is available.
    pub fn softmax_rows(&self) -> SparseScores {
        self.softmax_rows_with(kernels::backend())
    }

    /// [`Self::softmax_rows`] on an explicit backend.
    pub fn softmax_rows_with(&self, backend: Backend) -> SparseScores {
        let n = self.index.size();
        // The row gather is precomputed on the index
        // ([`CscMatrix::row_value_positions`]), so each call only does
        // the normalisation itself.
        let normalise = |r: usize| {
            let mut row: Vec<f32> = self
                .index
                .row_value_positions(r)
                .iter()
                .map(|&p| self.values[p as usize])
                .collect();
            softmax_row(&mut row);
            row
        };
        // Per-row normalisation fans out across workers when blocked; the
        // scatter back into column order stays sequential (it is O(nnz)
        // copies).
        let softmaxed: Vec<Vec<f32>> = match backend {
            Backend::Scalar => (0..n).map(normalise).collect(),
            Backend::Blocked => {
                let work_per_row = self.values.len() / n.max(1) + 1;
                kernels::par_map_collect(n, work_per_row, normalise)
            }
        };
        let mut values = self.values.clone();
        for (r, row) in softmaxed.into_iter().enumerate() {
            for (&p, v) in self.index.row_value_positions(r).iter().zip(row) {
                values[p as usize] = v;
            }
        }
        SparseScores {
            index: self.index.clone(),
            values,
        }
    }
}

/// K-stationary SDDMM (paper Fig. 11(b) / Fig. 13(a)) on the ambient
/// backend: K columns are loaded one at a time; for each kept `(q, k)`
/// position listed in the CSC index, a `dk`-length dot product
/// accumulates across the MAC line (inter-PE accumulation), emitting
/// attention scores column by column.
///
/// On the blocked backend the CSC columns are partitioned into
/// contiguous non-zero-balanced ranges and fanned out across worker
/// threads, each writing its own disjoint slice of the values buffer
/// (the software analogue of the accelerator distributing K columns
/// over MAC lines).
///
/// `scale` is the `1/sqrt(dk)` attention scaling.
///
/// # Panics
///
/// Panics if `q`/`k` have different feature dims or the index size
/// differs from the token count.
pub fn sddmm_k_stationary(q: &Matrix, k: &Matrix, index: &CscMatrix, scale: f32) -> SparseScores {
    sddmm_k_stationary_with(kernels::backend(), q, k, index, scale)
}

/// [`sddmm_k_stationary`] on an explicit backend.
pub fn sddmm_k_stationary_with(
    backend: Backend,
    q: &Matrix,
    k: &Matrix,
    index: &CscMatrix,
    scale: f32,
) -> SparseScores {
    assert_eq!(q.cols(), k.cols(), "q/k feature dims differ");
    assert_eq!(q.rows(), index.size(), "index size must match tokens");
    assert_eq!(k.rows(), index.size(), "index size must match tokens");
    let mut values = vec![0.0f32; index.nnz()];
    let emit = |cols: std::ops::Range<usize>, out: &mut [f32]| {
        let mut pos = 0;
        for col in cols {
            // K column resident; related Q rows stream temporally.
            let k_vec = k.row(col);
            for &qi in index.col_rows(col) {
                let q_vec = q.row(qi as usize);
                let mut acc = 0.0f32;
                for (a, b) in q_vec.iter().zip(k_vec.iter()) {
                    acc += a * b;
                }
                out[pos] = acc * scale;
                pos += 1;
            }
        }
    };
    match backend {
        Backend::Scalar => emit(0..index.size(), &mut values),
        Backend::Blocked => {
            let col_off = index.column_offsets();
            let (value_bounds, column_starts) = index.column_partition(&col_off);
            kernels::par_segments(&mut values, &value_bounds, |seg, out| {
                emit(column_starts[seg]..column_starts[seg + 1], out)
            });
        }
    }
    SparseScores {
        index: index.clone(),
        values,
    }
}

/// 8-bit K-stationary SDDMM: the same walk with i8 operands and i32
/// accumulation, dequantised at emission — the MAC lines' arithmetic.
///
/// # Panics
///
/// Panics on shape mismatches as [`sddmm_k_stationary`] does.
pub fn sddmm_k_stationary_int8(
    q: &QuantizedMatrix,
    k: &QuantizedMatrix,
    index: &CscMatrix,
    scale: f32,
) -> SparseScores {
    sddmm_k_stationary_int8_with(kernels::backend(), q, k, index, scale)
}

/// [`sddmm_k_stationary_int8`] on an explicit backend.
pub fn sddmm_k_stationary_int8_with(
    backend: Backend,
    q: &QuantizedMatrix,
    k: &QuantizedMatrix,
    index: &CscMatrix,
    scale: f32,
) -> SparseScores {
    assert_eq!(q.shape().1, k.shape().1, "q/k feature dims differ");
    assert_eq!(q.shape().0, index.size(), "index size must match tokens");
    assert_eq!(k.shape().0, index.size(), "index size must match tokens");
    let out_scale = q.params().scale * k.params().scale * scale;
    let mut values = vec![0.0f32; index.nnz()];
    let emit = |cols: std::ops::Range<usize>, out: &mut [f32]| {
        let mut pos = 0;
        for col in cols {
            let k_vec = k.row_raw(col);
            for &qi in index.col_rows(col) {
                let q_vec = q.row_raw(qi as usize);
                let mut acc: i32 = 0;
                for (a, b) in q_vec.iter().zip(k_vec.iter()) {
                    acc += (*a as i32) * (*b as i32);
                }
                out[pos] = acc as f32 * out_scale;
                pos += 1;
            }
        }
    };
    match backend {
        Backend::Scalar => emit(0..index.size(), &mut values),
        Backend::Blocked => {
            let col_off = index.column_offsets();
            let (value_bounds, column_starts) = index.column_partition(&col_off);
            kernels::par_segments(&mut values, &value_bounds, |seg, out| {
                emit(column_starts[seg]..column_starts[seg + 1], out)
            });
        }
    }
    SparseScores {
        index: index.clone(),
        values,
    }
}

/// Output-stationary SpMM (paper Fig. 13(b)) on the ambient backend:
/// output rows `V′[q, :]` stay resident in the PE registers (intra-PE
/// accumulation) while the sparse attention probabilities and V rows
/// stream through; each kept `(q, k)` score accumulates `prob · V[k, :]`
/// into output row `q`.
///
/// # Panics
///
/// Panics if shapes disagree with the score index.
pub fn spmm_output_stationary(scores: &SparseScores, v: &Matrix) -> Matrix {
    spmm_output_stationary_with(kernels::backend(), scores, v)
}

/// [`spmm_output_stationary`] on an explicit backend.
pub fn spmm_output_stationary_with(backend: Backend, scores: &SparseScores, v: &Matrix) -> Matrix {
    let n = scores.index.size();
    assert_eq!(v.rows(), n, "V token count must match index");
    let cols = v.cols();
    let mut out = Matrix::zeros(n, cols);
    if cols == 0 {
        return out;
    }
    let index = &scores.index;
    let values = &scores.values;
    // Output rows stay resident (intra-PE accumulation) while the sparse
    // probabilities and V rows stream through. Each invocation owns a
    // disjoint output-row window and walks the full CSC stream,
    // accumulating only the (q, k) pairs whose output row it owns — the
    // index walk is duplicated per worker but the MACs are not. Exact
    // zeros are skipped in both flavours, keeping them bit-identical.
    let accumulate = |first_row: usize, chunk: &mut [f32]| {
        let chunk_rows = chunk.len() / cols;
        let mut pos = 0;
        for k in 0..n {
            let v_row = v.row(k);
            for &q in index.col_rows(k) {
                let p = values[pos];
                pos += 1;
                let q = q as usize;
                if p == 0.0 || q < first_row || q >= first_row + chunk_rows {
                    continue;
                }
                let local = q - first_row;
                let out_row = &mut chunk[local * cols..(local + 1) * cols];
                for (o, vv) in out_row.iter_mut().zip(v_row.iter()) {
                    *o += p * vv;
                }
            }
        }
    };
    match backend {
        Backend::Scalar => accumulate(0, out.as_mut_slice()),
        Backend::Blocked => {
            let work_per_row = cols * (scores.values.len() / n.max(1) + 1);
            kernels::for_each_row_chunk_weighted(out.as_mut_slice(), cols, work_per_row, accumulate)
        }
    }
    out
}

/// Executes one head's full sparse attention through the accelerator's
/// dataflow: K-stationary SDDMM → sparse softmax → output-stationary
/// SpMM.
pub fn attention_head(q: &Matrix, k: &Matrix, v: &Matrix, index: &CscMatrix, scale: f32) -> Matrix {
    let scores = sddmm_k_stationary(q, k, index, scale);
    let probs = scores.softmax_rows();
    spmm_output_stationary(&probs, v)
}

/// [`attention_head`] with an 8-bit SDDMM: the attention scores are
/// computed from quantized Q/K with i32 accumulation (the MAC lines'
/// arithmetic); softmax and SpMM run in fp32 on the dequantised scores.
pub fn attention_head_int8(
    q: &QuantizedMatrix,
    k: &QuantizedMatrix,
    v: &Matrix,
    index: &CscMatrix,
    scale: f32,
) -> Matrix {
    let scores = sddmm_k_stationary_int8(q, k, index, scale);
    let probs = scores.softmax_rows();
    spmm_output_stationary(&probs, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Initializer;

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        Initializer::Normal { std: 1.0 }.sample(rows, cols, seed)
    }

    /// Diagonal + first-column + next-neighbour pattern (a miniature of
    /// the paper's polarized maps).
    fn diag_global(n: usize) -> CscMatrix {
        CscMatrix::from_indicator(n, |q, k| q == k || k == 0 || k == (q + 1) % n)
    }

    #[test]
    fn from_indicator_columns_ascending_and_counted() {
        let csc = diag_global(8);
        for k in 0..8 {
            let rows = csc.col_rows(k);
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "col {k} not sorted");
            assert_eq!(csc.col_nnz(k), rows.len());
        }
        assert_eq!(csc.iter_kept().count(), csc.nnz());
        assert_eq!(csc.index_bytes(), (9 + csc.nnz()) * 4);
    }

    #[test]
    fn row_value_positions_invert_the_csc_walk() {
        let csc = diag_global(12);
        let entries: Vec<(usize, usize)> = csc.iter_kept().collect();
        let mut seen = vec![false; csc.nnz()];
        for q in 0..12 {
            let mut prev_col = None;
            for &p in csc.row_value_positions(q) {
                let (pq, pk) = entries[p as usize];
                assert_eq!(pq, q, "position {p} gathered into wrong row");
                assert!(
                    prev_col < Some(pk),
                    "row {q} positions not ascending by column"
                );
                prev_col = Some(pk);
                assert!(!seen[p as usize], "position {p} gathered twice");
                seen[p as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some value positions unmapped");
    }

    #[test]
    fn sddmm_matches_dense_scores_at_kept_positions() {
        let (q, k) = (random(24, 16, 1), random(24, 16, 2));
        let index = diag_global(24);
        let sparse = sddmm_k_stationary(&q, &k, &index, 0.25);
        let dense = q.matmul_nt(&k).scale(0.25);
        let sd = sparse.to_dense();
        for (qq, kk) in index.iter_kept() {
            assert!(
                (sd.get(qq, kk) - dense.get(qq, kk)).abs() < 1e-5,
                "score ({qq},{kk}) differs"
            );
        }
    }

    #[test]
    fn backends_agree_bitwise_on_the_full_dataflow() {
        let (q, k, v) = (random(33, 8, 3), random(33, 8, 4), random(33, 8, 5));
        let index = diag_global(33);
        let scores_s = sddmm_k_stationary_with(Backend::Scalar, &q, &k, &index, 0.3);
        let scores_b = sddmm_k_stationary_with(Backend::Blocked, &q, &k, &index, 0.3);
        assert_eq!(scores_s, scores_b);
        let probs_s = scores_s.softmax_rows_with(Backend::Scalar);
        let probs_b = scores_b.softmax_rows_with(Backend::Blocked);
        assert_eq!(probs_s, probs_b);
        assert_eq!(
            spmm_output_stationary_with(Backend::Scalar, &probs_s, &v),
            spmm_output_stationary_with(Backend::Blocked, &probs_b, &v)
        );
    }

    #[test]
    fn forced_multithread_dataflow_is_identical() {
        let (q, k, v) = (random(40, 8, 6), random(40, 8, 7), random(40, 8, 8));
        let index = diag_global(40);
        let sequential = attention_head(&q, &k, &v, &index, 0.3);
        kernels::set_num_threads(4);
        let parallel = attention_head(&q, &k, &v, &index, 0.3);
        kernels::set_num_threads(0);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn sparse_softmax_rows_sum_to_one() {
        let (q, k) = (random(16, 8, 9), random(16, 8, 10));
        let index = diag_global(16);
        let probs = sddmm_k_stationary(&q, &k, &index, 0.3).softmax_rows();
        let dense = probs.to_dense();
        for r in 0..16 {
            let s: f32 = dense.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn int8_backends_agree_bitwise() {
        let (q, k) = (random(24, 32, 11), random(24, 32, 12));
        let index = diag_global(24);
        let (qi, ki) = (QuantizedMatrix::quantize(&q), QuantizedMatrix::quantize(&k));
        assert_eq!(
            sddmm_k_stationary_int8_with(Backend::Scalar, &qi, &ki, &index, 0.2),
            sddmm_k_stationary_int8_with(Backend::Blocked, &qi, &ki, &index, 0.2)
        );
    }

    #[test]
    fn spmm_rows_without_kept_positions_stay_zero() {
        let v = random(8, 4, 13);
        // Only row 3 attends (to columns 1 and 2).
        let index = CscMatrix::from_indicator(8, |q, k| q == 3 && (k == 1 || k == 2));
        let scores = SparseScores::new(index, vec![0.5, 0.5]);
        let out = spmm_output_stationary(&scores, &v);
        for r in 0..8 {
            if r != 3 {
                assert!(out.row(r).iter().all(|&x| x == 0.0), "row {r} not zero");
            }
        }
        assert!(out.row(3).iter().any(|&x| x != 0.0));
    }

    #[test]
    #[should_panic(expected = "one value per kept position")]
    fn sparse_scores_length_mismatch_panics() {
        SparseScores::new(diag_global(4), vec![0.0; 3]);
    }

    #[test]
    fn index_string_round_trips_including_empty_columns() {
        // Row 0 attends nowhere in column 2; column 3 is fully empty.
        let csc = CscMatrix::from_indicator(5, |q, k| k != 3 && (q + k) % 2 == 0);
        let text = csc.to_index_string();
        let back = CscMatrix::from_index_string(5, &text).unwrap();
        assert_eq!(back, csc);
        // The restored index carries the same precomputed row gather.
        for q in 0..5 {
            assert_eq!(back.row_value_positions(q), csc.row_value_positions(q));
        }
        let dg = diag_global(9);
        assert_eq!(
            CscMatrix::from_index_string(9, &dg.to_index_string()).unwrap(),
            dg
        );
    }

    #[test]
    fn from_col_rows_rejects_bad_input() {
        assert!(
            CscMatrix::try_from_col_rows(2, &[vec![0]]).is_err(),
            "short"
        );
        assert!(
            CscMatrix::try_from_col_rows(2, &[vec![0, 2], vec![]]).is_err(),
            "row out of bounds"
        );
        assert!(
            CscMatrix::try_from_col_rows(2, &[vec![1, 0], vec![]]).is_err(),
            "descending rows"
        );
        assert!(CscMatrix::from_index_string(3, "0;1;9").is_err());
        assert!(CscMatrix::from_index_string(3, "0;x;2").is_err());
        assert!(CscMatrix::from_index_string(3, "0;1").is_err());
    }
}
