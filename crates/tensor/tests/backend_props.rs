//! Property tests of the kernel-backend agreement contract: for every
//! kernel and every shape — including non-tile-multiple, single-row and
//! empty edge cases — the `Blocked` parallel backend must produce results
//! identical to the `Scalar` reference (the kernels preserve the
//! floating-point reduction order, so agreement is exact, well inside the
//! documented 1e-5 budget).

use proptest::prelude::*;
use vitcod_tensor::kernels::{
    self, matmul_nt_with, matmul_tn_with, matmul_with, transpose_with, Backend,
};
use vitcod_tensor::Matrix;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Shapes that stress the blocking scheme: around the 64-element k-panel
/// boundary, far from any tile multiple, and degenerate.
const GEMM_SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (1, 64, 1),
    (1, 65, 9),
    (7, 13, 5),
    (31, 64, 33),
    (33, 63, 65),
    (64, 128, 32),
    (5, 200, 3),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_backends_agree(shape_idx in 0usize..8, seed in 0u64..1000) {
        let (m, k, n) = GEMM_SHAPES[shape_idx];
        let a = matrix(m, k).new_value(&mut TestRng::new(seed));
        let b = matrix(k, n).new_value(&mut TestRng::new(seed.wrapping_add(1)));
        let blocked = matmul_with(Backend::Blocked, &a, &b);
        let scalar = matmul_with(Backend::Scalar, &a, &b);
        prop_assert!(blocked == scalar, "shape ({m},{k},{n}) seed {seed}");
        prop_assert!(blocked.max_abs_diff(&scalar) <= 1e-5);
    }

    #[test]
    fn matmul_nt_backends_agree(shape_idx in 0usize..8, seed in 0u64..1000) {
        let (m, k, n) = GEMM_SHAPES[shape_idx];
        let a = matrix(m, k).new_value(&mut TestRng::new(seed));
        let b = matrix(n, k).new_value(&mut TestRng::new(seed.wrapping_add(2)));
        let blocked = matmul_nt_with(Backend::Blocked, &a, &b);
        let scalar = matmul_nt_with(Backend::Scalar, &a, &b);
        prop_assert!(blocked == scalar, "shape ({m},{k},{n}) seed {seed}");
    }

    #[test]
    fn matmul_tn_backends_agree(shape_idx in 0usize..8, seed in 0u64..1000) {
        let (m, k, n) = GEMM_SHAPES[shape_idx];
        let a = matrix(k, m).new_value(&mut TestRng::new(seed));
        let b = matrix(k, n).new_value(&mut TestRng::new(seed.wrapping_add(3)));
        let blocked = matmul_tn_with(Backend::Blocked, &a, &b);
        let scalar = matmul_tn_with(Backend::Scalar, &a, &b);
        prop_assert!(blocked == scalar, "shape ({m},{k},{n}) seed {seed}");
    }

    #[test]
    fn transpose_backends_agree(rows in 1usize..80, cols in 1usize..80, seed in 0u64..100) {
        let a = matrix(rows, cols).new_value(&mut TestRng::new(seed));
        prop_assert_eq!(
            transpose_with(Backend::Blocked, &a),
            transpose_with(Backend::Scalar, &a)
        );
    }

    #[test]
    fn softmax_backends_agree(rows in 1usize..60, cols in 1usize..40, seed in 0u64..100) {
        let a = matrix(rows, cols).new_value(&mut TestRng::new(seed));
        let prior = kernels::backend();
        kernels::set_backend(Backend::Scalar);
        let scalar = kernels::softmax_rows(&a);
        kernels::set_backend(Backend::Blocked);
        let blocked = kernels::softmax_rows(&a);
        kernels::set_backend(prior);
        prop_assert!(blocked == scalar);
        prop_assert!(blocked.max_abs_diff(&scalar) <= 1e-5);
    }

    #[test]
    fn layernorm_backends_agree(rows in 1usize..40, cols in 2usize..32, seed in 0u64..100) {
        let a = matrix(rows, cols).new_value(&mut TestRng::new(seed));
        let gamma = vec![1.3f32; cols];
        let beta = vec![-0.2f32; cols];
        let prior = kernels::backend();
        kernels::set_backend(Backend::Scalar);
        let scalar = kernels::layernorm_rows(&a, &gamma, &beta, 1e-5);
        kernels::set_backend(Backend::Blocked);
        let blocked = kernels::layernorm_rows(&a, &gamma, &beta, 1e-5);
        kernels::set_backend(prior);
        prop_assert!(blocked == scalar);
    }

    #[test]
    fn empty_and_single_row_matmuls(cols in 1usize..20, seed in 0u64..50) {
        // 0×k · k×n and 1×k · k×n edge cases.
        let k = cols;
        let b = matrix(k, 4).new_value(&mut TestRng::new(seed));
        let empty = Matrix::zeros(0, k);
        prop_assert_eq!(matmul_with(Backend::Blocked, &empty, &b).shape(), (0, 4));
        let single = matrix(1, k).new_value(&mut TestRng::new(seed.wrapping_add(4)));
        prop_assert_eq!(
            matmul_with(Backend::Blocked, &single, &b),
            matmul_with(Backend::Scalar, &single, &b)
        );
    }
}
