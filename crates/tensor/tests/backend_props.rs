//! Property tests of the kernel-backend agreement contract: for every
//! kernel and every shape — including non-tile-multiple, non-lane-multiple,
//! single-row and empty edge cases — the `Blocked` parallel backend and
//! the `Simd` lane-tiled backend must produce results identical to the
//! `Scalar` reference (every backend preserves the floating-point
//! reduction order, so agreement is exact, well inside the documented
//! 1e-5 budget).
// Backend agreement is a *bit-identical* contract (see ROADMAP): strict
// float comparison is the assertion these suites exist to make.
#![allow(clippy::float_cmp)]

use proptest::prelude::*;
use vitcod_tensor::kernels::{
    self, matmul_nt_with, matmul_tn_with, matmul_with, transpose_with, Backend,
};
use vitcod_tensor::{gelu, Matrix};

/// The backends under test, each compared against the `Scalar` oracle.
const FAST_BACKENDS: [Backend; 2] = [Backend::Blocked, Backend::Simd];

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Shapes that stress the blocking schemes: around the 64-element k-panel
/// boundary, far from any tile multiple, straddling the 8-wide SIMD lane
/// count (n = 7, 8, 9) and its 16-wide register tile (n = 15, 16, 17),
/// and degenerate.
const GEMM_SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (1, 64, 1),
    (1, 65, 9),
    (7, 13, 5),
    (31, 64, 33),
    (33, 63, 65),
    (64, 128, 32),
    (5, 200, 3),
    (3, 5, 7),
    (4, 6, 8),
    (9, 11, 15),
    (8, 16, 16),
    (2, 30, 17),
    (10, 9, 23),
];

/// Runs `f` with the process backend set to `b`, restoring the previous
/// backend afterwards (row-wise kernels read the process default).
fn with_backend<T>(b: Backend, f: impl FnOnce() -> T) -> T {
    let prior = kernels::backend();
    kernels::set_backend(b);
    let out = f();
    kernels::set_backend(prior);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_backends_agree(shape_idx in 0usize..14, seed in 0u64..1000) {
        let (m, k, n) = GEMM_SHAPES[shape_idx];
        let a = matrix(m, k).new_value(&mut TestRng::new(seed));
        let b = matrix(k, n).new_value(&mut TestRng::new(seed.wrapping_add(1)));
        let scalar = matmul_with(Backend::Scalar, &a, &b);
        for backend in FAST_BACKENDS {
            let fast = matmul_with(backend, &a, &b);
            prop_assert!(fast == scalar, "{backend:?} shape ({m},{k},{n}) seed {seed}");
            prop_assert!(fast.max_abs_diff(&scalar) <= 1e-5);
        }
    }

    #[test]
    fn matmul_nt_backends_agree(shape_idx in 0usize..14, seed in 0u64..1000) {
        let (m, k, n) = GEMM_SHAPES[shape_idx];
        let a = matrix(m, k).new_value(&mut TestRng::new(seed));
        let b = matrix(n, k).new_value(&mut TestRng::new(seed.wrapping_add(2)));
        let scalar = matmul_nt_with(Backend::Scalar, &a, &b);
        for backend in FAST_BACKENDS {
            let fast = matmul_nt_with(backend, &a, &b);
            prop_assert!(fast == scalar, "{backend:?} shape ({m},{k},{n}) seed {seed}");
        }
    }

    #[test]
    fn matmul_tn_backends_agree(shape_idx in 0usize..14, seed in 0u64..1000) {
        let (m, k, n) = GEMM_SHAPES[shape_idx];
        let a = matrix(k, m).new_value(&mut TestRng::new(seed));
        let b = matrix(k, n).new_value(&mut TestRng::new(seed.wrapping_add(3)));
        let scalar = matmul_tn_with(Backend::Scalar, &a, &b);
        for backend in FAST_BACKENDS {
            let fast = matmul_tn_with(backend, &a, &b);
            prop_assert!(fast == scalar, "{backend:?} shape ({m},{k},{n}) seed {seed}");
        }
    }

    #[test]
    fn transpose_backends_agree(rows in 1usize..80, cols in 1usize..80, seed in 0u64..100) {
        let a = matrix(rows, cols).new_value(&mut TestRng::new(seed));
        let scalar = transpose_with(Backend::Scalar, &a);
        for backend in FAST_BACKENDS {
            prop_assert_eq!(transpose_with(backend, &a), scalar.clone());
        }
    }

    #[test]
    fn softmax_backends_agree(rows in 1usize..60, cols in 1usize..40, seed in 0u64..100) {
        let a = matrix(rows, cols).new_value(&mut TestRng::new(seed));
        let scalar = with_backend(Backend::Scalar, || kernels::softmax_rows(&a));
        for backend in FAST_BACKENDS {
            let fast = with_backend(backend, || kernels::softmax_rows(&a));
            prop_assert!(fast == scalar, "{backend:?}");
            prop_assert!(fast.max_abs_diff(&scalar) <= 1e-5);
        }
    }

    #[test]
    fn layernorm_backends_agree(rows in 1usize..40, cols in 2usize..32, seed in 0u64..100) {
        let a = matrix(rows, cols).new_value(&mut TestRng::new(seed));
        let gamma = vec![1.3f32; cols];
        let beta = vec![-0.2f32; cols];
        let scalar =
            with_backend(Backend::Scalar, || kernels::layernorm_rows(&a, &gamma, &beta, 1e-5));
        for backend in FAST_BACKENDS {
            let fast =
                with_backend(backend, || kernels::layernorm_rows(&a, &gamma, &beta, 1e-5));
            prop_assert!(fast == scalar, "{backend:?}");
        }
    }

    #[test]
    fn elementwise_backends_agree(rows in 1usize..30, cols in 1usize..33, seed in 0u64..100) {
        let a = matrix(rows, cols).new_value(&mut TestRng::new(seed));
        let b = matrix(rows, cols).new_value(&mut TestRng::new(seed.wrapping_add(5)));
        let scalar_map = with_backend(Backend::Scalar, || kernels::map(&a, gelu));
        let scalar_zip = with_backend(Backend::Scalar, || kernels::zip_map(&a, &b, |x, y| x + y));
        for backend in FAST_BACKENDS {
            let fast_map = with_backend(backend, || kernels::map(&a, gelu));
            let fast_zip = with_backend(backend, || kernels::zip_map(&a, &b, |x, y| x + y));
            prop_assert!(fast_map == scalar_map, "{backend:?} map");
            prop_assert!(fast_zip == scalar_zip, "{backend:?} zip_map");
        }
    }

    #[test]
    fn empty_and_single_row_matmuls(cols in 1usize..20, seed in 0u64..50) {
        // 0×k · k×n and 1×k · k×n edge cases, per fast backend.
        let k = cols;
        let b = matrix(k, 4).new_value(&mut TestRng::new(seed));
        let empty = Matrix::zeros(0, k);
        let single = matrix(1, k).new_value(&mut TestRng::new(seed.wrapping_add(4)));
        let scalar = matmul_with(Backend::Scalar, &single, &b);
        for backend in FAST_BACKENDS {
            prop_assert_eq!(matmul_with(backend, &empty, &b).shape(), (0, 4));
            prop_assert_eq!(matmul_with(backend, &single, &b), scalar.clone());
        }
    }
}
