//! Property-based tests of the tensor kernels.
// Backend agreement is a *bit-identical* contract (see ROADMAP): strict
// float comparison is the assertion these suites exist to make.
#![allow(clippy::float_cmp)]

use proptest::prelude::*;
use vitcod_tensor::{softmax_row, Matrix, QuantizedMatrix};

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0f32..5.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matmul_is_associative_with_identity(a in matrix(4, 6)) {
        let i_left = Matrix::identity(4).matmul(&a);
        let i_right = a.matmul(&Matrix::identity(6));
        prop_assert!(i_left.max_abs_diff(&a) < 1e-5);
        prop_assert!(i_right.max_abs_diff(&a) < 1e-5);
    }

    #[test]
    fn matmul_distributes_over_addition(a in matrix(3, 4), b in matrix(4, 5), c in matrix(4, 5)) {
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3, "diff {}", lhs.max_abs_diff(&rhs));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose(a in matrix(5, 7), b in matrix(6, 7)) {
        let fused = a.matmul_nt(&b);
        let explicit = a.matmul(&b.transpose());
        prop_assert!(fused.max_abs_diff(&explicit) < 1e-4);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose(a in matrix(7, 5), b in matrix(7, 6)) {
        let fused = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        prop_assert!(fused.max_abs_diff(&explicit) < 1e-4);
    }

    #[test]
    fn transpose_is_involutive(a in matrix(6, 9)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn softmax_rows_are_distributions(a in matrix(8, 8)) {
        let s = a.softmax_rows();
        for r in 0..8 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_preserves_row_argmax(a in matrix(4, 10)) {
        let s = a.softmax_rows();
        for r in 0..4 {
            let before = vitcod_tensor::argmax(a.row(r));
            let after = vitcod_tensor::argmax(s.row(r));
            prop_assert_eq!(before, after);
        }
    }

    #[test]
    fn softmax_row_monotone(mut v in proptest::collection::vec(-4.0f32..4.0, 8)) {
        let orig = v.clone();
        softmax_row(&mut v);
        for i in 0..8 {
            for j in 0..8 {
                if orig[i] > orig[j] {
                    prop_assert!(v[i] >= v[j] - 1e-6);
                }
            }
        }
    }

    #[test]
    fn permute_rows_round_trips(a in matrix(6, 3), seed in 0u64..1000) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut perm: Vec<usize> = (0..6).collect();
        perm.shuffle(&mut rand_chacha::ChaCha8Rng::seed_from_u64(seed));
        let permuted = a.permute_rows(&perm);
        // Inverse permutation restores the original.
        let mut inv = vec![0usize; 6];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        prop_assert_eq!(permuted.permute_rows(&inv), a);
    }

    #[test]
    fn hcat_then_slice_recovers_parts(a in matrix(4, 3), b in matrix(4, 5)) {
        let cat = Matrix::hcat(&[&a, &b]);
        prop_assert_eq!(cat.submatrix(0, 4, 0, 3), a);
        prop_assert_eq!(cat.submatrix(0, 4, 3, 8), b);
    }

    #[test]
    fn frobenius_norm_triangle_inequality(a in matrix(5, 5), b in matrix(5, 5)) {
        let sum = (&a + &b).frobenius_norm();
        prop_assert!(sum <= a.frobenius_norm() + b.frobenius_norm() + 1e-4);
    }

    #[test]
    fn quantization_error_bounded(a in matrix(6, 6)) {
        let q = QuantizedMatrix::quantize(&a);
        let err = a.max_abs_diff(&q.dequantize());
        prop_assert!(err <= q.params().scale * 0.5 + 1e-6, "err {err}");
    }

    #[test]
    fn quantized_matmul_tracks_fp32(a in matrix(4, 16), b in matrix(4, 16)) {
        let exact = a.matmul_nt(&b);
        let approx = QuantizedMatrix::quantize(&a)
            .matmul_nt_dequant(&QuantizedMatrix::quantize(&b));
        let denom = exact.frobenius_norm().max(1.0);
        prop_assert!(exact.max_abs_diff(&approx) / denom < 0.1);
    }

    #[test]
    fn layernorm_output_is_scale_invariant(a in matrix(3, 8), k in 1.0f32..10.0) {
        let gamma = vec![1.0f32; 8];
        let beta = vec![0.0f32; 8];
        let n1 = a.layernorm_rows(&gamma, &beta, 1e-5);
        let n2 = a.scale(k).layernorm_rows(&gamma, &beta, 1e-5);
        // LayerNorm(kx) == LayerNorm(x) for k > 0 (up to eps effects).
        prop_assert!(n1.max_abs_diff(&n2) < 2e-2, "diff {}", n1.max_abs_diff(&n2));
    }
}
