//! Backend-agreement coverage for the explicit-backend (`*_with`)
//! sparse entry points and the scoped backend override.
//!
//! These are the public dispatch surfaces `vitcod-lint`'s V003 rule
//! tracks: every `pub fn` taking a [`Backend`] must be pinned to the
//! Scalar oracle here, so "fp32 bit-identical across backends" stays a
//! checked contract as kernels are added.
// Backend agreement is a *bit-identical* contract (see ROADMAP): strict
// float comparison is the assertion these suites exist to make.
#![allow(clippy::float_cmp)]

use std::sync::Arc;

use proptest::prelude::*;
use vitcod_tensor::kernels::{self, matmul_with, with_backend_override, Backend};
use vitcod_tensor::sparse::{
    sddmm_k_stationary_int8_rows_with, sddmm_k_stationary_int8_with,
    sddmm_k_stationary_shared_with, sddmm_k_stationary_with, spmm_output_stationary_with,
    CscMatrix,
};
use vitcod_tensor::{Initializer, Matrix, QuantizedMatrix, QuantizedRows};

const FAST_BACKENDS: [Backend; 2] = [Backend::Blocked, Backend::Simd];

/// Token / feature shapes that stress the row-chunk and column-segment
/// partitions: tiny, prime-sized, and DeiT-head-sized.
const SHAPES: &[(usize, usize)] = &[(3, 2), (7, 5), (16, 8), (29, 8), (48, 16)];

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    Initializer::Normal { std: 1.0 }.sample(rows, cols, seed)
}

/// A pseudo-random mask at roughly `density`, with a guaranteed
/// diagonal so no query row is empty (the invariant every pruner
/// maintains).
fn random_index(n: usize, density: f64, seed: u64) -> CscMatrix {
    CscMatrix::from_indicator(n, |q, k| {
        if q == k {
            return true;
        }
        let mut x = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((q * n + k) as u64);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58476D1CE4E5B9);
        x ^= x >> 27;
        (x % 1000) as f64 / 1000.0 < density
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sddmm_with_backends_agree_bitwise(
        shape_idx in 0usize..5,
        density in 0.1f64..0.9,
        seed in 0u64..500,
    ) {
        let (n, d) = SHAPES[shape_idx];
        let q = random(n, d, seed);
        let k = random(n, d, seed.wrapping_add(1));
        let index = random_index(n, density, seed.wrapping_add(2));
        let scale = 1.0 / (d as f32).sqrt();
        let oracle = sddmm_k_stationary_with(Backend::Scalar, &q, &k, &index, scale);
        for backend in FAST_BACKENDS {
            let fast = sddmm_k_stationary_with(backend, &q, &k, &index, scale);
            prop_assert_eq!(fast.values(), oracle.values(), "{:?}", backend);
        }
    }

    #[test]
    fn sddmm_shared_with_matches_owned_index_path(
        shape_idx in 0usize..5,
        density in 0.1f64..0.9,
        seed in 0u64..500,
    ) {
        let (n, d) = SHAPES[shape_idx];
        let q = random(n, d, seed);
        let k = random(n, d, seed.wrapping_add(1));
        let index = random_index(n, density, seed.wrapping_add(2));
        let shared = Arc::new(index.clone());
        let scale = 1.0 / (d as f32).sqrt();
        let owned = sddmm_k_stationary_with(Backend::Scalar, &q, &k, &index, scale);
        for backend in [Backend::Scalar, Backend::Blocked, Backend::Simd] {
            let fast = sddmm_k_stationary_shared_with(backend, &q, &k, &shared, scale);
            prop_assert_eq!(fast.values(), owned.values(), "{:?}", backend);
            prop_assert_eq!(fast.index().size(), n);
        }
    }

    #[test]
    fn softmax_rows_with_backends_agree_bitwise(
        shape_idx in 0usize..5,
        density in 0.1f64..0.9,
        seed in 0u64..500,
    ) {
        let (n, d) = SHAPES[shape_idx];
        let q = random(n, d, seed);
        let k = random(n, d, seed.wrapping_add(3));
        let index = random_index(n, density, seed.wrapping_add(4));
        let scores = sddmm_k_stationary_with(Backend::Scalar, &q, &k, &index, 0.3);
        let oracle = scores.softmax_rows_with(Backend::Scalar);
        for backend in FAST_BACKENDS {
            let fast = scores.softmax_rows_with(backend);
            prop_assert_eq!(fast.values(), oracle.values(), "{:?}", backend);
        }
    }

    #[test]
    fn spmm_with_backends_agree_bitwise(
        shape_idx in 0usize..5,
        density in 0.1f64..0.9,
        seed in 0u64..500,
    ) {
        let (n, d) = SHAPES[shape_idx];
        let q = random(n, d, seed);
        let k = random(n, d, seed.wrapping_add(5));
        let v = random(n, d, seed.wrapping_add(6));
        let index = random_index(n, density, seed.wrapping_add(7));
        let probs = sddmm_k_stationary_with(Backend::Scalar, &q, &k, &index, 0.5)
            .softmax_rows_with(Backend::Scalar);
        let oracle = spmm_output_stationary_with(Backend::Scalar, &probs, &v);
        for backend in FAST_BACKENDS {
            let fast = spmm_output_stationary_with(backend, &probs, &v);
            prop_assert!(fast == oracle, "{backend:?}");
        }
    }

    #[test]
    fn sddmm_int8_with_backends_agree_bitwise(
        shape_idx in 0usize..5,
        density in 0.1f64..0.9,
        seed in 0u64..500,
    ) {
        let (n, d) = SHAPES[shape_idx];
        let q = QuantizedMatrix::quantize(&random(n, d, seed));
        let k = QuantizedMatrix::quantize(&random(n, d, seed.wrapping_add(8)));
        let index = random_index(n, density, seed.wrapping_add(9));
        let scale = 1.0 / (d as f32).sqrt();
        let oracle = sddmm_k_stationary_int8_with(Backend::Scalar, &q, &k, &index, scale);
        for backend in FAST_BACKENDS {
            let fast = sddmm_k_stationary_int8_with(backend, &q, &k, &index, scale);
            prop_assert_eq!(fast.values(), oracle.values(), "{:?}", backend);
        }
    }

    #[test]
    fn sddmm_int8_rows_with_backends_agree_on_full_and_partial_windows(
        shape_idx in 0usize..5,
        density in 0.1f64..0.9,
        seed in 0u64..500,
    ) {
        let (n, d) = SHAPES[shape_idx];
        let q = QuantizedRows::quantize(&random(n, d, seed));
        let k = QuantizedRows::quantize(&random(n, d, seed.wrapping_add(10)));
        let index = random_index(n, density, seed.wrapping_add(11));
        let scale = 1.0 / (d as f32).sqrt();
        for window in [0..d, 0..d / 2, d / 2..d] {
            let oracle = sddmm_k_stationary_int8_rows_with(
                Backend::Scalar, &q, &k, window.clone(), &index, scale,
            );
            for backend in FAST_BACKENDS {
                let fast = sddmm_k_stationary_int8_rows_with(
                    backend, &q, &k, window.clone(), &index, scale,
                );
                prop_assert_eq!(fast.values(), oracle.values(), "{:?} {:?}", backend, window);
            }
        }
    }

    #[test]
    fn with_backend_override_scopes_and_restores(seed in 0u64..200) {
        let a = random(5, 7, seed);
        let b = random(7, 3, seed.wrapping_add(1));
        let prior = kernels::backend();
        for backend in [Backend::Scalar, Backend::Blocked, Backend::Simd] {
            // Inside the closure, the ambient-backend kernels must
            // behave exactly like the explicit `_with` dispatch.
            let (seen, out) = with_backend_override(backend, || {
                (kernels::backend(), kernels::matmul(&a, &b))
            });
            prop_assert_eq!(seen, backend);
            prop_assert!(out == matmul_with(backend, &a, &b));
            // The override must not leak out of its scope.
            prop_assert_eq!(kernels::backend(), prior);
        }
        // Nested overrides restore the outer override, not the default.
        let nested = with_backend_override(Backend::Simd, || {
            with_backend_override(Backend::Scalar, kernels::backend);
            kernels::backend()
        });
        prop_assert_eq!(nested, Backend::Simd);
    }
}
