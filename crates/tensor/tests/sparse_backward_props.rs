//! Property tests of the sparse backward kernels: across random masks,
//! shapes and densities, the CSC-dataflow gradients must match the dense
//! `-inf`-masked reference within 1e-4, and the two backends must agree
//! bitwise on every granular kernel.
// Backend agreement is a *bit-identical* contract (see ROADMAP): strict
// float comparison is the assertion these suites exist to make.
#![allow(clippy::float_cmp)]

use proptest::prelude::*;
use vitcod_tensor::kernels::{self, Backend};
use vitcod_tensor::sparse::{
    attention_head_backward, attention_head_backward_with, sddmm_backward_with, sddmm_k_stationary,
    sparse_softmax_backward_with, spmm_backward_with, CscMatrix,
};
use vitcod_tensor::{Initializer, Matrix};

/// Token / feature shapes that stress the row-chunk and column-segment
/// partitions: tiny, prime-sized, and DeiT-head-sized.
const SHAPES: &[(usize, usize)] = &[(3, 2), (7, 5), (16, 8), (29, 8), (48, 16)];

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    Initializer::Normal { std: 1.0 }.sample(rows, cols, seed)
}

/// A pseudo-random mask at roughly `density` (plus a guaranteed diagonal
/// so no query row is empty — the invariant every pruner maintains).
fn random_index(n: usize, density: f64, seed: u64) -> CscMatrix {
    CscMatrix::from_indicator(n, |q, k| {
        if q == k {
            return true;
        }
        // Cheap splitmix-style hash for a deterministic pattern.
        let mut x = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((q * n + k) as u64);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58476D1CE4E5B9);
        x ^= x >> 27;
        (x % 1000) as f64 / 1000.0 < density
    })
}

/// The dense `-inf`-masked reference gradients for the same head.
fn dense_reference(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    index: &CscMatrix,
    scale: f32,
    gout: &Matrix,
) -> (Matrix, Matrix, Matrix) {
    let n = index.size();
    let mut bias = Matrix::filled(n, n, f32::NEG_INFINITY);
    for (qq, kk) in index.iter_kept() {
        bias.set(qq, kk, 0.0);
    }
    let (_, probs) = kernels::attention_head(q, k, v, scale, Some(&bias));
    kernels::attention_head_backward(q, k, v, scale, &probs, gout)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sparse_backward_matches_dense_masked_reference(
        shape_idx in 0usize..5,
        density_millis in 50u64..900,
        seed in 0u64..1000,
    ) {
        let (n, dk) = SHAPES[shape_idx];
        let density = density_millis as f64 / 1000.0;
        let index = random_index(n, density, seed);
        let q = random(n, dk, seed.wrapping_add(1));
        let k = random(n, dk, seed.wrapping_add(2));
        let v = random(n, dk, seed.wrapping_add(3));
        let gout = random(n, dk, seed.wrapping_add(4));
        let scale = 1.0 / (dk as f32).sqrt();

        let probs = sddmm_k_stationary(&q, &k, &index, scale).softmax_rows();
        let (gq, gk, gv) = attention_head_backward(&q, &k, &v, scale, &probs, &gout);
        let (rq, rk, rv) = dense_reference(&q, &k, &v, &index, scale, &gout);
        prop_assert!(gq.max_abs_diff(&rq) < 1e-4, "gq off by {}", gq.max_abs_diff(&rq));
        prop_assert!(gk.max_abs_diff(&rk) < 1e-4, "gk off by {}", gk.max_abs_diff(&rk));
        prop_assert!(gv.max_abs_diff(&rv) < 1e-4, "gv off by {}", gv.max_abs_diff(&rv));
    }

    #[test]
    fn sparse_backward_backends_agree_bitwise(
        shape_idx in 0usize..5,
        density_millis in 50u64..900,
        seed in 0u64..1000,
    ) {
        let (n, dk) = SHAPES[shape_idx];
        let density = density_millis as f64 / 1000.0;
        let index = random_index(n, density, seed);
        let q = random(n, dk, seed.wrapping_add(5));
        let k = random(n, dk, seed.wrapping_add(6));
        let v = random(n, dk, seed.wrapping_add(7));
        let gout = random(n, dk, seed.wrapping_add(8));
        let scale = 0.3;

        let probs = sddmm_k_stationary(&q, &k, &index, scale).softmax_rows();
        let (dp_s, gv_s) = spmm_backward_with(Backend::Scalar, &probs, &v, &gout);
        let (dp_b, gv_b) = spmm_backward_with(Backend::Blocked, &probs, &v, &gout);
        prop_assert!(dp_s == dp_b && gv_s == gv_b, "spmm backward backends disagree");
        let ds_s = sparse_softmax_backward_with(Backend::Scalar, &probs, &dp_s);
        let ds_b = sparse_softmax_backward_with(Backend::Blocked, &probs, &dp_b);
        prop_assert!(ds_s == ds_b, "softmax backward backends disagree");
        let (gq_s, gk_s) = sddmm_backward_with(Backend::Scalar, &q, &k, &ds_s, scale);
        let (gq_b, gk_b) = sddmm_backward_with(Backend::Blocked, &q, &k, &ds_b, scale);
        prop_assert!(gq_s == gq_b && gk_s == gk_b, "sddmm backward backends disagree");
        // The composed pass agrees under a forced multi-worker budget too.
        let seq = attention_head_backward_with(Backend::Blocked, &q, &k, &v, scale, &probs, &gout);
        let par = kernels::with_thread_budget(4, || {
            attention_head_backward_with(Backend::Blocked, &q, &k, &v, scale, &probs, &gout)
        });
        prop_assert!(seq == par, "worker count changed backward values");
    }
}
