//! Int8 path coverage: quantize→dequantize error bounds on
//! [`QuantizedMatrix`], the 8-bit K-stationary SDDMM agreeing with the
//! fp32 SDDMM within quantization tolerance across random shapes and
//! seeds, and the packed projection GEMM ([`int8_gemm`]) tracking fp32
//! within its analytic per-row error bound at real DeiT projection
//! shapes — plus an exact-integer proof that the i32 accumulator cannot
//! overflow at the documented worst-case reduction depth.
// Backend agreement is a *bit-identical* contract (see ROADMAP): strict
// float comparison is the assertion these suites exist to make.
#![allow(clippy::float_cmp)]

use proptest::prelude::*;
use vitcod_tensor::kernels::Backend;
use vitcod_tensor::sparse::{sddmm_k_stationary, sddmm_k_stationary_int8, CscMatrix};
use vitcod_tensor::{
    int8_gemm, int8_gemm_with, Initializer, Matrix, PackedGemmWeights, QuantParams,
    QuantizedMatrix, QuantizedRows, MAX_INT8_GEMM_K,
};

fn random(rows: usize, cols: usize, std: f32, seed: u64) -> Matrix {
    Initializer::Normal { std }.sample(rows, cols, seed)
}

/// Banded + global-column pattern at size `n` (the polarized-map shape).
fn banded_index(n: usize, band: usize) -> CscMatrix {
    CscMatrix::from_indicator(n, |q, k| k == 0 || (q.abs_diff(k) <= band))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Symmetric per-tensor quantization bounds every element's
    /// round-trip error by half a quantization step.
    #[test]
    fn quantize_dequantize_error_bounded_by_half_step(
        rows in 1usize..24,
        cols in 1usize..24,
        std in 0.05f32..4.0,
        seed in 0u64..1000,
    ) {
        let m = random(rows, cols, std, seed);
        let q = QuantizedMatrix::quantize(&m);
        let err = m.max_abs_diff(&q.dequantize());
        prop_assert!(
            err <= q.params().scale * 0.5 + 1e-7,
            "round-trip error {err} exceeds half step {}",
            q.params().scale * 0.5
        );
    }

    /// An explicit (coarser) scale still bounds the error by half its
    /// own step, as long as nothing saturates.
    #[test]
    fn explicit_scale_error_bound_without_saturation(
        seed in 0u64..1000,
        scale_mult in 1.0f32..4.0,
    ) {
        let m = random(8, 8, 1.0, seed);
        let fitted = QuantParams::fit(&m);
        let coarse = QuantParams { scale: fitted.scale * scale_mult };
        let q = QuantizedMatrix::quantize_with(&m, coarse);
        let err = m.max_abs_diff(&q.dequantize());
        prop_assert!(err <= coarse.scale * 0.5 + 1e-6, "err {err}");
    }

    /// The int8 SDDMM tracks the fp32 SDDMM within the analytic
    /// quantization tolerance across random shapes, sparsity bands and
    /// seeds: each score is a dk-term dot product whose per-term error
    /// is bounded by the operand round-trip errors.
    #[test]
    fn int8_sddmm_matches_fp32_within_quant_tolerance(
        n in 4usize..48,
        dk in 4usize..48,
        band in 1usize..4,
        seed in 0u64..1000,
        scale in 0.05f32..1.0,
    ) {
        let q = random(n, dk, 1.0, seed);
        let k = random(n, dk, 1.0, seed + 7919);
        let index = banded_index(n, band);
        let fp = sddmm_k_stationary(&q, &k, &index, scale);
        let qi = QuantizedMatrix::quantize(&q);
        let ki = QuantizedMatrix::quantize(&k);
        let i8s = sddmm_k_stationary_int8(&qi, &ki, &index, scale);

        // Per-term bound: |q·k − q̂·k̂| ≤ |q|·εk + |k|·εq + εq·εk with
        // ε = scale/2, summed over dk terms.
        let eq = qi.params().scale * 0.5;
        let ek = ki.params().scale * 0.5;
        let qmax = q.as_slice().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let kmax = k.as_slice().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let bound = dk as f32 * (qmax * ek + kmax * eq + eq * ek) * scale + 1e-5;

        let diff = fp.to_dense().max_abs_diff(&i8s.to_dense());
        prop_assert!(
            diff <= bound,
            "int8 SDDMM error {diff} exceeds analytic bound {bound} (n={n}, dk={dk})"
        );
        prop_assert_eq!(fp.nnz(), i8s.nnz());
    }
}

#[test]
fn int8_sddmm_relative_error_small_at_attention_scale() {
    // A DeiT-head-shaped check with a tight empirical tolerance.
    for seed in [1u64, 42, 777] {
        let q = random(64, 32, 1.0, seed);
        let k = random(64, 32, 1.0, seed + 1);
        let index = banded_index(64, 2);
        let fp = sddmm_k_stationary(&q, &k, &index, 0.18);
        let i8s = sddmm_k_stationary_int8(
            &QuantizedMatrix::quantize(&q),
            &QuantizedMatrix::quantize(&k),
            &index,
            0.18,
        );
        let rel =
            fp.to_dense().max_abs_diff(&i8s.to_dense()) / fp.to_dense().frobenius_norm().max(1e-6);
        assert!(rel < 0.05, "seed {seed}: relative error {rel}");
    }
}

/// The fused-QKV projection shapes (`dim × 3·dim`) of the three DeiT
/// models the paper evaluates. Token count is subsampled to keep the
/// debug-mode f64 reference fast; `k` and `n` — the dims that stress
/// packing, accumulation depth and the epilogue — are the real ones.
const DEIT_PROJ_SHAPES: &[(&str, usize, usize)] = &[
    ("deit_tiny", 192, 576),
    ("deit_small", 384, 1152),
    ("deit_base", 768, 2304),
];

/// [`int8_gemm`] tracks an f64 reference within the analytic per-row
/// bound at every DeiT projection shape: each of the `k` product terms
/// errs by at most `|a|·εw + |w|·εa + εa·εw` (ε = half a quantization
/// step, εa per activation row), plus a small slack for the f32
/// epilogue's own rounding.
#[test]
fn int8_gemm_within_analytic_bound_at_deit_shapes() {
    for &(name, k, n) in DEIT_PROJ_SHAPES {
        let m = 8;
        let a = random(m, k, 1.0, 0xD0 + k as u64);
        let w = random(k, n, 0.05, 0xA0 + n as u64);
        let bias: Vec<f32> = (0..n).map(|j| (j as f32).sin() * 0.1).collect();

        let a8 = QuantizedRows::quantize(&a);
        let w8 = PackedGemmWeights::pack(&w);
        let out = int8_gemm(&a8, &w8, &bias);

        let ew = w8.scale() as f64 * 0.5;
        let wmax = w.as_slice().iter().fold(0.0f32, |x, &v| x.max(v.abs())) as f64;
        for i in 0..m {
            let ea = a8.row_scale(i) as f64 * 0.5;
            let amax = a.row(i).iter().fold(0.0f32, |x, &v| x.max(v.abs())) as f64;
            let bound = k as f64 * (amax * ew + wmax * ea + ea * ew);
            for (j, &bj) in bias.iter().enumerate() {
                let exact: f64 = (0..k)
                    .map(|kk| a.get(i, kk) as f64 * w.get(kk, j) as f64)
                    .sum::<f64>()
                    + bj as f64;
                let err = (out.get(i, j) as f64 - exact).abs();
                assert!(
                    err <= bound + 1e-3 * exact.abs() + 1e-4,
                    "{name}: |out - exact| = {err} exceeds bound {bound} at ({i},{j})"
                );
            }
        }
    }
}

/// At the documented worst-case reduction depth [`MAX_INT8_GEMM_K`] with
/// all operands saturated to ±127, the i32 accumulator lands exactly on
/// the predicted integer — no wraparound — on every backend, including
/// the lane-tail columns of a non-multiple-of-8 `n`.
#[test]
fn int8_gemm_i32_accumulator_survives_worst_case_k() {
    let k = MAX_INT8_GEMM_K;
    let n = 9; // exercises the packed panel's zero-padded tail lanes
    let acc = k as i64 * 127 * 127;
    assert!(acc <= i32::MAX as i64, "MAX_INT8_GEMM_K itself is unsound");

    // All-ones operands quantize to exactly +127 with scale 1/127.
    let a = Matrix::from_vec(1, k, vec![1.0; k]);
    let w = Matrix::from_vec(k, n, vec![1.0; k * n]);
    let bias = vec![0.5f32; n];
    let a8 = QuantizedRows::quantize(&a);
    let w8 = PackedGemmWeights::pack(&w);

    // Same epilogue expression the kernel applies to its accumulator.
    let expected = acc as i32 as f32 * (a8.row_scale(0) * w8.scale()) + 0.5;
    for backend in [Backend::Scalar, Backend::Blocked, Backend::Simd] {
        let out = int8_gemm_with(backend, &a8, &w8, &bias);
        for (j, &v) in out.row(0).iter().enumerate() {
            assert!(v > 0.0, "{backend:?}: accumulator wrapped");
            assert_eq!(v, expected, "{backend:?} col {j}");
        }
    }
}
