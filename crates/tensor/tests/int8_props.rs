//! Int8 path coverage: quantize→dequantize error bounds on
//! [`QuantizedMatrix`], and the 8-bit K-stationary SDDMM agreeing with
//! the fp32 SDDMM within quantization tolerance across random shapes and
//! seeds.

use proptest::prelude::*;
use vitcod_tensor::sparse::{sddmm_k_stationary, sddmm_k_stationary_int8, CscMatrix};
use vitcod_tensor::{Initializer, Matrix, QuantParams, QuantizedMatrix};

fn random(rows: usize, cols: usize, std: f32, seed: u64) -> Matrix {
    Initializer::Normal { std }.sample(rows, cols, seed)
}

/// Banded + global-column pattern at size `n` (the polarized-map shape).
fn banded_index(n: usize, band: usize) -> CscMatrix {
    CscMatrix::from_indicator(n, |q, k| k == 0 || (q.abs_diff(k) <= band))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Symmetric per-tensor quantization bounds every element's
    /// round-trip error by half a quantization step.
    #[test]
    fn quantize_dequantize_error_bounded_by_half_step(
        rows in 1usize..24,
        cols in 1usize..24,
        std in 0.05f32..4.0,
        seed in 0u64..1000,
    ) {
        let m = random(rows, cols, std, seed);
        let q = QuantizedMatrix::quantize(&m);
        let err = m.max_abs_diff(&q.dequantize());
        prop_assert!(
            err <= q.params().scale * 0.5 + 1e-7,
            "round-trip error {err} exceeds half step {}",
            q.params().scale * 0.5
        );
    }

    /// An explicit (coarser) scale still bounds the error by half its
    /// own step, as long as nothing saturates.
    #[test]
    fn explicit_scale_error_bound_without_saturation(
        seed in 0u64..1000,
        scale_mult in 1.0f32..4.0,
    ) {
        let m = random(8, 8, 1.0, seed);
        let fitted = QuantParams::fit(&m);
        let coarse = QuantParams { scale: fitted.scale * scale_mult };
        let q = QuantizedMatrix::quantize_with(&m, coarse);
        let err = m.max_abs_diff(&q.dequantize());
        prop_assert!(err <= coarse.scale * 0.5 + 1e-6, "err {err}");
    }

    /// The int8 SDDMM tracks the fp32 SDDMM within the analytic
    /// quantization tolerance across random shapes, sparsity bands and
    /// seeds: each score is a dk-term dot product whose per-term error
    /// is bounded by the operand round-trip errors.
    #[test]
    fn int8_sddmm_matches_fp32_within_quant_tolerance(
        n in 4usize..48,
        dk in 4usize..48,
        band in 1usize..4,
        seed in 0u64..1000,
        scale in 0.05f32..1.0,
    ) {
        let q = random(n, dk, 1.0, seed);
        let k = random(n, dk, 1.0, seed + 7919);
        let index = banded_index(n, band);
        let fp = sddmm_k_stationary(&q, &k, &index, scale);
        let qi = QuantizedMatrix::quantize(&q);
        let ki = QuantizedMatrix::quantize(&k);
        let i8s = sddmm_k_stationary_int8(&qi, &ki, &index, scale);

        // Per-term bound: |q·k − q̂·k̂| ≤ |q|·εk + |k|·εq + εq·εk with
        // ε = scale/2, summed over dk terms.
        let eq = qi.params().scale * 0.5;
        let ek = ki.params().scale * 0.5;
        let qmax = q.as_slice().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let kmax = k.as_slice().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let bound = dk as f32 * (qmax * ek + kmax * eq + eq * ek) * scale + 1e-5;

        let diff = fp.to_dense().max_abs_diff(&i8s.to_dense());
        prop_assert!(
            diff <= bound,
            "int8 SDDMM error {diff} exceeds analytic bound {bound} (n={n}, dk={dk})"
        );
        prop_assert_eq!(fp.nnz(), i8s.nnz());
    }
}

#[test]
fn int8_sddmm_relative_error_small_at_attention_scale() {
    // A DeiT-head-shaped check with a tight empirical tolerance.
    for seed in [1u64, 42, 777] {
        let q = random(64, 32, 1.0, seed);
        let k = random(64, 32, 1.0, seed + 1);
        let index = banded_index(64, 2);
        let fp = sddmm_k_stationary(&q, &k, &index, 0.18);
        let i8s = sddmm_k_stationary_int8(
            &QuantizedMatrix::quantize(&q),
            &QuantizedMatrix::quantize(&k),
            &index,
            0.18,
        );
        let rel =
            fp.to_dense().max_abs_diff(&i8s.to_dense()) / fp.to_dense().frobenius_norm().max(1e-6);
        assert!(rel < 0.05, "seed {seed}: relative error {rel}");
    }
}
