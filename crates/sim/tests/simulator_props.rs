//! Property-based tests of the simulator: monotonicity, conservation
//! and dataflow-vs-reference equivalence on random workloads.

use proptest::prelude::*;
use vitcod_core::{compile_model, AttentionMask, CscMatrix, SplitConquer, SplitConquerConfig};
use vitcod_model::{AttentionStatsConfig, ModelFamily, StageConfig, ViTConfig};
use vitcod_sim::functional::{attention_head, sddmm_k_stationary, spmm_output_stationary};
use vitcod_sim::{AcceleratorConfig, ViTCoDAccelerator};
use vitcod_tensor::Initializer;

fn tiny_model(tokens: usize, heads: usize, dk: usize) -> ViTConfig {
    let stage = StageConfig {
        tokens,
        dim: heads * dk,
        heads,
        depth: 2,
    };
    ViTConfig {
        name: "prop-model",
        family: ModelFamily::DeiT,
        tokens,
        dim: heads * dk,
        heads,
        depth: 2,
        mlp_ratio: 4,
        stages: vec![stage],
        stem_macs: 0,
        paper_sparsity: 0.9,
    }
}

fn program_for(
    tokens: usize,
    heads: usize,
    dk: usize,
    sparsity: f64,
    seed: u64,
) -> (ViTConfig, vitcod_core::AcceleratorProgram) {
    let cfg = tiny_model(tokens, heads, dk);
    let stats = vitcod_model::AttentionStats::generate(AttentionStatsConfig {
        tokens,
        layers: 2,
        heads,
        diagonal_width: 1.5,
        global_tokens: 2.0,
        global_mass: 0.3,
        background_mass: 0.05,
        seed,
    });
    let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(sparsity));
    let program = compile_model(&cfg, &sc.apply(&stats.maps), None);
    (cfg, program)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn latency_monotone_in_sparsity(seed in 0u64..100) {
        let acc = ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper());
        let (_, p_low) = program_for(48, 2, 16, 0.6, seed);
        let (_, p_high) = program_for(48, 2, 16, 0.9, seed);
        let low = acc.simulate_attention(&p_low);
        let high = acc.simulate_attention(&p_high);
        prop_assert!(high.total_cycles <= low.total_cycles);
        prop_assert!(high.macs <= low.macs);
    }

    #[test]
    fn more_lines_never_slower(seed in 0u64..50, lines_mult in 2usize..5) {
        let (_, p) = program_for(48, 2, 16, 0.85, seed);
        let base = ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper())
            .simulate_attention(&p);
        let scaled = ViTCoDAccelerator::new(
            AcceleratorConfig::vitcod_paper().scaled(lines_mult))
            .simulate_attention(&p);
        prop_assert!(scaled.total_cycles <= base.total_cycles);
    }

    #[test]
    fn energy_and_latency_positive(seed in 0u64..50, s in 0.5f64..0.95) {
        let (_, p) = program_for(32, 2, 8, s, seed);
        let r = ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper())
            .simulate_attention(&p);
        prop_assert!(r.total_cycles > 0);
        prop_assert!(r.energy_j > 0.0);
        prop_assert!(r.utilization > 0.0 && r.utilization <= 1.0);
        prop_assert!(r.breakdown.total() >= r.total_cycles);
    }

    #[test]
    fn functional_dataflow_equals_reference(seed in 0u64..200, keep_prob in 0.1f64..0.9) {
        let n = 16;
        let dk = 8;
        let q = Initializer::Normal { std: 1.0 }.sample(n, dk, seed);
        let k = Initializer::Normal { std: 1.0 }.sample(n, dk, seed + 1);
        let v = Initializer::Normal { std: 1.0 }.sample(n, dk, seed + 2);
        // Random mask from the map itself (deterministic given seed).
        let map = q.matmul_nt(&k).softmax_rows();
        let mask = vitcod_core::prune_to_sparsity(&map, 1.0 - keep_prob);
        let index = CscMatrix::from_mask(&mask);

        let dataflow = attention_head(&q, &k, &v, &index, 0.3);

        // Dense reference.
        let mut scores = q.matmul_nt(&k).scale(0.3);
        for r in 0..n {
            for c in 0..n {
                if !mask.is_kept(r, c) {
                    scores.set(r, c, f32::NEG_INFINITY);
                }
            }
        }
        let reference = scores.softmax_rows().matmul(&v);
        prop_assert!(
            dataflow.max_abs_diff(&reference) < 1e-4,
            "dataflow diverges by {}",
            dataflow.max_abs_diff(&reference)
        );
    }

    #[test]
    fn sddmm_spmm_compose_linearly(seed in 0u64..100, alpha in 0.5f32..2.0) {
        // SpMM is linear in V: spmm(S, aV) == a * spmm(S, V).
        let n = 12;
        let q = Initializer::Normal { std: 1.0 }.sample(n, 8, seed);
        let k = Initializer::Normal { std: 1.0 }.sample(n, 8, seed + 1);
        let v = Initializer::Normal { std: 1.0 }.sample(n, 8, seed + 2);
        let mut mask = AttentionMask::empty(n);
        for i in 0..n {
            mask.keep(i, i);
            mask.keep(i, (i + 3) % n);
        }
        let index = CscMatrix::from_mask(&mask);
        let scores = sddmm_k_stationary(&q, &k, &index, 0.25).softmax_rows();
        let a = spmm_output_stationary(&scores, &v.scale(alpha));
        let b = spmm_output_stationary(&scores, &v).scale(alpha);
        prop_assert!(a.max_abs_diff(&b) < 1e-4);
    }

    #[test]
    fn end_to_end_dominates_attention(seed in 0u64..30) {
        let (cfg, p) = program_for(32, 2, 16, 0.85, seed);
        let acc = ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper());
        let attn = acc.simulate_attention_scaled(&p, &cfg);
        let e2e = acc.simulate_end_to_end(&p, &cfg);
        prop_assert!(e2e.total_cycles > attn.total_cycles);
        prop_assert!(e2e.macs > attn.macs);
        prop_assert!(e2e.traffic.dram_total() >= attn.traffic.dram_total());
    }
}
