//! Hardware configuration mirroring the paper's Sec. VI-A platform setup.

/// SRAM buffer partition (paper: 320 KB total — Act GB0/GB1 of 256 KB
/// holding a 128 KB Q/K/S/V-or-input buffer, a 20 KB index buffer and a
/// 108 KB output buffer, plus a 64 KB weight global buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramConfig {
    /// Q/K/S/V or input activation buffer, bytes.
    pub act_buffer_bytes: usize,
    /// CSC index buffer, bytes.
    pub index_buffer_bytes: usize,
    /// Output buffer, bytes.
    pub output_buffer_bytes: usize,
    /// Weight global buffer, bytes.
    pub weight_buffer_bytes: usize,
}

impl SramConfig {
    /// The paper's 320 KB partition.
    pub fn vitcod_paper() -> Self {
        Self {
            act_buffer_bytes: 128 * 1024,
            index_buffer_bytes: 20 * 1024,
            output_buffer_bytes: 108 * 1024,
            weight_buffer_bytes: 64 * 1024,
        }
    }

    /// Total on-chip SRAM in bytes.
    pub fn total_bytes(&self) -> usize {
        self.act_buffer_bytes
            + self.index_buffer_bytes
            + self.output_buffer_bytes
            + self.weight_buffer_bytes
    }
}

/// Energy cost constants standing in for the paper's post-layout 28 nm
/// numbers. Values follow the widely used Horowitz ISSCC'14 scaling
/// table (8-bit ops, 28-45 nm class): an 8-bit MAC ≈ 0.3 pJ, SRAM access
/// ≈ 1 pJ/byte at these capacities, DRAM ≈ 40 pJ/byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per MAC operation, picojoules.
    pub mac_pj: f64,
    /// Energy per SRAM byte accessed, picojoules.
    pub sram_pj_per_byte: f64,
    /// Energy per DRAM byte transferred, picojoules.
    pub dram_pj_per_byte: f64,
    /// Static power, watts (paper: 323.9 mW total at 500 MHz; we book a
    /// third of it as static/clock overhead).
    pub static_watts: f64,
}

impl EnergyModel {
    /// Defaults documented above.
    pub fn cmos_28nm() -> Self {
        Self {
            mac_pj: 0.3,
            sram_pj_per_byte: 1.0,
            dram_pj_per_byte: 40.0,
            static_watts: 0.2,
        }
    }
}

/// How MAC lines are divided between the denser and sparser engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeAllocation {
    /// The paper's design: per-layer allocation proportional to each
    /// engine's workload size (Sec. V-B, "we allocate hardware resource
    /// to each engine proportional to its assigned workload size").
    #[default]
    DynamicProportional,
    /// Ablation: a fixed 50/50 split regardless of workload.
    StaticEven,
}

/// Full accelerator configuration.
///
/// # Example
///
/// ```
/// let cfg = vitcod_sim::AcceleratorConfig::vitcod_paper();
/// assert_eq!(cfg.total_macs(), 512);
/// assert_eq!(cfg.sram.total_bytes(), 320 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Number of MAC lines (paper: 64).
    pub mac_lines: usize,
    /// MACs per line (paper: 8).
    pub macs_per_line: usize,
    /// Core clock, Hz (paper: 500 MHz).
    pub freq_hz: f64,
    /// DRAM bandwidth, bytes/s (paper: DDR4-2400, 76.8 GB/s).
    pub dram_bw_bytes_per_sec: f64,
    /// Bytes per activation element (8-bit quantized inference).
    pub bytes_per_elem: usize,
    /// SRAM partition.
    pub sram: SramConfig,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Denser/sparser engine line-partition policy.
    pub pe_allocation: PeAllocation,
    /// Images per weight fetch in end-to-end simulation: each layer's
    /// weights stream from DRAM once per batch of this size and are
    /// reused across it; all end-to-end numbers are per image.
    pub weight_reuse_batch: u64,
}

impl AcceleratorConfig {
    /// The paper's platform: 512 MACs @ 500 MHz, 320 KB SRAM,
    /// 76.8 GB/s DRAM, 8-bit activations.
    pub fn vitcod_paper() -> Self {
        Self {
            mac_lines: 64,
            macs_per_line: 8,
            freq_hz: 500e6,
            dram_bw_bytes_per_sec: 76.8e9,
            bytes_per_elem: 1,
            sram: SramConfig::vitcod_paper(),
            energy: EnergyModel::cmos_28nm(),
            pe_allocation: PeAllocation::DynamicProportional,
            weight_reuse_batch: 8,
        }
    }

    /// Total MAC units.
    pub fn total_macs(&self) -> usize {
        self.mac_lines * self.macs_per_line
    }

    /// Peak compute throughput in MACs per second.
    pub fn peak_macs_per_sec(&self) -> f64 {
        self.total_macs() as f64 * self.freq_hz
    }

    /// Peak compute in GOPS counting one MAC as one op (the paper's
    /// Fig. 3 "comp roof" of 256 GOPS = 512 MACs × 0.5 GHz).
    pub fn peak_gops(&self) -> f64 {
        self.peak_macs_per_sec() / 1e9
    }

    /// DRAM bytes transferable per core cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bw_bytes_per_sec / self.freq_hz
    }

    /// Converts cycles at the core clock into seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz
    }

    /// A scaled copy with `factor`× the MAC lines and DRAM bandwidth,
    /// used for the paper's "scale up the accelerators' hardware
    /// resource to have a comparable peak throughput" GPU comparison.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn scaled(&self, factor: usize) -> Self {
        assert!(factor > 0, "scale factor must be positive");
        Self {
            mac_lines: self.mac_lines * factor,
            dram_bw_bytes_per_sec: self.dram_bw_bytes_per_sec * factor as f64,
            ..*self
        }
    }
}

#[cfg(test)]
// Exact float equality below asserts deterministic replay of seeded runs.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        let c = AcceleratorConfig::vitcod_paper();
        assert_eq!(c.total_macs(), 512);
        assert_eq!(c.peak_gops(), 256.0);
        assert_eq!(c.sram.total_bytes(), 327_680);
        assert!((c.dram_bytes_per_cycle() - 153.6).abs() < 1e-9);
    }

    #[test]
    fn cycles_to_seconds_at_500mhz() {
        let c = AcceleratorConfig::vitcod_paper();
        assert!((c.cycles_to_seconds(500_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_multiplies_compute_and_bandwidth() {
        let c = AcceleratorConfig::vitcod_paper().scaled(4);
        assert_eq!(c.total_macs(), 2048);
        assert_eq!(c.dram_bw_bytes_per_sec, 4.0 * 76.8e9);
        // Compute-to-bandwidth ratio unchanged.
        let base = AcceleratorConfig::vitcod_paper();
        let r0 = base.peak_macs_per_sec() / base.dram_bw_bytes_per_sec;
        let r1 = c.peak_macs_per_sec() / c.dram_bw_bytes_per_sec;
        assert!((r0 - r1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_zero_panics() {
        AcceleratorConfig::vitcod_paper().scaled(0);
    }

    #[test]
    fn energy_constants_positive() {
        let e = EnergyModel::cmos_28nm();
        assert!(e.mac_pj > 0.0);
        assert!(e.dram_pj_per_byte > e.sram_pj_per_byte);
    }

    #[test]
    fn default_policy_is_dynamic_with_batch_8() {
        let c = AcceleratorConfig::vitcod_paper();
        assert_eq!(c.pe_allocation, PeAllocation::DynamicProportional);
        assert_eq!(c.weight_reuse_batch, 8);
    }

    #[test]
    fn scaled_preserves_policy_and_batch() {
        let c = AcceleratorConfig {
            pe_allocation: PeAllocation::StaticEven,
            weight_reuse_batch: 4,
            ..AcceleratorConfig::vitcod_paper()
        }
        .scaled(2);
        assert_eq!(c.pe_allocation, PeAllocation::StaticEven);
        assert_eq!(c.weight_reuse_batch, 4);
    }
}
