//! Simulation result types.

use crate::memory::TrafficStats;

/// Cycle totals per execution phase (compute-side view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCycles {
    /// SDDMM (`S = Q·Kᵀ`) cycles across both engines.
    pub sddmm: u64,
    /// SpMM (`V′ = S·V`) cycles across both engines.
    pub spmm: u64,
    /// Softmax-unit cycles.
    pub softmax: u64,
    /// Encoder/decoder engine cycles (AE codec).
    pub codec: u64,
    /// Dense linear layers (Q/K/V generation, projections, MLPs) when
    /// simulating end to end.
    pub linear: u64,
}

impl PhaseCycles {
    /// Sum of all compute phases.
    pub fn total(&self) -> u64 {
        self.sddmm + self.spmm + self.softmax + self.codec + self.linear
    }

    /// Accumulates another record.
    pub fn add(&mut self, other: &PhaseCycles) {
        self.sddmm += other.sddmm;
        self.spmm += other.spmm;
        self.softmax += other.softmax;
        self.codec += other.codec;
        self.linear += other.linear;
    }
}

/// The latency decomposition of Fig. 19: computation, preprocessing
/// (index/config loading) and data movements, where data movement cycles
/// count the *exposed* (non-overlapped) portion plus the overlapped
/// transfer time the paper reports as "overlapped computations and data
/// movements".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Pure compute cycles on the critical path.
    pub compute_cycles: u64,
    /// Preprocess cycles (sparse-index loading, reconfiguration).
    pub preprocess_cycles: u64,
    /// Data-movement cycles on the critical path.
    pub data_movement_cycles: u64,
}

impl LatencyBreakdown {
    /// Critical-path total.
    pub fn total(&self) -> u64 {
        self.compute_cycles + self.preprocess_cycles + self.data_movement_cycles
    }

    /// Fraction of total latency spent in data movement.
    pub fn data_movement_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        self.data_movement_cycles as f64 / t as f64
    }

    /// Accumulates another record.
    pub fn add(&mut self, other: &LatencyBreakdown) {
        self.compute_cycles += other.compute_cycles;
        self.preprocess_cycles += other.preprocess_cycles;
        self.data_movement_cycles += other.data_movement_cycles;
    }
}

/// Complete result of one simulation.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Simulated platform/configuration label.
    pub platform: String,
    /// Workload label (model name).
    pub workload: String,
    /// End-to-end cycles on the critical path.
    pub total_cycles: u64,
    /// Wall-clock latency in seconds at the configured frequency.
    pub latency_s: f64,
    /// Compute-phase cycle totals (not critical-path; for utilization).
    pub phases: PhaseCycles,
    /// Fig. 19-style latency decomposition.
    pub breakdown: LatencyBreakdown,
    /// Memory-traffic accounting.
    pub traffic: TrafficStats,
    /// Total MAC operations executed.
    pub macs: u64,
    /// Dynamic + static energy in joules.
    pub energy_j: f64,
    /// Average MAC-array utilization in [0, 1].
    pub utilization: f64,
}

impl SimReport {
    /// Speedup of `self` relative to `baseline` (>1 means `self` is
    /// faster).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        baseline.latency_s / self.latency_s
    }

    /// Energy efficiency (inferences per joule) relative to `baseline`.
    pub fn energy_efficiency_over(&self, baseline: &SimReport) -> f64 {
        baseline.energy_j / self.energy_j
    }

    /// Effective throughput in GOPS (MACs/s ÷ 1e9).
    pub fn effective_gops(&self) -> f64 {
        if self.latency_s == 0.0 {
            return 0.0;
        }
        self.macs as f64 / self.latency_s / 1e9
    }

    /// Arithmetic intensity seen at DRAM (MACs per DRAM byte).
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.traffic.dram_total();
        if bytes == 0 {
            return f64::INFINITY;
        }
        self.macs as f64 / bytes as f64
    }
}

#[cfg(test)]
// Exact float equality below asserts deterministic replay of seeded runs.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn phase_totals_add_up() {
        let mut p = PhaseCycles {
            sddmm: 10,
            spmm: 20,
            softmax: 5,
            codec: 2,
            linear: 0,
        };
        assert_eq!(p.total(), 37);
        p.add(&PhaseCycles {
            linear: 3,
            ..Default::default()
        });
        assert_eq!(p.total(), 40);
    }

    #[test]
    fn breakdown_fractions() {
        let b = LatencyBreakdown {
            compute_cycles: 50,
            preprocess_cycles: 10,
            data_movement_cycles: 40,
        };
        assert_eq!(b.total(), 100);
        assert!((b.data_movement_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(LatencyBreakdown::default().data_movement_fraction(), 0.0);
    }

    #[test]
    fn speedup_and_efficiency() {
        let fast = SimReport {
            latency_s: 1e-3,
            energy_j: 0.5,
            ..Default::default()
        };
        let slow = SimReport {
            latency_s: 1e-2,
            energy_j: 5.0,
            ..Default::default()
        };
        assert!((fast.speedup_over(&slow) - 10.0).abs() < 1e-9);
        assert!((fast.energy_efficiency_over(&slow) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn gops_and_intensity() {
        let r = SimReport {
            latency_s: 1.0,
            macs: 2_000_000_000,
            traffic: TrafficStats {
                dram_read_bytes: 1_000_000_000,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!((r.effective_gops() - 2.0).abs() < 1e-9);
        assert!((r.arithmetic_intensity() - 2.0).abs() < 1e-9);
    }
}
