//! Area/floorplan model (paper Fig. 16: 3 mm² total in 28 nm).

use crate::config::AcceleratorConfig;

/// One floorplan component with its estimated area.
#[derive(Debug, Clone, PartialEq)]
pub struct FloorplanComponent {
    /// Component label matching Fig. 16.
    pub name: &'static str,
    /// Estimated area in mm².
    pub area_mm2: f64,
}

/// SRAM density for a 28 nm-class process, mm² per KB (compiled SRAM with
/// peripheral overhead).
const SRAM_MM2_PER_KB: f64 = 0.0045;

/// Area of one 8-bit MAC plus its pipeline registers and share of
/// control, mm².
const MAC_MM2: f64 = 0.0018;

/// Fixed overhead: controllers, NoC wiring, softmax/activation units.
const OVERHEAD_MM2: f64 = 0.18;

/// Estimates the floorplan of `cfg`, mirroring the paper's Fig. 16
/// component list (input/QKSV memory, output memory, weight memory,
/// index memory, MAC lines, encoder/decoder engines).
///
/// The constants are chosen so the paper configuration lands near its
/// reported 3 mm²; components scale correctly with the configuration.
///
/// # Example
///
/// ```
/// use vitcod_sim::{floorplan, AcceleratorConfig};
///
/// let parts = floorplan(&AcceleratorConfig::vitcod_paper());
/// let total: f64 = parts.iter().map(|p| p.area_mm2).sum();
/// assert!((total - 3.0).abs() < 0.5, "total {total} mm2");
/// ```
pub fn floorplan(cfg: &AcceleratorConfig) -> Vec<FloorplanComponent> {
    let kb = |bytes: usize| bytes as f64 / 1024.0;
    let macs = cfg.total_macs() as f64;
    // The codec engines reuse a slice of the MAC lines (paper: "encoder
    // and decoder have their own PE/MAC lines ... also used to process
    // other denser/sparser workloads"); book 10% of the array to them.
    let mac_area = macs * MAC_MM2;
    vec![
        FloorplanComponent {
            name: "Q/K/S/V or Input Memory",
            area_mm2: kb(cfg.sram.act_buffer_bytes) * SRAM_MM2_PER_KB,
        },
        FloorplanComponent {
            name: "Output Memory",
            area_mm2: kb(cfg.sram.output_buffer_bytes) * SRAM_MM2_PER_KB,
        },
        FloorplanComponent {
            name: "Weight Memory",
            area_mm2: kb(cfg.sram.weight_buffer_bytes) * SRAM_MM2_PER_KB,
        },
        FloorplanComponent {
            name: "Index Memory",
            area_mm2: kb(cfg.sram.index_buffer_bytes) * SRAM_MM2_PER_KB,
        },
        FloorplanComponent {
            name: "MAC Lines (Denser/Sparser Engines)",
            area_mm2: mac_area * 0.9,
        },
        FloorplanComponent {
            name: "Encoder/Decoder Engines",
            area_mm2: mac_area * 0.1,
        },
        FloorplanComponent {
            name: "Control + SoftMax/Activation Units",
            area_mm2: OVERHEAD_MM2,
        },
    ]
}

/// Total estimated area in mm².
pub fn total_area_mm2(cfg: &AcceleratorConfig) -> f64 {
    floorplan(cfg).iter().map(|p| p.area_mm2).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_about_three_mm2() {
        let total = total_area_mm2(&AcceleratorConfig::vitcod_paper());
        assert!((2.4..3.6).contains(&total), "total {total}");
    }

    #[test]
    fn components_cover_fig16_labels() {
        let parts = floorplan(&AcceleratorConfig::vitcod_paper());
        let names: Vec<_> = parts.iter().map(|p| p.name).collect();
        assert!(names.iter().any(|n| n.contains("Index Memory")));
        assert!(names.iter().any(|n| n.contains("Encoder/Decoder")));
        assert!(names.iter().any(|n| n.contains("MAC Lines")));
        assert!(parts.iter().all(|p| p.area_mm2 > 0.0));
    }

    #[test]
    fn area_scales_with_macs() {
        let base = total_area_mm2(&AcceleratorConfig::vitcod_paper());
        let big = total_area_mm2(&AcceleratorConfig::vitcod_paper().scaled(2));
        assert!(big > base * 1.2);
    }

    #[test]
    fn memory_area_tracks_buffer_sizes() {
        let cfg = AcceleratorConfig::vitcod_paper();
        let parts = floorplan(&cfg);
        let act = parts.iter().find(|p| p.name.contains("Input")).unwrap();
        let idx = parts.iter().find(|p| p.name.contains("Index")).unwrap();
        // 128KB vs 20KB.
        assert!(act.area_mm2 > 5.0 * idx.area_mm2);
    }
}
