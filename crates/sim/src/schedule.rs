//! Tile-level instruction schedules.
//!
//! The hardware compiler (paper Fig. 14) "generates corresponding
//! instructions" for the accelerator. This module materialises that
//! instruction stream for one attention head: a list of [`TileOp`]s —
//! which engine runs which column range in which phase for how many
//! cycles — scheduled onto the engine's MAC lines with greedy
//! longest-processing-time list scheduling. The resulting makespan is
//! consistent with the closed-form engine models in [`crate::engines`],
//! which the tests verify; the explicit stream additionally supports
//! inspection and drives the trace/visualisation tooling.

use vitcod_core::PhaseWorkload;

/// Which engine executes a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The denser engine (global-token block).
    Denser,
    /// The sparser engine (CSC residue).
    Sparser,
}

/// Which phase of the attention computation a tile belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// `S = Q·Kᵀ` score generation.
    Sddmm,
    /// `V′ = S·V` aggregation.
    Spmm,
}

/// One scheduled unit of work: a contiguous column range processed on
/// one MAC line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileOp {
    /// Executing engine.
    pub engine: EngineKind,
    /// Computation phase.
    pub phase: Phase,
    /// First attention-map column of the tile (in reordered order).
    pub col_start: usize,
    /// One past the last column.
    pub col_end: usize,
    /// Attention scores computed by this tile.
    pub scores: usize,
    /// Cycles the tile occupies its MAC line.
    pub cycles: u64,
}

/// The compiled instruction stream of one head.
#[derive(Debug, Clone)]
pub struct HeadSchedule {
    /// All tiles, denser block first, then the sparser residue
    /// column-by-column, for both phases.
    pub ops: Vec<TileOp>,
}

impl HeadSchedule {
    /// Total scores across all tiles of `phase`.
    pub fn scores_in_phase(&self, phase: Phase) -> usize {
        self.ops
            .iter()
            .filter(|t| t.phase == phase)
            .map(|t| t.scores)
            .sum()
    }

    /// Tiles assigned to `engine`.
    pub fn tiles_on(&self, engine: EngineKind) -> impl Iterator<Item = &TileOp> {
        self.ops.iter().filter(move |t| t.engine == engine)
    }

    /// Greedy LPT makespan of `engine`'s tiles over `lines` MAC lines —
    /// the cycle count the engine needs to drain this head.
    ///
    /// Returns 0 when the engine has no tiles or `lines == 0`.
    pub fn makespan(&self, engine: EngineKind, lines: usize) -> u64 {
        if lines == 0 {
            return 0;
        }
        let mut tiles: Vec<u64> = self.tiles_on(engine).map(|t| t.cycles).collect();
        if tiles.is_empty() {
            return 0;
        }
        tiles.sort_unstable_by(|a, b| b.cmp(a));
        let mut loads = vec![0u64; lines];
        for t in tiles {
            *loads.iter_mut().min().expect("lines > 0") += t;
        }
        loads.into_iter().max().unwrap_or(0)
    }
}

/// Compiles the tile schedule of one head.
///
/// Denser-block SDDMM tiles cover `macs_per_line`-column groups computed
/// densely; sparser tiles cover one CSC column each. SpMM tiles mirror
/// the same column decomposition (output-stationary accumulation walks
/// the identical index).
///
/// # Panics
///
/// Panics if `macs_per_line == 0`.
pub fn schedule_head(w: &PhaseWorkload, macs_per_line: usize) -> HeadSchedule {
    assert!(macs_per_line > 0, "need at least one MAC per line");
    let per_score = w.head_dim.div_ceil(macs_per_line) as u64;
    let mut ops = Vec::new();

    // Denser block: dense column groups.
    let group = macs_per_line.max(1);
    let mut col = 0;
    while col < w.num_global {
        let end = (col + group).min(w.num_global);
        let scores = (end - col) * w.tokens;
        ops.push(TileOp {
            engine: EngineKind::Denser,
            phase: Phase::Sddmm,
            col_start: col,
            col_end: end,
            scores,
            cycles: scores as u64 * per_score,
        });
        col = end;
    }
    // Denser SpMM: kept scores only, same grouping granularity. Scores
    // are spread approximately evenly over the block's column groups.
    if w.num_global > 0 && w.denser_nnz > 0 {
        let groups = w.num_global.div_ceil(group);
        let base = w.denser_nnz / groups;
        let mut remainder = w.denser_nnz % groups;
        let mut col = 0;
        for _ in 0..groups {
            let end = (col + group).min(w.num_global);
            let scores = base + usize::from(remainder > 0);
            remainder = remainder.saturating_sub(1);
            ops.push(TileOp {
                engine: EngineKind::Denser,
                phase: Phase::Spmm,
                col_start: col,
                col_end: end,
                scores,
                cycles: scores as u64 * per_score,
            });
            col = end;
        }
    }

    // Sparser residue: one tile per non-empty CSC column, both phases.
    for (i, &nnz) in w.sparser_col_nnz.iter().enumerate() {
        if nnz == 0 {
            continue;
        }
        let col = w.num_global + i;
        for phase in [Phase::Sddmm, Phase::Spmm] {
            ops.push(TileOp {
                engine: EngineKind::Sparser,
                phase,
                col_start: col,
                col_end: col + 1,
                scores: nnz,
                cycles: nnz as u64 * per_score,
            });
        }
    }

    HeadSchedule { ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::{sparser_sddmm_cycles, sparser_spmm_cycles};

    fn sample_workload() -> PhaseWorkload {
        PhaseWorkload {
            tokens: 32,
            head_dim: 16,
            num_global: 4,
            denser_nnz: 100,
            sparser_nnz: 24,
            sparser_col_nnz: vec![3, 0, 5, 1, 0, 7, 2, 6],
        }
    }

    #[test]
    fn schedule_covers_all_scores() {
        let w = sample_workload();
        let s = schedule_head(&w, 8);
        // SDDMM: dense block positions + sparser nnz.
        assert_eq!(
            s.scores_in_phase(Phase::Sddmm),
            w.tokens * w.num_global + w.sparser_nnz
        );
        // SpMM: kept scores only, both blocks.
        assert_eq!(s.scores_in_phase(Phase::Spmm), w.denser_nnz + w.sparser_nnz);
    }

    #[test]
    fn sparser_tiles_match_csc_columns() {
        let w = sample_workload();
        let s = schedule_head(&w, 8);
        let sddmm_tiles: Vec<_> = s
            .tiles_on(EngineKind::Sparser)
            .filter(|t| t.phase == Phase::Sddmm)
            .collect();
        // One tile per non-empty column (6 of 8).
        assert_eq!(sddmm_tiles.len(), 6);
        for t in &sddmm_tiles {
            assert_eq!(t.col_end, t.col_start + 1);
            assert!(t.col_start >= w.num_global);
        }
    }

    #[test]
    fn makespan_agrees_with_engine_model() {
        let w = sample_workload();
        let s = schedule_head(&w, 8);
        for lines in [1usize, 2, 4, 8] {
            let sched = s.makespan(EngineKind::Sparser, lines);
            // Engine model counts both phases with identical balancing.
            let engine = sparser_sddmm_cycles(&w.sparser_col_nnz, w.head_dim, lines, 8)
                + sparser_spmm_cycles(&w.sparser_col_nnz, w.head_dim, lines, 8);
            // The explicit schedule interleaves the two phases' tiles in
            // one LPT pass, which can only improve on scheduling them
            // separately; it is never worse.
            assert!(
                sched <= engine,
                "lines {lines}: schedule {sched} vs engine {engine}"
            );
            // And with one line both are exactly the total work.
            if lines == 1 {
                assert_eq!(sched, engine);
            }
        }
    }

    #[test]
    fn denser_tiles_partition_the_block() {
        let w = PhaseWorkload {
            tokens: 16,
            head_dim: 8,
            num_global: 10,
            denser_nnz: 120,
            sparser_nnz: 0,
            sparser_col_nnz: vec![0; 6],
        };
        let s = schedule_head(&w, 4);
        let tiles: Vec<_> = s
            .tiles_on(EngineKind::Denser)
            .filter(|t| t.phase == Phase::Sddmm)
            .collect();
        // Columns 0..10 in groups of 4: [0,4), [4,8), [8,10).
        assert_eq!(tiles.len(), 3);
        assert_eq!(tiles[0].col_end, 4);
        assert_eq!(tiles[2].col_end, 10);
        let covered: usize = tiles.iter().map(|t| t.col_end - t.col_start).sum();
        assert_eq!(covered, 10);
        // SpMM scores sum to denser_nnz.
        let spmm: usize = s
            .tiles_on(EngineKind::Denser)
            .filter(|t| t.phase == Phase::Spmm)
            .map(|t| t.scores)
            .sum();
        assert_eq!(spmm, 120);
    }

    #[test]
    fn empty_workload_empty_schedule() {
        let w = PhaseWorkload {
            tokens: 8,
            head_dim: 8,
            num_global: 0,
            denser_nnz: 0,
            sparser_nnz: 0,
            sparser_col_nnz: vec![0; 8],
        };
        let s = schedule_head(&w, 8);
        assert!(s.ops.is_empty());
        assert_eq!(s.makespan(EngineKind::Denser, 8), 0);
        assert_eq!(s.makespan(EngineKind::Sparser, 0), 0);
    }

    #[test]
    fn real_program_schedules_consistently() {
        use vitcod_core::{compile_model, SplitConquer, SplitConquerConfig};
        use vitcod_model::{AttentionStats, ViTConfig};
        let cfg = ViTConfig::deit_tiny();
        let stats = AttentionStats::for_model(&cfg, 3);
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
        let program = compile_model(&cfg, &sc.apply(&stats.maps), None);
        for layer in &program.layers {
            for h in &layer.heads {
                let s = schedule_head(h, 8);
                assert_eq!(
                    s.scores_in_phase(Phase::Spmm),
                    h.denser_nnz + h.sparser_nnz,
                    "layer {} SpMM coverage",
                    layer.layer
                );
            }
        }
    }
}
