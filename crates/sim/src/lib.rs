//! Cycle-accurate simulator of the ViTCoD accelerator (paper Sec. V–VI).
//!
//! The simulator models the accelerator the paper builds in 28 nm: 64 MAC
//! lines × 8 MACs at 500 MHz, 320 KB of SRAM split into activation /
//! weight / index / output buffers, and a DDR4-2400 interface at
//! 76.8 GB/s. Its two *pronged* engines — a **denser engine** running the
//! polarized global-token block with a K-stationary SDDMM dataflow and an
//! output-stationary SpMM dataflow, and a **sparser engine** walking the
//! pre-loaded CSC indexes of the sparse residue — execute the
//! [`vitcod_core::AcceleratorProgram`] produced by the hardware compiler,
//! while **encoder/decoder engines** shrink Q/K off-chip traffic per the
//! auto-encoder configuration.
//!
//! Fidelity: the simulator is *phase-accurate at tile granularity*. Every
//! engine's compute cycles and every buffer's fill/drain traffic are
//! accounted per (layer, head, phase); compute and memory are composed
//! with the double-buffered `max(compute, memory)` rule the paper's
//! pipelining implies. MAC/memory costs are constants in
//! [`EnergyModel`], standing in for the paper's post-layout numbers.
//!
//! # Example
//!
//! ```
//! use vitcod_core::{compile_model, SplitConquer, SplitConquerConfig};
//! use vitcod_model::{AttentionStats, ViTConfig};
//! use vitcod_sim::{AcceleratorConfig, ViTCoDAccelerator};
//!
//! let cfg = ViTConfig::deit_tiny();
//! let stats = AttentionStats::for_model(&cfg, 1);
//! let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
//! let program = compile_model(&cfg, &sc.apply(&stats.maps), None);
//! let acc = ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper());
//! let report = acc.simulate_attention(&program);
//! assert!(report.total_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accelerator;
mod area;
mod buffers;
mod config;
mod engines;
pub mod functional;
mod memory;
mod report;
mod roofline;
mod schedule;
mod trace;

pub use accelerator::ViTCoDAccelerator;
pub use area::{floorplan, total_area_mm2, FloorplanComponent};
pub use buffers::{check_buffers, BufferDemand, BufferReport};
pub use config::{AcceleratorConfig, EnergyModel, PeAllocation, SramConfig};
pub use engines::{
    denser_sddmm_cycles, denser_spmm_cycles, gemm_cycles, s_stationary_sddmm_cycles,
    softmax_cycles, sparser_sddmm_cycles, sparser_spmm_cycles,
};
pub use memory::{DramModel, TrafficStats};
pub use report::{LatencyBreakdown, PhaseCycles, SimReport};
pub use roofline::{Roofline, RooflinePoint};
pub use schedule::{schedule_head, EngineKind, HeadSchedule, Phase, TileOp};
pub use trace::{ExecutionTrace, LayerTrace};
