//! The top-level ViTCoD accelerator simulation loop.

use vitcod_core::{AcceleratorProgram, LayerProgram};
use vitcod_model::ViTConfig;

use crate::config::AcceleratorConfig;
use crate::engines::{
    denser_sddmm_cycles, denser_spmm_cycles, gemm_cycles, softmax_cycles, sparser_sddmm_cycles,
    sparser_spmm_cycles,
};
use crate::memory::{DramModel, TrafficStats};
use crate::report::{LatencyBreakdown, PhaseCycles, SimReport};

/// Fixed reconfiguration cost when an engine switches between inter-PE
/// (SDDMM) and intra-PE (SpMM) accumulation modes, per layer.
const RECONFIG_CYCLES: u64 = 16;

/// Bytes per CSC index entry (u16 row indices / column pointers — 197
/// tokens need 8 bits, but the hardware provisions 16).
const INDEX_BYTES: u64 = 2;

/// Minimum number of heads in a layer before the per-head engine cycle
/// models fan out across worker threads. Each head's model is a cheap
/// pass over its CSC column counts, so the fan-out only pays off for
/// wide layers (DeiT-Base-class, 12 heads); DeiT-Tiny's 3 heads stay on
/// the sequential walk.
const HEAD_FANOUT_MIN: usize = 4;

/// Simulator of the ViTCoD accelerator.
///
/// See the [crate-level documentation](crate) for the modelled
/// micro-architecture and an end-to-end example.
#[derive(Debug, Clone)]
pub struct ViTCoDAccelerator {
    cfg: AcceleratorConfig,
    dram: DramModel,
}

impl ViTCoDAccelerator {
    /// Creates a simulator for `cfg`.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        let dram = DramModel::new(&cfg);
        Self { cfg, dram }
    }

    /// The hardware configuration being simulated.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// Simulates the attention core (SDDMM + softmax + SpMM, paper's
    /// "core attention" workload) of `program`.
    pub fn simulate_attention(&self, program: &AcceleratorProgram) -> SimReport {
        self.simulate_attention_traced(program).0
    }

    /// Like [`Self::simulate_attention`] but also returns the per-layer
    /// [`crate::ExecutionTrace`] for timeline inspection.
    ///
    /// Layers are embarrassingly parallel — each one's cycle model only
    /// reads the shared program — so the per-layer simulations fan out
    /// across worker threads via the kernel layer's `par_map_collect`
    /// (each layer internally aggregates its (layer, head) pair
    /// workloads for the engines' PE allocation). The reduction over the
    /// returned per-layer results stays sequential and in layer order,
    /// so cycle counts are identical to the sequential walk regardless
    /// of the thread count — a test pins this.
    pub fn simulate_attention_traced(
        &self,
        program: &AcceleratorProgram,
    ) -> (SimReport, crate::ExecutionTrace) {
        let mut phases = PhaseCycles::default();
        let mut breakdown = LatencyBreakdown::default();
        let mut traffic = TrafficStats::new();
        let mut total_cycles = 0u64;
        let mut macs = 0u64;
        let mut exec = crate::ExecutionTrace::default();

        // Work estimate per layer: one pass over every head's CSC
        // column counts plus the fixed per-head engine bookkeeping.
        let work_per_layer = program
            .layers
            .first()
            .map(|l| l.heads.iter().map(|h| h.sparser_col_nnz.len() + 64).sum())
            .unwrap_or(1);
        let results =
            vitcod_tensor::kernels::par_map_collect(program.layers.len(), work_per_layer, |i| {
                self.simulate_attention_layer(program, &program.layers[i])
            });
        for r in results {
            phases.add(&r.phases);
            breakdown.add(&r.breakdown);
            traffic.add(&r.traffic);
            total_cycles += r.cycles;
            macs += r.macs;
            exec.layers.push(r.trace);
        }

        let report = self.finish_report(
            program,
            "core-attention",
            total_cycles,
            phases,
            breakdown,
            traffic,
            macs,
        );
        (report, exec)
    }

    /// Simulates the attention core of the *whole model*: the compiled
    /// primary stage exactly, plus any further pyramid stages (LeViT)
    /// scaled by their dense attention-MAC share at the same sparsity.
    pub fn simulate_attention_scaled(
        &self,
        program: &AcceleratorProgram,
        model: &ViTConfig,
    ) -> SimReport {
        let attention = self.simulate_attention(program);
        let mut phases = attention.phases;
        let mut breakdown = attention.breakdown;
        let traffic = attention.traffic;
        let mut macs = attention.macs;
        let mut total_cycles = attention.total_cycles;

        let primary = &model.stages[0];
        let primary_attn_macs =
            (primary.depth * 2 * primary.tokens * primary.tokens * primary.dim) as u64;
        for st in model.stages.iter().skip(1) {
            let st_macs = (st.depth * 2 * st.tokens * st.tokens * st.dim) as u64;
            let scale = st_macs as f64 / primary_attn_macs.max(1) as f64;
            total_cycles += (attention.total_cycles as f64 * scale).round() as u64;
            breakdown.compute_cycles += (attention.breakdown.compute_cycles as f64 * scale) as u64;
            breakdown.data_movement_cycles +=
                (attention.breakdown.data_movement_cycles as f64 * scale) as u64;
            phases.sddmm += (attention.phases.sddmm as f64 * scale) as u64;
            phases.spmm += (attention.phases.spmm as f64 * scale) as u64;
            macs += (attention.macs as f64 * scale) as u64;
        }
        self.finish_report(
            program,
            "core-attention",
            total_cycles,
            phases,
            breakdown,
            traffic,
            macs,
        )
    }

    /// Simulates the full model: linear layers (Q/K/V generation, output
    /// projection, MLPs, LeViT stem) on the reconfigured MAC lines plus
    /// the attention core of every stage.
    pub fn simulate_end_to_end(
        &self,
        program: &AcceleratorProgram,
        model: &ViTConfig,
    ) -> SimReport {
        let attention = self.simulate_attention_scaled(program, model);

        let mut phases = attention.phases;
        let mut breakdown = attention.breakdown;
        let mut traffic = attention.traffic;
        let mut macs = attention.macs;
        let mut total_cycles = attention.total_cycles;

        // Dense linear layers of every stage.
        let lines = self.cfg.mac_lines;
        let mpl = self.cfg.macs_per_line;
        let bytes = self.cfg.bytes_per_elem as u64;
        for st in &model.stages {
            let (n, d) = (st.tokens, st.dim);
            let hidden = d * model.mlp_ratio;
            for _ in 0..st.depth {
                // Q/K/V generation + output projection + two MLP matmuls.
                let layer_macs = (4 * n * d * d + 2 * n * d * hidden) as u64;
                let compute = gemm_cycles(n, d, 4 * d, lines, mpl)
                    + gemm_cycles(n, hidden, d, lines, mpl)
                    + gemm_cycles(n, d, hidden, lines, mpl);
                // Weights stream from DRAM once per batch; activations
                // stay on chip. Costs are per image.
                let weight_bytes = ((4 * d * d + 2 * d * hidden) as u64) * bytes
                    / self.cfg.weight_reuse_batch.max(1);
                let mem = self.dram.transfer_cycles(weight_bytes);
                let cycles = compute.max(mem) + RECONFIG_CYCLES;
                total_cycles += cycles;
                phases.linear += compute;
                macs += layer_macs;
                traffic.load(weight_bytes);
                if compute >= mem {
                    breakdown.compute_cycles += cycles;
                } else {
                    breakdown.compute_cycles += compute;
                    breakdown.data_movement_cycles += cycles - compute;
                }
            }
        }
        // LeViT convolutional stem as a dense GEMM-equivalent workload.
        if model.stem_macs > 0 {
            let compute = model.stem_macs / (lines * mpl) as u64;
            total_cycles += compute;
            phases.linear += compute;
            macs += model.stem_macs;
            breakdown.compute_cycles += compute;
        }

        self.finish_report(
            program,
            "end-to-end",
            total_cycles,
            phases,
            breakdown,
            traffic,
            macs,
        )
    }

    /// One attention layer: dynamic PE allocation, the two engines in
    /// parallel, softmax, AE codec, and the double-buffered composition
    /// with DRAM traffic.
    fn simulate_attention_layer(
        &self,
        program: &AcceleratorProgram,
        layer: &LayerProgram,
    ) -> LayerResult {
        let lines = self.cfg.mac_lines;
        let mpl = self.cfg.macs_per_line;
        let n = program.tokens;
        let dk = program.head_dim;
        let bytes = self.cfg.bytes_per_elem as u64;

        // Dynamic PE allocation proportional to workload size (Sec. V-B),
        // aggregated over the layer's heads.
        let denser_work: u64 = layer
            .heads
            .iter()
            .map(|h| h.sddmm_denser_macs() + h.spmm_denser_macs())
            .sum();
        let sparser_work: u64 = layer
            .heads
            .iter()
            .map(|h| h.sddmm_sparser_macs() + h.spmm_sparser_macs())
            .sum();
        let (denser_lines, sparser_lines) = match self.cfg.pe_allocation {
            crate::config::PeAllocation::DynamicProportional => {
                allocate_lines(lines, denser_work, sparser_work)
            }
            crate::config::PeAllocation::StaticEven => {
                if denser_work == 0 {
                    (0, lines)
                } else if sparser_work == 0 {
                    (lines, 0)
                } else {
                    (lines / 2, lines - lines / 2)
                }
            }
        };

        // Engine scheduling: heads run in parallel across each engine's
        // MAC lines, each head receiving lines proportional to its
        // workload ("all attention heads are processed in parallel",
        // with "each PE line ... dedicated to the computation of one
        // chunk", Sec. V-B); with fewer lines than active heads, heads
        // serialise over the whole engine.
        let mut sddmm = 0u64;
        let mut spmm = 0u64;
        let mut nnz_total = 0usize;
        for h in &layer.heads {
            nnz_total += h.denser_nnz + h.sparser_nnz;
        }

        let denser_works: Vec<u64> = layer
            .heads
            .iter()
            .map(|h| (n * h.num_global + h.denser_nnz) as u64)
            .collect();
        let denser_alloc = proportional_lines(&denser_works, denser_lines);
        let sparser_works: Vec<u64> = layer.heads.iter().map(|h| h.sparser_nnz as u64).collect();
        let sparser_alloc = proportional_lines(&sparser_works, sparser_lines);

        // Per-head cycle models are pure functions of the program, so
        // wide layers fan them out across worker threads; the reductions
        // below stay sequential and in head order, keeping the counts
        // identical to the sequential walk (the pinning test covers
        // this). `None` marks a head the engine does not run.
        let head_model = |h_idx: usize| -> (EngineHeadCycles, EngineHeadCycles) {
            let h = &layer.heads[h_idx];
            let denser = (denser_lines > 0)
                .then(|| {
                    let l = if denser_alloc.parallel {
                        denser_alloc.per_head[h_idx]
                    } else {
                        denser_lines
                    };
                    (l > 0).then(|| {
                        (
                            denser_sddmm_cycles(n, h.num_global, dk, l, mpl),
                            denser_spmm_cycles(h.denser_nnz, dk, l, mpl),
                        )
                    })
                })
                .flatten();
            let sparser = (sparser_lines > 0)
                .then(|| {
                    let l = if sparser_alloc.parallel {
                        sparser_alloc.per_head[h_idx]
                    } else {
                        sparser_lines
                    };
                    (l > 0).then(|| {
                        (
                            sparser_sddmm_cycles(&h.sparser_col_nnz, dk, l, mpl),
                            sparser_spmm_cycles(&h.sparser_col_nnz, dk, l, mpl),
                        )
                    })
                })
                .flatten();
            (denser, sparser)
        };
        let head_count = layer.heads.len();
        let per_head_models: Vec<_> = if head_count >= HEAD_FANOUT_MIN {
            let work = layer
                .heads
                .iter()
                .map(|h| h.sparser_col_nnz.len() + 64)
                .max()
                .unwrap_or(64);
            vitcod_tensor::kernels::par_map_collect(head_count, work, head_model)
        } else {
            (0..head_count).map(head_model).collect()
        };

        let mut denser_cycles = 0u64;
        let mut sparser_cycles = 0u64;
        for (denser, sparser) in per_head_models {
            if let Some((ds, dp)) = denser {
                if denser_alloc.parallel {
                    denser_cycles = denser_cycles.max(ds + dp);
                } else {
                    denser_cycles += ds + dp;
                }
                sddmm += ds;
                spmm += dp;
            }
            if let Some((ss, sp)) = sparser {
                if sparser_alloc.parallel {
                    sparser_cycles = sparser_cycles.max(ss + sp);
                } else {
                    sparser_cycles += ss + sp;
                }
                sddmm += ss;
                spmm += sp;
            }
        }
        let softmax = softmax_cycles(nnz_total, lines);
        // The engines run concurrently; softmax is pipelined behind the
        // slower engine but exposed at the tail.
        let compute = denser_cycles.max(sparser_cycles) + softmax;

        // DRAM traffic. This is where the paper's roofline story lives
        // (Fig. 3): the diagonal-heavy sparser residue offers almost no
        // reuse of loaded Q vectors — computing one attention score
        // needs a full Q and K vector, and with the non-zeros scattered
        // along the diagonal each loaded Q serves only a handful of
        // scores. The model:
        //  * K is the stationary operand: streamed once per column that
        //    owns work (both engines);
        //  * the denser engine streams Q once per K tile, where tiling
        //    is forced by the per-head share of the activation buffer
        //    (all heads execute in parallel and share it);
        //  * the sparser engine fetches Q per kept score, except when
        //    query-based forwarding hits the denser engine's Q buffer
        //    (paper Sec. V-B (2); modelled as a 50 % on-demand hit rate
        //    whenever the head has a denser block resident);
        //  * the AE compresses every Q/K byte crossing the DRAM
        //    boundary by its head-compression ratio, decoded on chip.
        const FORWARD_HIT_RATE: f64 = 0.5;
        /// Scattered 64-byte vector fetches achieve a fraction of the
        /// DDR4 burst bandwidth (row-activation and short-burst
        /// penalties); sequential streams run at full rate.
        const SCATTER_BUS_PENALTY: f64 = 4.0;
        let d_model = (program.heads * dk) as u64;
        let head_vec_bytes = (n * dk) as u64 * bytes; // one head's Q (or K) matrix
        let buffer_share = (self.cfg.sram.act_buffer_bytes / program.heads.max(1)) as u64;
        let mut seq_bytes = 0u64; // streamed at full bandwidth
        let mut scattered_bytes = 0u64; // per-score vector gathers
        match program.auto_encoder {
            Some(ae) => {
                // With the AE, compressed Q and K fit the per-head
                // buffer share and stay resident for the whole layer:
                // one sequential (compressed) load each, no refetches.
                let compressed = (head_vec_bytes as f64 * ae.ratio()).round() as u64;
                seq_bytes += 2 * compressed * layer.heads.len() as u64;
            }
            None => {
                // The activation buffer is shared by all parallel heads
                // and the four operand classes (Q, K, V, S); the slice
                // available for caching one head's Q vectors is
                // therefore small, and only the non-resident fraction
                // of Q touches DRAM per score.
                let q_budget = (self.cfg.sram.act_buffer_bytes / (4 * program.heads.max(1))) as u64;
                let q_resident = (q_budget as f64 / head_vec_bytes.max(1) as f64).min(1.0);
                let miss = 1.0 - q_resident;
                for h in &layer.heads {
                    // K is the stationary operand: streamed once.
                    seq_bytes += head_vec_bytes;
                    if h.num_global > 0 {
                        // Denser engine: Q re-streamed once per K tile
                        // (tiling forced by the shared buffer).
                        let k_block_bytes = (h.num_global * dk) as u64 * bytes;
                        let k_tile = (buffer_share / 2).max(1);
                        let tiles = k_block_bytes.div_ceil(k_tile).max(1);
                        seq_bytes += head_vec_bytes * tiles;
                        // Sparser engine: per-score Q gathers for the
                        // non-resident fraction, minus query-based
                        // forwarding hits.
                        scattered_bytes += ((h.sparser_nnz * dk) as f64
                            * bytes as f64
                            * (1.0 - FORWARD_HIT_RATE)
                            * miss) as u64;
                    } else {
                        // No denser block: no forwarding source; every
                        // kept score of a non-resident Q gathers its
                        // own vector.
                        scattered_bytes += (((h.sparser_nnz + h.denser_nnz) * dk) as f64
                            * bytes as f64
                            * miss) as u64;
                    }
                }
            }
        }
        let v_bytes = n as u64 * d_model * bytes;
        let out_bytes = n as u64 * d_model * bytes;
        let qk_bytes = seq_bytes + scattered_bytes;
        let mut traffic = TrafficStats::new();
        traffic.load(qk_bytes + v_bytes);
        traffic.store(out_bytes);
        // On-chip operand reuse: each MAC reads two operands per cycle
        // equivalent; charge one SRAM read per MAC input pair byte.
        let layer_macs = denser_work + sparser_work;
        traffic.on_chip(2 * layer_macs * bytes);

        let index_entries: u64 = layer
            .heads
            .iter()
            .map(|h| (h.sparser_nnz + n + 1) as u64)
            .sum();
        let index_bytes = index_entries * INDEX_BYTES;
        traffic.load(index_bytes);

        // AE decoder: recovers Q/K while they stream in; pipelined with
        // the transfer, so it extends the memory phase only if slower.
        let codec_cycles = match program.auto_encoder {
            Some(ae) => {
                let codec_macs = 2
                    * (n as u64)
                    * (dk as u64)
                    * (ae.heads() as u64)
                    * (ae.compressed_heads() as u64);
                codec_macs.div_ceil((lines * mpl) as u64)
            }
            None => 0,
        };

        // Bus occupancy: sequential streams at full rate, scattered
        // gathers at the derated burst efficiency.
        let effective_bus_bytes =
            seq_bytes + v_bytes + out_bytes + (scattered_bytes as f64 * SCATTER_BUS_PENALTY) as u64;
        let data_cycles = self.dram.transfer_cycles(effective_bus_bytes);
        let mem_phase = data_cycles.max(codec_cycles);
        let preprocess = self.dram.transfer_cycles(index_bytes) + RECONFIG_CYCLES;

        // Double-buffered compute/memory overlap.
        let cycles = compute.max(mem_phase) + preprocess;

        let mut breakdown = LatencyBreakdown {
            preprocess_cycles: preprocess,
            ..Default::default()
        };
        if compute >= mem_phase {
            breakdown.compute_cycles = compute;
        } else {
            breakdown.compute_cycles = compute;
            breakdown.data_movement_cycles = mem_phase - compute;
        }
        // Report the overlapped movement too, Fig. 19 style: the paper's
        // "data movements" bar counts overlapped transfer time.
        breakdown.data_movement_cycles += mem_phase.min(compute) / 2;

        LayerResult {
            cycles,
            macs: layer_macs + codec_cycles * (lines * mpl) as u64,
            phases: PhaseCycles {
                sddmm,
                spmm,
                softmax,
                codec: codec_cycles,
                linear: 0,
            },
            breakdown,
            traffic,
            trace: crate::LayerTrace {
                layer: layer.layer,
                denser_cycles,
                sparser_cycles,
                softmax_cycles: softmax,
                codec_cycles,
                memory_cycles: data_cycles,
                preprocess_cycles: preprocess,
                total_cycles: cycles,
                denser_lines,
                sparser_lines,
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_report(
        &self,
        program: &AcceleratorProgram,
        kind: &str,
        total_cycles: u64,
        phases: PhaseCycles,
        breakdown: LatencyBreakdown,
        traffic: TrafficStats,
        macs: u64,
    ) -> SimReport {
        let latency_s = self.cfg.cycles_to_seconds(total_cycles);
        let e = &self.cfg.energy;
        let energy_j = macs as f64 * e.mac_pj * 1e-12
            + traffic.sram_total() as f64 * e.sram_pj_per_byte * 1e-12
            + traffic.dram_total() as f64 * e.dram_pj_per_byte * 1e-12
            + e.static_watts * latency_s;
        let peak = self.cfg.peak_macs_per_sec() * latency_s;
        let utilization = if peak > 0.0 {
            (macs as f64 / peak).min(1.0)
        } else {
            0.0
        };
        SimReport {
            platform: format!("ViTCoD({} lines)", self.cfg.mac_lines),
            workload: format!("{} [{}]", program.model, kind),
            total_cycles,
            latency_s,
            phases,
            breakdown,
            traffic,
            macs,
            energy_j,
            utilization,
        }
    }
}

/// One engine's (SDDMM, SpMM) cycle pair for a single head; `None` when
/// the engine does not run that head.
type EngineHeadCycles = Option<(u64, u64)>;

/// Per-head line assignment inside one engine.
struct HeadAllocation {
    /// `true`: heads run concurrently with `per_head` lines each;
    /// `false`: heads serialise, each using the whole engine.
    parallel: bool,
    per_head: Vec<usize>,
}

/// Distributes `total` lines across heads proportionally to their work,
/// granting every active head at least one line. Falls back to serial
/// execution when there are fewer lines than active heads.
fn proportional_lines(works: &[u64], total: usize) -> HeadAllocation {
    let active = works.iter().filter(|&&w| w > 0).count();
    if total == 0 || active == 0 {
        return HeadAllocation {
            parallel: false,
            per_head: vec![0; works.len()],
        };
    }
    if total < active {
        return HeadAllocation {
            parallel: false,
            per_head: vec![total; works.len()],
        };
    }
    let sum: u64 = works.iter().sum();
    let mut per_head: Vec<usize> = works
        .iter()
        .map(|&w| {
            if w == 0 {
                0
            } else {
                (((w as f64 / sum as f64) * total as f64).floor() as usize).max(1)
            }
        })
        .collect();
    // Hand out any remaining lines to the heaviest heads.
    let mut used: usize = per_head.iter().sum();
    while used < total {
        let (idx, _) = works
            .iter()
            .enumerate()
            .filter(|(i, &w)| w > 0 && per_head[*i] > 0)
            .max_by_key(|(i, &w)| w / per_head[*i].max(1) as u64)
            .map(|(i, w)| (i, *w))
            .unwrap_or((0, 0));
        per_head[idx] += 1;
        used += 1;
    }
    // Trim if the floor+min(1) overshot (many tiny heads).
    while used > total {
        if let Some((idx, _)) = per_head
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > 1)
            .min_by_key(|(i, _)| works[*i])
        {
            per_head[idx] -= 1;
            used -= 1;
        } else {
            break;
        }
    }
    HeadAllocation {
        parallel: true,
        per_head,
    }
}

/// Splits `total` MAC lines proportionally to the two engines' workloads,
/// guaranteeing each engine with non-zero work at least one line.
fn allocate_lines(total: usize, denser_work: u64, sparser_work: u64) -> (usize, usize) {
    let sum = denser_work + sparser_work;
    if sum == 0 {
        return (total, 0);
    }
    if denser_work == 0 {
        return (0, total);
    }
    if sparser_work == 0 {
        return (total, 0);
    }
    let mut denser = ((denser_work as f64 / sum as f64) * total as f64).round() as usize;
    denser = denser.clamp(1, total - 1);
    (denser, total - denser)
}

struct LayerResult {
    cycles: u64,
    macs: u64,
    phases: PhaseCycles,
    breakdown: LatencyBreakdown,
    traffic: TrafficStats,
    trace: crate::LayerTrace,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitcod_core::{compile_model, AutoEncoderConfig, SplitConquer, SplitConquerConfig};
    use vitcod_model::AttentionStats;

    fn program(sparsity: f64, ae: bool) -> AcceleratorProgram {
        let cfg = ViTConfig::deit_tiny();
        let stats = AttentionStats::for_model(&cfg, 5);
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(sparsity));
        let ae_cfg = ae.then(|| AutoEncoderConfig::half(cfg.heads));
        compile_model(&cfg, &sc.apply(&stats.maps), ae_cfg)
    }

    fn sim() -> ViTCoDAccelerator {
        ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper())
    }

    #[test]
    fn higher_sparsity_is_faster() {
        let s = sim();
        let r60 = s.simulate_attention(&program(0.6, false));
        let r90 = s.simulate_attention(&program(0.9, false));
        assert!(
            r90.total_cycles < r60.total_cycles,
            "90% ({}) should beat 60% ({})",
            r90.total_cycles,
            r60.total_cycles
        );
    }

    #[test]
    fn ae_reduces_dram_traffic() {
        let s = sim();
        let without = s.simulate_attention(&program(0.9, false));
        let with = s.simulate_attention(&program(0.9, true));
        assert!(
            with.traffic.dram_read_bytes < without.traffic.dram_read_bytes,
            "AE must shrink Q/K loads"
        );
        assert!(with.phases.codec > 0);
        assert_eq!(without.phases.codec, 0);
    }

    #[test]
    fn ae_improves_latency_on_bandwidth_bound_sparse_workloads() {
        let s = sim();
        let without = s.simulate_attention(&program(0.9, false));
        let with = s.simulate_attention(&program(0.9, true));
        assert!(
            with.total_cycles <= without.total_cycles,
            "AE {} vs no-AE {}",
            with.total_cycles,
            without.total_cycles
        );
    }

    #[test]
    fn end_to_end_includes_linear_layers() {
        let s = sim();
        let p = program(0.9, false);
        let attn = s.simulate_attention(&p);
        let e2e = s.simulate_end_to_end(&p, &ViTConfig::deit_tiny());
        assert!(e2e.total_cycles > attn.total_cycles);
        assert!(e2e.phases.linear > 0);
        assert!(e2e.macs > attn.macs);
    }

    #[test]
    fn levit_end_to_end_covers_stages_and_stem() {
        let s = sim();
        let cfg = ViTConfig::levit_128();
        let stats = AttentionStats::for_model(&cfg, 6);
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.8));
        let p = compile_model(&cfg, &sc.apply(&stats.maps), None);
        let e2e = s.simulate_end_to_end(&p, &cfg);
        assert!(e2e.total_cycles > 0);
        assert!(e2e.phases.linear > 0);
    }

    #[test]
    fn energy_positive_and_dominated_by_memory_for_sparse() {
        let s = sim();
        let r = s.simulate_attention(&program(0.9, false));
        assert!(r.energy_j > 0.0);
        let mac_energy = r.macs as f64 * 0.3e-12;
        assert!(r.energy_j > mac_energy, "memory energy must contribute");
    }

    #[test]
    fn utilization_within_bounds() {
        let s = sim();
        for sp in [0.6, 0.9] {
            let r = s.simulate_attention(&program(sp, false));
            assert!(r.utilization > 0.0 && r.utilization <= 1.0);
        }
    }

    #[test]
    fn allocate_lines_edge_cases() {
        assert_eq!(allocate_lines(64, 0, 0), (64, 0));
        assert_eq!(allocate_lines(64, 10, 0), (64, 0));
        assert_eq!(allocate_lines(64, 0, 10), (0, 64));
        let (d, s) = allocate_lines(64, 100, 100);
        assert_eq!(d + s, 64);
        assert!(d >= 1 && s >= 1);
        let (d2, _) = allocate_lines(2, 1_000_000, 1);
        assert_eq!(d2, 1, "clamped to leave one line for the sparser engine");
    }

    #[test]
    fn scaled_hardware_is_faster() {
        let base = sim().simulate_attention(&program(0.9, false));
        let big = ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper().scaled(4))
            .simulate_attention(&program(0.9, false));
        assert!(big.total_cycles < base.total_cycles);
    }

    #[test]
    fn larger_weight_reuse_batch_speeds_up_end_to_end() {
        let p = program(0.9, false);
        let model = ViTConfig::deit_tiny();
        let slow = ViTCoDAccelerator::new(AcceleratorConfig {
            weight_reuse_batch: 1,
            ..AcceleratorConfig::vitcod_paper()
        })
        .simulate_end_to_end(&p, &model);
        let fast = ViTCoDAccelerator::new(AcceleratorConfig {
            weight_reuse_batch: 16,
            ..AcceleratorConfig::vitcod_paper()
        })
        .simulate_end_to_end(&p, &model);
        // DeiT-Tiny's GEMMs are compute-bound on this array, so latency
        // may not move, but weight traffic must shrink with reuse.
        assert!(fast.total_cycles <= slow.total_cycles);
        assert!(fast.traffic.dram_total() < slow.traffic.dram_total());
    }

    #[test]
    fn static_even_allocation_never_beats_dynamic() {
        let p = program(0.9, true);
        let model = ViTConfig::deit_tiny();
        let dynamic = ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper())
            .simulate_attention_scaled(&p, &model);
        let even = ViTCoDAccelerator::new(AcceleratorConfig {
            pe_allocation: crate::PeAllocation::StaticEven,
            ..AcceleratorConfig::vitcod_paper()
        })
        .simulate_attention_scaled(&p, &model);
        assert!(dynamic.total_cycles <= even.total_cycles);
    }

    #[test]
    fn traced_simulation_matches_untraced() {
        let p = program(0.9, true);
        let s = sim();
        let (traced, trace) = s.simulate_attention_traced(&p);
        let plain = s.simulate_attention(&p);
        assert_eq!(traced.total_cycles, plain.total_cycles);
        assert_eq!(trace.layers.len(), p.layers.len());
        assert_eq!(trace.total_cycles(), plain.total_cycles);
        // Line allocations recorded per layer sum to the array width.
        for l in &trace.layers {
            assert_eq!(l.denser_lines + l.sparser_lines, 64);
        }
    }

    #[test]
    fn parallel_layer_fanout_pins_sequential_cycle_counts() {
        use vitcod_tensor::kernels;
        let p = program(0.9, true);
        let s = sim();
        // One worker = the sequential walk; the reduction order is the
        // same either way, so every count must be identical.
        kernels::set_num_threads(1);
        let (seq, seq_trace) = s.simulate_attention_traced(&p);
        kernels::set_num_threads(4);
        let (par, par_trace) = s.simulate_attention_traced(&p);
        kernels::set_num_threads(0);
        assert_eq!(par.total_cycles, seq.total_cycles);
        assert_eq!(par.phases, seq.phases);
        assert_eq!(par.breakdown, seq.breakdown);
        assert_eq!(par.traffic, seq.traffic);
        assert_eq!(par.macs, seq.macs);
        assert_eq!(par_trace.layers.len(), seq_trace.layers.len());
        for (a, b) in par_trace.layers.iter().zip(seq_trace.layers.iter()) {
            assert_eq!(a.layer, b.layer, "trace order must stay layer order");
            assert_eq!(a.total_cycles, b.total_cycles);
            assert_eq!(a.denser_cycles, b.denser_cycles);
            assert_eq!(a.sparser_cycles, b.sparser_cycles);
        }
    }

    #[test]
    fn per_head_fanout_pins_sequential_cycle_counts() {
        use vitcod_tensor::kernels;
        // DeiT-Small has 6 heads per layer — above HEAD_FANOUT_MIN, so
        // the per-head cycle models take the parallel path; the fold is
        // sequential in head order, so every count must be identical to
        // the single-worker walk.
        let cfg = ViTConfig::deit_small();
        let stats = AttentionStats::for_model(&cfg, 9);
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
        let p = compile_model(
            &cfg,
            &sc.apply(&stats.maps),
            Some(AutoEncoderConfig::half(cfg.heads)),
        );
        assert!(p.layers[0].heads.len() >= HEAD_FANOUT_MIN);
        let s = sim();
        let seq = kernels::with_thread_budget(1, || s.simulate_attention(&p));
        let par = kernels::with_thread_budget(4, || s.simulate_attention(&p));
        assert_eq!(par.total_cycles, seq.total_cycles);
        assert_eq!(par.phases, seq.phases);
        assert_eq!(par.breakdown, seq.breakdown);
        assert_eq!(par.traffic, seq.traffic);
        assert_eq!(par.macs, seq.macs);
    }

    #[test]
    fn report_labels_are_informative() {
        let r = sim().simulate_attention(&program(0.9, false));
        assert!(r.platform.contains("ViTCoD"));
        assert!(r.workload.contains("DeiT-Tiny"));
    }
}
