//! DRAM timing model and traffic accounting.

use crate::config::AcceleratorConfig;

/// Simple bandwidth-bound DRAM model with a burst floor.
///
/// DDR4 transfers whole bursts; tiny requests still pay a minimum
/// latency. The model charges `ceil(bytes / bandwidth-per-cycle)` cycles
/// plus a fixed per-request overhead, which is what the coarse-grained
/// streaming accesses of the accelerator see in steady state.
#[derive(Debug, Clone, Copy)]
pub struct DramModel {
    bytes_per_cycle: f64,
    request_overhead_cycles: u64,
}

impl DramModel {
    /// Builds the model from an accelerator config.
    pub fn new(cfg: &AcceleratorConfig) -> Self {
        Self {
            bytes_per_cycle: cfg.dram_bytes_per_cycle(),
            request_overhead_cycles: 20,
        }
    }

    /// Cycles to stream `bytes` as one large request.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        (bytes as f64 / self.bytes_per_cycle).ceil() as u64 + self.request_overhead_cycles
    }

    /// Effective bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }
}

/// Byte-level traffic accounting across the memory hierarchy.
///
/// `dram_*` counts off-chip transfers (the quantity ViTCoD's AE module
/// attacks); `sram_*` counts on-chip buffer accesses (for the energy
/// model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Bytes read from DRAM.
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: u64,
    /// Bytes read from on-chip SRAM.
    pub sram_read_bytes: u64,
    /// Bytes written to on-chip SRAM.
    pub sram_write_bytes: u64,
}

impl TrafficStats {
    /// Zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total off-chip bytes moved.
    pub fn dram_total(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Total on-chip bytes moved.
    pub fn sram_total(&self) -> u64 {
        self.sram_read_bytes + self.sram_write_bytes
    }

    /// Accumulates another stats record.
    pub fn add(&mut self, other: &TrafficStats) {
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.sram_read_bytes += other.sram_read_bytes;
        self.sram_write_bytes += other.sram_write_bytes;
    }

    /// Records a DRAM read that lands in SRAM (both sides accounted).
    pub fn load(&mut self, bytes: u64) {
        self.dram_read_bytes += bytes;
        self.sram_write_bytes += bytes;
    }

    /// Records an SRAM result written back to DRAM.
    pub fn store(&mut self, bytes: u64) {
        self.dram_write_bytes += bytes;
        self.sram_read_bytes += bytes;
    }

    /// Records an on-chip-only access (operand reuse from a buffer).
    pub fn on_chip(&mut self, bytes: u64) {
        self.sram_read_bytes += bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;

    #[test]
    fn transfer_cycles_scale_with_bytes() {
        let dram = DramModel::new(&AcceleratorConfig::vitcod_paper());
        assert_eq!(dram.transfer_cycles(0), 0);
        let small = dram.transfer_cycles(1536);
        let big = dram.transfer_cycles(1_536_000);
        assert!(big > small);
        // 153.6 B/cycle -> 1536 bytes = 10 cycles + overhead.
        assert_eq!(small, 10 + 20);
    }

    #[test]
    fn traffic_accounting_identities() {
        let mut t = TrafficStats::new();
        t.load(100);
        t.store(40);
        t.on_chip(7);
        assert_eq!(t.dram_read_bytes, 100);
        assert_eq!(t.dram_write_bytes, 40);
        assert_eq!(t.dram_total(), 140);
        assert_eq!(t.sram_write_bytes, 100);
        assert_eq!(t.sram_read_bytes, 47);
        assert_eq!(t.sram_total(), 147);
    }

    #[test]
    fn add_accumulates() {
        let mut a = TrafficStats::new();
        a.load(10);
        let mut b = TrafficStats::new();
        b.store(5);
        a.add(&b);
        assert_eq!(a.dram_total(), 15);
    }
}
