//! Compute-cycle models of the accelerator's engines and dataflows.
//!
//! All engines are built from MAC lines of `macs_per_line` multipliers.
//! The K-stationary SDDMM maps the `dk` feature dimension spatially onto
//! a line (inter-PE accumulation, Fig. 12 ❶), so one Q·K pair costs
//! `ceil(dk / macs_per_line)` cycles on one line; pairs are spread across
//! lines. The output-stationary SpMM maps token tiles spatially and
//! accumulates partial sums inside each PE (intra-PE accumulation,
//! Fig. 12 ❷).

/// Cycles for a dense `m × n × k` GEMM spread over `lines` MAC lines
/// (used for Q/K/V generation, output projection and MLPs, where "all
/// MAC lines are reconfigured to process these dense workloads").
///
/// # Panics
///
/// Panics if `lines == 0` or `macs_per_line == 0`.
pub fn gemm_cycles(m: usize, n: usize, k: usize, lines: usize, macs_per_line: usize) -> u64 {
    assert!(lines > 0 && macs_per_line > 0, "need at least one MAC");
    let macs = (m as u64) * (n as u64) * (k as u64);
    let throughput = (lines * macs_per_line) as u64;
    macs.div_ceil(throughput)
}

/// Denser-engine SDDMM (K-stationary): computes the dense
/// `tokens × num_global` score block against `dk`-dim Q/K vectors.
///
/// Each of the `tokens · num_global` pairs costs `ceil(dk /
/// macs_per_line)` cycles on one line; `lines` lines work in parallel.
///
/// # Panics
///
/// Panics if `lines == 0` or `macs_per_line == 0`.
pub fn denser_sddmm_cycles(
    tokens: usize,
    num_global: usize,
    dk: usize,
    lines: usize,
    macs_per_line: usize,
) -> u64 {
    assert!(lines > 0 && macs_per_line > 0, "need at least one MAC");
    let pairs = (tokens * num_global) as u64;
    let per_pair = dk.div_ceil(macs_per_line) as u64;
    pairs.div_ceil(lines as u64) * per_pair
}

/// Sparser-engine SDDMM: walks the CSC columns of the sparse residue.
/// Columns are assigned to MAC lines with a greedy longest-processing-
/// time schedule (the static equivalent of the engine's column queue),
/// so the returned cycle count reflects the residual load imbalance.
///
/// # Panics
///
/// Panics if `lines == 0` or `macs_per_line == 0`.
pub fn sparser_sddmm_cycles(
    col_nnz: &[usize],
    dk: usize,
    lines: usize,
    macs_per_line: usize,
) -> u64 {
    assert!(lines > 0 && macs_per_line > 0, "need at least one MAC");
    let per_score = dk.div_ceil(macs_per_line) as u64;
    balance_max(col_nnz, lines) * per_score
}

/// Denser-engine SpMM (output-stationary): each kept score inside the
/// denser block multiplies a `dk`-wide V row; scores are spread across
/// lines.
///
/// # Panics
///
/// Panics if `lines == 0` or `macs_per_line == 0`.
pub fn denser_spmm_cycles(denser_nnz: usize, dk: usize, lines: usize, macs_per_line: usize) -> u64 {
    assert!(lines > 0 && macs_per_line > 0, "need at least one MAC");
    let per_score = dk.div_ceil(macs_per_line) as u64;
    (denser_nnz as u64).div_ceil(lines as u64) * per_score
}

/// Sparser-engine SpMM with the same greedy balancing as the SDDMM
/// phase (the attention map stays in its CSC layout).
///
/// # Panics
///
/// Panics if `lines == 0` or `macs_per_line == 0`.
pub fn sparser_spmm_cycles(
    col_nnz: &[usize],
    dk: usize,
    lines: usize,
    macs_per_line: usize,
) -> u64 {
    assert!(lines > 0 && macs_per_line > 0, "need at least one MAC");
    let per_score = dk.div_ceil(macs_per_line) as u64;
    balance_max(col_nnz, lines) * per_score
}

/// Softmax-unit cycles: one exponential per kept score, one unit per MAC
/// line, fully pipelined (II = 1), following the Sanger-style exponent
/// operator the paper adopts.
///
/// # Panics
///
/// Panics if `units == 0`.
pub fn softmax_cycles(nnz: usize, units: usize) -> u64 {
    assert!(units > 0, "need at least one softmax unit");
    (nnz as u64).div_ceil(units as u64)
}

/// S-stationary SDDMM cycle model (paper Fig. 11(a) — the rejected
/// dataflow alternative, adopted by Sanger). Attention scores are mapped
/// *spatially*: each PE owns one score and accumulates its dot product
/// over `dk` sequential cycles. A tile of `lines · macs_per_line` scores
/// therefore costs `dk` cycles regardless of how many of those scores
/// are actually kept — pruned positions idle their PEs, which is exactly
/// the under-utilization the paper's Sec. V-A analysis attributes to
/// this dataflow at high sparsity. `density` is the kept fraction of the
/// mapped region.
///
/// # Panics
///
/// Panics if `lines == 0`, `macs_per_line == 0`, or `density` is outside
/// `(0, 1]`.
pub fn s_stationary_sddmm_cycles(
    tokens: usize,
    dk: usize,
    density: f64,
    lines: usize,
    macs_per_line: usize,
) -> u64 {
    assert!(lines > 0 && macs_per_line > 0, "need at least one MAC");
    assert!(
        density > 0.0 && density <= 1.0,
        "density must be in (0, 1], got {density}"
    );
    let pe_count = (lines * macs_per_line) as u64;
    // Pack-and-split-style condensation can skip tiles that are fully
    // empty, but kept scores inside a tile still pin the whole tile for
    // dk cycles; the effective mapped scores are nnz / density_tile with
    // density_tile ≈ max(density, 1/pe_count-regularised packing).
    let total_positions = (tokens * tokens) as u64;
    let nnz = ((total_positions as f64) * density).ceil() as u64;
    // Packing efficiency: at the 50-70% design point most tile slots are
    // useful; at 90%+ packing cannot fill tiles and slots idle.
    let packing = density.max(0.25);
    let mapped = ((nnz as f64) / packing).ceil() as u64;
    mapped.div_ceil(pe_count) * dk as u64
}

/// Greedy LPT schedule: assigns each workload (descending) to the
/// currently least-loaded bin and returns the maximum bin load.
fn balance_max(workloads: &[usize], bins: usize) -> u64 {
    let mut sorted: Vec<usize> = workloads.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![0u64; bins];
    for w in sorted {
        let min = loads
            .iter_mut()
            .min()
            .expect("bins > 0 guaranteed by callers");
        *min += w as u64;
    }
    loads.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_cycles_exact_division() {
        // 64x64x64 = 262144 MACs over 512 MACs/cycle = 512 cycles.
        assert_eq!(gemm_cycles(64, 64, 64, 64, 8), 512);
    }

    #[test]
    fn gemm_cycles_rounds_up() {
        assert_eq!(gemm_cycles(1, 1, 1, 64, 8), 1);
    }

    #[test]
    fn denser_sddmm_scales_with_block() {
        let a = denser_sddmm_cycles(197, 10, 64, 32, 8);
        let b = denser_sddmm_cycles(197, 20, 64, 32, 8);
        assert!(
            b >= 2 * a - 8,
            "doubling columns ~doubles cycles: {a} -> {b}"
        );
    }

    #[test]
    fn denser_sddmm_more_lines_fewer_cycles() {
        let few = denser_sddmm_cycles(197, 12, 64, 8, 8);
        let many = denser_sddmm_cycles(197, 12, 64, 56, 8);
        assert!(many < few);
    }

    #[test]
    fn sparser_sddmm_balanced_equals_ideal() {
        // 32 equal columns over 32 lines: one column each.
        let cols = vec![4usize; 32];
        let cycles = sparser_sddmm_cycles(&cols, 64, 32, 8);
        assert_eq!(cycles, 4 * (64u64.div_ceil(8)));
    }

    #[test]
    fn sparser_sddmm_imbalance_costs_cycles() {
        // Same total nnz, skewed distribution is slower.
        let balanced = vec![4usize; 32];
        let mut skewed = vec![0usize; 32];
        skewed[0] = 128;
        let b = sparser_sddmm_cycles(&balanced, 64, 32, 8);
        let s = sparser_sddmm_cycles(&skewed, 64, 32, 8);
        assert!(s > b, "skewed {s} should exceed balanced {b}");
        assert_eq!(s, 128 * 8);
    }

    #[test]
    fn lpt_spreads_two_big_columns() {
        // Two big columns over two lines land on different lines.
        let cols = vec![100usize, 100];
        assert_eq!(sparser_sddmm_cycles(&cols, 8, 2, 8), 100);
    }

    #[test]
    fn spmm_denser_counts_scores() {
        // 128 scores over 64 lines = 2 rounds x dk/8 cycles.
        assert_eq!(denser_spmm_cycles(128, 64, 64, 8), 2 * 8);
    }

    #[test]
    fn softmax_pipelines_across_units() {
        assert_eq!(softmax_cycles(640, 64), 10);
        assert_eq!(softmax_cycles(0, 64), 0);
        assert_eq!(softmax_cycles(1, 64), 1);
    }

    #[test]
    fn sparser_spmm_matches_sddmm_balancing() {
        let cols = vec![3usize, 9, 1, 7];
        assert_eq!(
            sparser_spmm_cycles(&cols, 32, 2, 8),
            sparser_sddmm_cycles(&cols, 32, 2, 8)
        );
    }

    #[test]
    #[should_panic(expected = "at least one MAC")]
    fn zero_lines_panics() {
        gemm_cycles(1, 1, 1, 0, 8);
    }

    #[test]
    fn s_stationary_dense_equals_k_stationary_dense() {
        // At density 1.0 both dataflows do the same MACs: n^2 scores of
        // dk accumulations over the same PE count.
        let n = 64;
        let dk = 64;
        let s = s_stationary_sddmm_cycles(n, dk, 1.0, 64, 8);
        let k = denser_sddmm_cycles(n, n, dk, 64, 8);
        let ratio = s as f64 / k as f64;
        assert!((0.8..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn s_stationary_wastes_pes_at_high_sparsity() {
        // Per-kept-score cost grows as density falls past the packing
        // floor — the Fig. 11 argument against S-stationary for ViTs.
        let n = 128;
        let dk = 64;
        let cost_per_nnz = |density: f64| {
            let nnz = (n as f64 * n as f64 * density).ceil();
            s_stationary_sddmm_cycles(n, dk, density, 64, 8) as f64 / nnz
        };
        assert!(cost_per_nnz(0.1) > 1.8 * cost_per_nnz(0.5));
    }

    #[test]
    #[should_panic(expected = "density")]
    fn s_stationary_zero_density_panics() {
        s_stationary_sddmm_cycles(8, 8, 0.0, 8, 8);
    }
}
