//! Execution traces: per-layer phase occupancy and an ASCII timeline
//! renderer, for inspecting where cycles go (the textual analogue of a
//! waveform viewer on the RTL).

/// Cycle occupancy of one simulated attention layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerTrace {
    /// Layer index.
    pub layer: usize,
    /// Denser-engine busy cycles (SDDMM + SpMM).
    pub denser_cycles: u64,
    /// Sparser-engine busy cycles (SDDMM + SpMM).
    pub sparser_cycles: u64,
    /// Softmax-unit cycles.
    pub softmax_cycles: u64,
    /// Encoder/decoder engine cycles.
    pub codec_cycles: u64,
    /// DRAM-transfer cycles (data phase).
    pub memory_cycles: u64,
    /// Preprocess cycles (index streaming + reconfiguration).
    pub preprocess_cycles: u64,
    /// Critical-path cycles of the layer after overlap.
    pub total_cycles: u64,
    /// MAC lines granted to the denser engine.
    pub denser_lines: usize,
    /// MAC lines granted to the sparser engine.
    pub sparser_lines: usize,
}

impl LayerTrace {
    /// Which resource bounds this layer: `"compute"` when the engines
    /// outlast the memory phase, `"memory"` otherwise.
    pub fn bound_by(&self) -> &'static str {
        let compute = self.denser_cycles.max(self.sparser_cycles) + self.softmax_cycles;
        if compute >= self.memory_cycles.max(self.codec_cycles) {
            "compute"
        } else {
            "memory"
        }
    }

    /// Engine balance: `min/max` of the two engines' busy cycles
    /// (1.0 = perfectly balanced; the dynamic PE allocation maximises
    /// this).
    pub fn engine_balance(&self) -> f64 {
        let max = self.denser_cycles.max(self.sparser_cycles);
        let min = self.denser_cycles.min(self.sparser_cycles);
        if max == 0 {
            return 1.0;
        }
        min as f64 / max as f64
    }
}

/// A whole run's layer traces.
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    /// Per-layer records in execution order.
    pub layers: Vec<LayerTrace>,
}

impl ExecutionTrace {
    /// Sum of layer critical paths.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.total_cycles).sum()
    }

    /// Fraction of layers that are memory-bound.
    pub fn memory_bound_fraction(&self) -> f64 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers
            .iter()
            .filter(|l| l.bound_by() == "memory")
            .count() as f64
            / self.layers.len() as f64
    }

    /// Mean engine balance across layers.
    pub fn mean_engine_balance(&self) -> f64 {
        if self.layers.is_empty() {
            return 1.0;
        }
        self.layers.iter().map(|l| l.engine_balance()).sum::<f64>() / self.layers.len() as f64
    }

    /// Renders an ASCII timeline: one row per layer, bar lengths
    /// proportional to cycles, engines and memory drawn in distinct
    /// glyphs (`D` denser, `S` sparser, `M` memory, `P` preprocess).
    pub fn render(&self, width: usize) -> String {
        let max = self
            .layers
            .iter()
            .map(|l| l.total_cycles)
            .max()
            .unwrap_or(1)
            .max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<6} {:<width$} {:>10} {:>8} {:>8}\n",
            "layer",
            "timeline (D denser | S sparser | M memory | P preprocess)",
            "cycles",
            "bound",
            "balance",
            width = width
        ));
        for l in &self.layers {
            let bar = |c: u64| (c as usize * width / max as usize).min(width);
            let d = bar(l.denser_cycles);
            let s = bar(l.sparser_cycles);
            let m = bar(l.memory_cycles);
            let p = bar(l.preprocess_cycles);
            let mut line = vec![' '; width];
            for (glyph, len) in [('M', m), ('S', s), ('D', d), ('P', p)] {
                for cell in line.iter_mut().take(len) {
                    if *cell == ' ' || glyph == 'D' {
                        *cell = glyph;
                    }
                }
            }
            // Overlap regions: denser and sparser run concurrently; show
            // the shorter engine's tail with its own glyph.
            let overlap = d.min(s);
            for (i, cell) in line.iter_mut().enumerate().take(overlap) {
                let _ = i;
                *cell = '#';
            }
            out.push_str(&format!(
                "{:<6} {:<width$} {:>10} {:>8} {:>8.2}\n",
                l.layer,
                line.iter().collect::<String>(),
                l.total_cycles,
                l.bound_by(),
                l.engine_balance(),
                width = width
            ));
        }
        out
    }
}

#[cfg(test)]
// Exact float equality below asserts deterministic replay of seeded runs.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn sample_layer(denser: u64, sparser: u64, memory: u64) -> LayerTrace {
        LayerTrace {
            layer: 0,
            denser_cycles: denser,
            sparser_cycles: sparser,
            softmax_cycles: 5,
            codec_cycles: 0,
            memory_cycles: memory,
            preprocess_cycles: 3,
            total_cycles: denser.max(sparser).max(memory) + 8,
            denser_lines: 32,
            sparser_lines: 32,
        }
    }

    #[test]
    fn bound_by_classifies() {
        assert_eq!(sample_layer(100, 80, 20).bound_by(), "compute");
        assert_eq!(sample_layer(10, 10, 500).bound_by(), "memory");
    }

    #[test]
    fn engine_balance_range() {
        assert_eq!(sample_layer(100, 100, 0).engine_balance(), 1.0);
        assert_eq!(sample_layer(100, 50, 0).engine_balance(), 0.5);
        assert_eq!(sample_layer(0, 0, 0).engine_balance(), 1.0);
    }

    #[test]
    fn trace_aggregates() {
        let t = ExecutionTrace {
            layers: vec![sample_layer(100, 90, 20), sample_layer(10, 10, 400)],
        };
        assert_eq!(t.total_cycles(), 108 + 408);
        assert!((t.memory_bound_fraction() - 0.5).abs() < 1e-9);
        assert!(t.mean_engine_balance() > 0.9);
    }

    #[test]
    fn render_has_one_row_per_layer() {
        let t = ExecutionTrace {
            layers: vec![sample_layer(50, 40, 30), sample_layer(20, 60, 10)],
        };
        let s = t.render(40);
        assert_eq!(s.lines().count(), 3); // header + 2 layers
        assert!(s.contains('#'), "overlap glyph missing");
    }

    #[test]
    fn empty_trace_is_benign() {
        let t = ExecutionTrace::default();
        assert_eq!(t.total_cycles(), 0);
        assert_eq!(t.memory_bound_fraction(), 0.0);
        assert_eq!(t.mean_engine_balance(), 1.0);
    }
}
