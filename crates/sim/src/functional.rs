//! Functional (value-level) model of the accelerator's dataflows.
//!
//! The cycle model in [`crate::ViTCoDAccelerator`] answers *how long*;
//! this module answers *what is computed* — it executes the K-stationary
//! SDDMM, the sparse softmax and the output-stationary SpMM exactly as
//! the engines sequence them (column by column over the CSC index), and
//! is tested for bit-level agreement with the dense masked-attention
//! reference. This is the reproduction's analogue of the paper's
//! "verified it against the RTL implementation to ensure its
//! correctness". An 8-bit variant runs the same dataflow on quantized
//! operands with i32 accumulation, as the MAC lines do.

use vitcod_core::CscMatrix;
use vitcod_tensor::{kernels, softmax_row, Matrix, QuantizedMatrix};

/// Exclusive prefix sum of per-column non-zero counts: `off[k]` is the
/// position of column `k`'s first value in a CSC-ordered values buffer.
fn column_offsets(index: &CscMatrix) -> Vec<usize> {
    let n = index.size();
    let mut off = Vec::with_capacity(n + 1);
    off.push(0usize);
    for k in 0..n {
        off.push(off[k] + index.col_nnz(k));
    }
    off
}

/// Partitions the CSC columns into contiguous ranges of roughly equal
/// non-zero count, one per worker thread. Returns `(value_bounds,
/// column_starts)`, both `segments + 1` long, suitable for
/// [`kernels::par_segments`].
fn column_partition(index: &CscMatrix, col_off: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let n = index.size();
    let nnz = index.nnz();
    let threads = kernels::num_threads().max(1);
    let target = nnz.div_ceil(threads).max(1);
    let mut value_bounds = vec![0usize];
    let mut column_starts = vec![0usize];
    for k in 0..n {
        let seg_nnz = col_off[k + 1] - value_bounds.last().unwrap();
        if seg_nnz >= target && k + 1 < n {
            value_bounds.push(col_off[k + 1]);
            column_starts.push(k + 1);
        }
    }
    value_bounds.push(nnz);
    column_starts.push(n);
    (value_bounds, column_starts)
}

/// Sparse attention scores in CSC layout: one value per kept `(q, k)`
/// position, column-major, aligned with a [`CscMatrix`] index.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseScores {
    index: CscMatrix,
    values: Vec<f32>,
}

impl SparseScores {
    /// The CSC index describing which positions the values occupy.
    pub fn index(&self) -> &CscMatrix {
        &self.index
    }

    /// Number of stored scores.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Densifies into an `n × n` matrix (zeros at pruned positions).
    pub fn to_dense(&self) -> Matrix {
        let n = self.index.size();
        let mut out = Matrix::zeros(n, n);
        let mut pos = 0;
        for k in 0..n {
            for &q in self.index.col_rows(k) {
                out.set(q as usize, k, self.values[pos]);
                pos += 1;
            }
        }
        out
    }

    /// Applies a row-wise softmax *in the sparse domain*: each query
    /// row's kept scores are normalised among themselves, exactly what
    /// the engines' softmax units do after a complete attention row is
    /// available.
    pub fn softmax_rows(&self) -> SparseScores {
        let n = self.index.size();
        // Gather per-row (value position, score) pairs.
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut pos = 0;
        for k in 0..n {
            for &q in self.index.col_rows(k) {
                rows[q as usize].push(pos);
                pos += 1;
            }
        }
        // Per-row normalisation fans out across workers; the scatter back
        // into column order stays sequential (it is O(nnz) copies).
        let work_per_row = self.values.len() / n.max(1) + 1;
        let softmaxed: Vec<Vec<f32>> = kernels::par_map_collect(n, work_per_row, |r| {
            let mut row: Vec<f32> = rows[r].iter().map(|&p| self.values[p]).collect();
            softmax_row(&mut row);
            row
        });
        let mut values = self.values.clone();
        for (positions, row) in rows.into_iter().zip(softmaxed) {
            for (p, v) in positions.into_iter().zip(row) {
                values[p] = v;
            }
        }
        SparseScores {
            index: self.index.clone(),
            values,
        }
    }
}

/// K-stationary SDDMM (paper Fig. 11(b) / Fig. 13(a)): K columns are
/// loaded one at a time; for each kept `(q, k)` position listed in the
/// CSC index, a `dk`-length dot product accumulates across the MAC line
/// (inter-PE accumulation), emitting attention scores column by column.
///
/// The CSC columns are partitioned into contiguous non-zero-balanced
/// ranges and fanned out across worker threads, each writing its own
/// disjoint slice of the values buffer (the software analogue of the
/// accelerator distributing K columns over MAC lines).
///
/// `scale` is the `1/sqrt(dk)` attention scaling.
///
/// # Panics
///
/// Panics if `q`/`k` have different feature dims or the index size
/// differs from the token count.
pub fn sddmm_k_stationary(q: &Matrix, k: &Matrix, index: &CscMatrix, scale: f32) -> SparseScores {
    assert_eq!(q.cols(), k.cols(), "q/k feature dims differ");
    assert_eq!(q.rows(), index.size(), "index size must match tokens");
    assert_eq!(k.rows(), index.size(), "index size must match tokens");
    let col_off = column_offsets(index);
    let (value_bounds, column_starts) = column_partition(index, &col_off);
    let mut values = vec![0.0f32; index.nnz()];
    kernels::par_segments(&mut values, &value_bounds, |seg, out| {
        let mut pos = 0;
        for col in column_starts[seg]..column_starts[seg + 1] {
            // K column resident; related Q rows stream temporally.
            let k_vec = k.row(col);
            for &qi in index.col_rows(col) {
                let q_vec = q.row(qi as usize);
                let mut acc = 0.0f32;
                for (a, b) in q_vec.iter().zip(k_vec.iter()) {
                    acc += a * b;
                }
                out[pos] = acc * scale;
                pos += 1;
            }
        }
    });
    SparseScores {
        index: index.clone(),
        values,
    }
}

/// 8-bit K-stationary SDDMM: the same walk with i8 operands and i32
/// accumulation, dequantised at emission — the MAC lines' arithmetic.
///
/// # Panics
///
/// Panics on shape mismatches as [`sddmm_k_stationary`] does.
pub fn sddmm_k_stationary_int8(
    q: &QuantizedMatrix,
    k: &QuantizedMatrix,
    index: &CscMatrix,
    scale: f32,
) -> SparseScores {
    assert_eq!(q.shape().1, k.shape().1, "q/k feature dims differ");
    assert_eq!(q.shape().0, index.size(), "index size must match tokens");
    let out_scale = q.params().scale * k.params().scale * scale;
    let col_off = column_offsets(index);
    let (value_bounds, column_starts) = column_partition(index, &col_off);
    let mut values = vec![0.0f32; index.nnz()];
    kernels::par_segments(&mut values, &value_bounds, |seg, out| {
        let mut pos = 0;
        for col in column_starts[seg]..column_starts[seg + 1] {
            let k_vec = k.row_raw(col);
            for &qi in index.col_rows(col) {
                let q_vec = q.row_raw(qi as usize);
                let mut acc: i32 = 0;
                for (a, b) in q_vec.iter().zip(k_vec.iter()) {
                    acc += (*a as i32) * (*b as i32);
                }
                out[pos] = acc as f32 * out_scale;
                pos += 1;
            }
        }
    });
    SparseScores {
        index: index.clone(),
        values,
    }
}

/// Output-stationary SpMM (paper Fig. 13(b)): output rows `V′[q, :]`
/// stay resident in the PE registers (intra-PE accumulation) while the
/// sparse attention probabilities and V rows stream through; each kept
/// `(q, k)` score accumulates `prob · V[k, :]` into output row `q`.
///
/// # Panics
///
/// Panics if shapes disagree with the score index.
pub fn spmm_output_stationary(scores: &SparseScores, v: &Matrix) -> Matrix {
    let n = scores.index.size();
    assert_eq!(v.rows(), n, "V token count must match index");
    let cols = v.cols();
    let mut out = Matrix::zeros(n, cols);
    if cols == 0 {
        return out;
    }
    // Output rows stay resident (intra-PE accumulation) while the sparse
    // probabilities and V rows stream through. Workers own disjoint
    // output-row chunks, so every worker walks the full CSC stream and
    // accumulates only the (q, k) pairs whose output row it owns — the
    // index walk is duplicated per worker but the MACs are not.
    let index = &scores.index;
    let values = &scores.values;
    let work_per_row = cols * (scores.values.len() / n.max(1) + 1);
    kernels::for_each_row_chunk_weighted(
        out.as_mut_slice(),
        cols,
        work_per_row,
        |first_row, chunk| {
            let chunk_rows = chunk.len() / cols;
            let mut pos = 0;
            for k in 0..n {
                let v_row = v.row(k);
                for &q in index.col_rows(k) {
                    let p = values[pos];
                    pos += 1;
                    let q = q as usize;
                    if p == 0.0 || q < first_row || q >= first_row + chunk_rows {
                        continue;
                    }
                    let local = q - first_row;
                    let out_row = &mut chunk[local * cols..(local + 1) * cols];
                    for (o, vv) in out_row.iter_mut().zip(v_row.iter()) {
                        *o += p * vv;
                    }
                }
            }
        },
    );
    out
}

/// Executes one head's full sparse attention through the accelerator's
/// dataflow: K-stationary SDDMM → sparse softmax → output-stationary
/// SpMM.
pub fn attention_head(q: &Matrix, k: &Matrix, v: &Matrix, index: &CscMatrix, scale: f32) -> Matrix {
    let scores = sddmm_k_stationary(q, k, index, scale);
    let probs = scores.softmax_rows();
    spmm_output_stationary(&probs, v)
}

/// Functional auto-encoder round trip: mixes `x`'s heads down through
/// `enc` (`h × h_c`) and back up through `dec` (`h_c × h`), as the
/// encoder engine does before DRAM write-back and the decoder engine on
/// reload. Returns `(compressed, recovered)`.
///
/// # Panics
///
/// Panics if `x.cols()` is not `enc.rows() · dk`.
pub fn auto_encoder_round_trip(
    x: &Matrix,
    enc: &Matrix,
    dec: &Matrix,
    dk: usize,
) -> (Matrix, Matrix) {
    let (h, hc) = enc.shape();
    assert_eq!(x.cols(), h * dk, "input cols must be heads * dk");
    assert_eq!(dec.shape(), (hc, h), "decoder must invert encoder shape");
    let compressed = kernels::head_mix(x, enc, dk);
    let recovered = kernels::head_mix(&compressed, dec, dk);
    (compressed, recovered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitcod_core::{prune_to_sparsity, AttentionMask};
    use vitcod_tensor::Initializer;

    fn random_qkv(n: usize, dk: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        (
            Initializer::Normal { std: 1.0 }.sample(n, dk, seed),
            Initializer::Normal { std: 1.0 }.sample(n, dk, seed + 1),
            Initializer::Normal { std: 1.0 }.sample(n, dk, seed + 2),
        )
    }

    fn diag_global_mask(n: usize) -> AttentionMask {
        let mut m = AttentionMask::empty(n);
        for q in 0..n {
            m.keep(q, q);
            m.keep(q, 0);
            m.keep(q, (q + 1) % n);
        }
        m
    }

    /// Dense reference: masked softmax attention computed with plain
    /// matrix ops.
    fn dense_reference(
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        mask: &AttentionMask,
        scale: f32,
    ) -> Matrix {
        let mut scores = q.matmul_nt(k).scale(scale);
        for r in 0..scores.rows() {
            for c in 0..scores.cols() {
                if !mask.is_kept(r, c) {
                    scores.set(r, c, f32::NEG_INFINITY);
                }
            }
        }
        scores.softmax_rows().matmul(v)
    }

    #[test]
    fn sddmm_matches_dense_scores() {
        let (q, k, _) = random_qkv(24, 16, 10);
        let mask = diag_global_mask(24);
        let index = CscMatrix::from_mask(&mask);
        let sparse = sddmm_k_stationary(&q, &k, &index, 0.25);
        let dense = q.matmul_nt(&k).scale(0.25);
        let sd = sparse.to_dense();
        for (qq, kk) in mask.iter_kept() {
            assert!(
                (sd.get(qq, kk) - dense.get(qq, kk)).abs() < 1e-5,
                "score ({qq},{kk}) differs"
            );
        }
        assert_eq!(sparse.nnz(), mask.nnz());
    }

    #[test]
    fn full_dataflow_matches_dense_masked_attention() {
        let (q, k, v) = random_qkv(32, 8, 20);
        let mask = diag_global_mask(32);
        let index = CscMatrix::from_mask(&mask);
        let dataflow = attention_head(&q, &k, &v, &index, 0.35);
        let reference = dense_reference(&q, &k, &v, &mask, 0.35);
        assert!(
            dataflow.max_abs_diff(&reference) < 1e-4,
            "dataflow diverges from dense reference by {}",
            dataflow.max_abs_diff(&reference)
        );
    }

    #[test]
    fn dataflow_matches_reference_on_pruned_real_maps() {
        // End-to-end with a split-and-conquer produced mask.
        let (q, k, v) = random_qkv(48, 16, 30);
        let map = q.matmul_nt(&k).softmax_rows();
        let mask = prune_to_sparsity(&map, 0.85);
        let index = CscMatrix::from_mask(&mask);
        let dataflow = attention_head(&q, &k, &v, &index, 0.25);
        let reference = dense_reference(&q, &k, &v, &mask, 0.25);
        assert!(dataflow.max_abs_diff(&reference) < 1e-4);
    }

    #[test]
    fn sparse_softmax_rows_sum_to_one() {
        let (q, k, _) = random_qkv(16, 8, 40);
        let mask = diag_global_mask(16);
        let index = CscMatrix::from_mask(&mask);
        let probs = sddmm_k_stationary(&q, &k, &index, 0.3).softmax_rows();
        let dense = probs.to_dense();
        for r in 0..16 {
            let s: f32 = dense.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn int8_dataflow_close_to_fp32() {
        let (q, k, _) = random_qkv(24, 32, 50);
        let mask = diag_global_mask(24);
        let index = CscMatrix::from_mask(&mask);
        let fp = sddmm_k_stationary(&q, &k, &index, 0.2);
        let qi = QuantizedMatrix::quantize(&q);
        let ki = QuantizedMatrix::quantize(&k);
        let i8s = sddmm_k_stationary_int8(&qi, &ki, &index, 0.2);
        let diff = fp.to_dense().max_abs_diff(&i8s.to_dense());
        let norm = fp.to_dense().frobenius_norm().max(1e-6);
        assert!(diff / norm < 0.08, "int8 relative error {}", diff / norm);
    }

    #[test]
    fn spmm_empty_rows_produce_zero_output() {
        let v = Initializer::Normal { std: 1.0 }.sample(8, 4, 60);
        // Only row 3 attends (to columns 1 and 2).
        let mut mask = AttentionMask::empty(8);
        mask.keep(3, 1);
        mask.keep(3, 2);
        let index = CscMatrix::from_mask(&mask);
        let scores = SparseScores {
            index: index.clone(),
            values: vec![0.5, 0.5],
        };
        let out = spmm_output_stationary(&scores, &v);
        for r in 0..8 {
            if r != 3 {
                assert!(out.row(r).iter().all(|&x| x == 0.0), "row {r} not zero");
            }
        }
        assert!(out.row(3).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn forced_multithread_dataflow_is_identical() {
        let (q, k, v) = random_qkv(33, 8, 90);
        let map = q.matmul_nt(&k).softmax_rows();
        let mask = prune_to_sparsity(&map, 0.7);
        let index = CscMatrix::from_mask(&mask);
        let sequential = attention_head(&q, &k, &v, &index, 0.3);
        kernels::set_num_threads(4);
        let parallel = attention_head(&q, &k, &v, &index, 0.3);
        kernels::set_num_threads(0);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn ae_round_trip_identity_weights_lossless() {
        let x = Initializer::Normal { std: 1.0 }.sample(10, 4 * 8, 70);
        let enc = Matrix::identity(4);
        let dec = Matrix::identity(4);
        let (compressed, recovered) = auto_encoder_round_trip(&x, &enc, &dec, 8);
        assert_eq!(compressed.shape(), (10, 32));
        assert!(recovered.max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn ae_compression_halves_footprint() {
        let x = Initializer::Normal { std: 1.0 }.sample(10, 4 * 8, 80);
        let enc = Initializer::Normal { std: 0.5 }.sample(4, 2, 81);
        let dec = Initializer::Normal { std: 0.5 }.sample(2, 4, 82);
        let (compressed, recovered) = auto_encoder_round_trip(&x, &enc, &dec, 8);
        assert_eq!(compressed.len(), x.len() / 2);
        assert_eq!(recovered.shape(), x.shape());
    }
}
