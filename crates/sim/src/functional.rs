//! Functional (value-level) model of the accelerator's dataflows.
//!
//! The cycle model in [`crate::ViTCoDAccelerator`] answers *how long*;
//! this module answers *what is computed*. The CSC kernel
//! implementations — the K-stationary SDDMM, the sparse softmax and the
//! output-stationary SpMM, executed exactly as the engines sequence them
//! (column by column over the CSC index) — live in the workspace's
//! sparse kernel layer, [`vitcod_tensor::sparse`], and are re-exported
//! here unchanged; the tests below check them for agreement with the
//! dense masked-attention reference on masks the split-and-conquer
//! algorithm actually produces. This is the reproduction's analogue of
//! the paper's "verified it against the RTL implementation to ensure its
//! correctness". An 8-bit variant runs the same dataflow on quantized
//! operands with i32 accumulation, as the MAC lines do.

pub use vitcod_tensor::sparse::{
    attention_head, attention_head_int8, sddmm_k_stationary, sddmm_k_stationary_int8,
    spmm_output_stationary, SparseScores,
};

use vitcod_tensor::{kernels, Matrix};

/// Functional auto-encoder round trip: mixes `x`'s heads down through
/// `enc` (`h × h_c`) and back up through `dec` (`h_c × h`), as the
/// encoder engine does before DRAM write-back and the decoder engine on
/// reload. Returns `(compressed, recovered)`.
///
/// # Panics
///
/// Panics if `x.cols()` is not `enc.rows() · dk`.
pub fn auto_encoder_round_trip(
    x: &Matrix,
    enc: &Matrix,
    dec: &Matrix,
    dk: usize,
) -> (Matrix, Matrix) {
    let (h, hc) = enc.shape();
    assert_eq!(x.cols(), h * dk, "input cols must be heads * dk");
    assert_eq!(dec.shape(), (hc, h), "decoder must invert encoder shape");
    let compressed = kernels::head_mix(x, enc, dk);
    let recovered = kernels::head_mix(&compressed, dec, dk);
    (compressed, recovered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitcod_core::{prune_to_sparsity, AttentionMask, CscMatrix};
    use vitcod_tensor::{Initializer, QuantizedMatrix};

    fn random_qkv(n: usize, dk: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        (
            Initializer::Normal { std: 1.0 }.sample(n, dk, seed),
            Initializer::Normal { std: 1.0 }.sample(n, dk, seed + 1),
            Initializer::Normal { std: 1.0 }.sample(n, dk, seed + 2),
        )
    }

    fn diag_global_mask(n: usize) -> AttentionMask {
        let mut m = AttentionMask::empty(n);
        for q in 0..n {
            m.keep(q, q);
            m.keep(q, 0);
            m.keep(q, (q + 1) % n);
        }
        m
    }

    /// Dense reference: masked softmax attention computed with plain
    /// matrix ops.
    fn dense_reference(
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
        mask: &AttentionMask,
        scale: f32,
    ) -> Matrix {
        let mut scores = q.matmul_nt(k).scale(scale);
        for r in 0..scores.rows() {
            for c in 0..scores.cols() {
                if !mask.is_kept(r, c) {
                    scores.set(r, c, f32::NEG_INFINITY);
                }
            }
        }
        scores.softmax_rows().matmul(v)
    }

    #[test]
    fn sddmm_matches_dense_scores() {
        let (q, k, _) = random_qkv(24, 16, 10);
        let mask = diag_global_mask(24);
        let index = CscMatrix::from_mask(&mask);
        let sparse = sddmm_k_stationary(&q, &k, &index, 0.25);
        let dense = q.matmul_nt(&k).scale(0.25);
        let sd = sparse.to_dense();
        for (qq, kk) in mask.iter_kept() {
            assert!(
                (sd.get(qq, kk) - dense.get(qq, kk)).abs() < 1e-5,
                "score ({qq},{kk}) differs"
            );
        }
        assert_eq!(sparse.nnz(), mask.nnz());
    }

    #[test]
    fn full_dataflow_matches_dense_masked_attention() {
        let (q, k, v) = random_qkv(32, 8, 20);
        let mask = diag_global_mask(32);
        let index = CscMatrix::from_mask(&mask);
        let dataflow = attention_head(&q, &k, &v, &index, 0.35);
        let reference = dense_reference(&q, &k, &v, &mask, 0.35);
        assert!(
            dataflow.max_abs_diff(&reference) < 1e-4,
            "dataflow diverges from dense reference by {}",
            dataflow.max_abs_diff(&reference)
        );
    }

    #[test]
    fn dataflow_matches_reference_on_pruned_real_maps() {
        // End-to-end with a split-and-conquer produced mask.
        let (q, k, v) = random_qkv(48, 16, 30);
        let map = q.matmul_nt(&k).softmax_rows();
        let mask = prune_to_sparsity(&map, 0.85);
        let index = CscMatrix::from_mask(&mask);
        let dataflow = attention_head(&q, &k, &v, &index, 0.25);
        let reference = dense_reference(&q, &k, &v, &mask, 0.25);
        assert!(dataflow.max_abs_diff(&reference) < 1e-4);
    }

    #[test]
    fn int8_dataflow_close_to_fp32() {
        let (q, k, _) = random_qkv(24, 32, 50);
        let mask = diag_global_mask(24);
        let index = CscMatrix::from_mask(&mask);
        let fp = sddmm_k_stationary(&q, &k, &index, 0.2);
        let qi = QuantizedMatrix::quantize(&q);
        let ki = QuantizedMatrix::quantize(&k);
        let i8s = sddmm_k_stationary_int8(&qi, &ki, &index, 0.2);
        let diff = fp.to_dense().max_abs_diff(&i8s.to_dense());
        let norm = fp.to_dense().frobenius_norm().max(1e-6);
        assert!(diff / norm < 0.08, "int8 relative error {}", diff / norm);
    }

    #[test]
    fn forced_multithread_dataflow_is_identical() {
        let (q, k, v) = random_qkv(33, 8, 90);
        let map = q.matmul_nt(&k).softmax_rows();
        let mask = prune_to_sparsity(&map, 0.7);
        let index = CscMatrix::from_mask(&mask);
        let sequential = attention_head(&q, &k, &v, &index, 0.3);
        kernels::set_num_threads(4);
        let parallel = attention_head(&q, &k, &v, &index, 0.3);
        kernels::set_num_threads(0);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn ae_round_trip_identity_weights_lossless() {
        let x = Initializer::Normal { std: 1.0 }.sample(10, 4 * 8, 70);
        let enc = Matrix::identity(4);
        let dec = Matrix::identity(4);
        let (compressed, recovered) = auto_encoder_round_trip(&x, &enc, &dec, 8);
        assert_eq!(compressed.shape(), (10, 32));
        assert!(recovered.max_abs_diff(&x) < 1e-6);
    }

    #[test]
    fn ae_compression_halves_footprint() {
        let x = Initializer::Normal { std: 1.0 }.sample(10, 4 * 8, 80);
        let enc = Initializer::Normal { std: 0.5 }.sample(4, 2, 81);
        let dec = Initializer::Normal { std: 0.5 }.sample(2, 4, 82);
        let (compressed, recovered) = auto_encoder_round_trip(&x, &enc, &dec, 8);
        assert_eq!(compressed.len(), x.len() / 2);
        assert_eq!(recovered.shape(), x.shape());
    }
}
