//! Roofline model (paper Fig. 3).

use crate::config::AcceleratorConfig;
use crate::report::SimReport;

/// A roofline defined by a compute roof (GOPS, counting one MAC as one
/// op, matching the paper's 256 GOPS axis) and a bandwidth roof (GB/s).
///
/// # Example
///
/// ```
/// use vitcod_sim::{AcceleratorConfig, Roofline};
///
/// let r = Roofline::from_config(&AcceleratorConfig::vitcod_paper());
/// assert_eq!(r.peak_gops(), 256.0);
/// // The ridge point where bandwidth stops limiting performance:
/// assert!((r.ridge_intensity() - 256.0 / 76.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    peak_gops: f64,
    bandwidth_gbps: f64,
}

impl Roofline {
    /// Builds a roofline from explicit roofs.
    ///
    /// # Panics
    ///
    /// Panics if either roof is non-positive.
    pub fn new(peak_gops: f64, bandwidth_gbps: f64) -> Self {
        assert!(
            peak_gops > 0.0 && bandwidth_gbps > 0.0,
            "roofs must be positive"
        );
        Self {
            peak_gops,
            bandwidth_gbps,
        }
    }

    /// The ViTCoD accelerator's roofline.
    pub fn from_config(cfg: &AcceleratorConfig) -> Self {
        Self::new(cfg.peak_gops(), cfg.dram_bw_bytes_per_sec / 1e9)
    }

    /// Compute roof in GOPS.
    pub fn peak_gops(&self) -> f64 {
        self.peak_gops
    }

    /// Bandwidth roof in GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bandwidth_gbps
    }

    /// Attainable GOPS at arithmetic intensity `ops_per_byte`.
    pub fn attainable_gops(&self, ops_per_byte: f64) -> f64 {
        (self.bandwidth_gbps * ops_per_byte).min(self.peak_gops)
    }

    /// Intensity at which the workload stops being bandwidth bound.
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_gops / self.bandwidth_gbps
    }

    /// Whether a workload of this intensity is bandwidth bound.
    pub fn is_bandwidth_bound(&self, ops_per_byte: f64) -> bool {
        ops_per_byte < self.ridge_intensity()
    }

    /// Places a simulated workload on the roofline.
    pub fn place(&self, name: &str, report: &SimReport) -> RooflinePoint {
        RooflinePoint {
            name: name.to_string(),
            ops_per_byte: report.arithmetic_intensity(),
            achieved_gops: report.effective_gops(),
            attainable_gops: self.attainable_gops(report.arithmetic_intensity()),
        }
    }
}

/// One workload plotted on the roofline.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Workload label (e.g. "Dense ViTs").
    pub name: String,
    /// Arithmetic intensity at DRAM, ops per byte.
    pub ops_per_byte: f64,
    /// Achieved performance in GOPS.
    pub achieved_gops: f64,
    /// Roofline-attainable performance at this intensity.
    pub attainable_gops: f64,
}

impl RooflinePoint {
    /// Fraction of the attainable roof actually achieved.
    pub fn roof_fraction(&self) -> f64 {
        if self.attainable_gops == 0.0 {
            return 0.0;
        }
        (self.achieved_gops / self.attainable_gops).min(1.0)
    }
}

#[cfg(test)]
// Exact float equality below asserts deterministic replay of seeded runs.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn attainable_is_min_of_roofs() {
        let r = Roofline::new(256.0, 76.8);
        // Below the ridge: bandwidth-limited.
        assert!((r.attainable_gops(1.0) - 76.8).abs() < 1e-9);
        // Above the ridge: compute-limited.
        assert_eq!(r.attainable_gops(100.0), 256.0);
    }

    #[test]
    fn ridge_separates_regimes() {
        let r = Roofline::new(256.0, 76.8);
        let ridge = r.ridge_intensity();
        assert!(r.is_bandwidth_bound(ridge * 0.9));
        assert!(!r.is_bandwidth_bound(ridge * 1.1));
    }

    #[test]
    fn place_reads_report() {
        let r = Roofline::new(256.0, 76.8);
        let report = SimReport {
            latency_s: 1.0,
            macs: 76_800_000_000,
            traffic: crate::memory::TrafficStats {
                dram_read_bytes: 76_800_000_000,
                ..Default::default()
            },
            ..Default::default()
        };
        let p = r.place("unit", &report);
        assert!((p.ops_per_byte - 1.0).abs() < 1e-9);
        assert!((p.achieved_gops - 76.8).abs() < 1e-9);
        assert!((p.roof_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_roof_rejected() {
        Roofline::new(0.0, 1.0);
    }
}
