//! SRAM residency checking.
//!
//! The paper fixes a 320 KB partition (Sec. VI-A); whether a layer's
//! working set actually *fits* that partition decides between full
//! operand reuse and the refetch traffic the cycle model charges. This
//! module computes per-layer buffer demands for a compiled program and
//! reports occupancies and spills — the compiler-side feasibility check
//! behind the resource-allocation stage of Sec. V-B.

use vitcod_core::AcceleratorProgram;

use crate::config::AcceleratorConfig;

/// Byte demand of one attention layer against the SRAM partition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferDemand {
    /// Q operand bytes (all heads; compressed when the AE is active).
    pub q_bytes: usize,
    /// K operand bytes (compressed when the AE is active).
    pub k_bytes: usize,
    /// V operand bytes.
    pub v_bytes: usize,
    /// Sparse attention-score bytes held between SDDMM and SpMM.
    pub s_bytes: usize,
    /// Output accumulator bytes.
    pub out_bytes: usize,
    /// CSC index bytes.
    pub index_bytes: usize,
}

impl BufferDemand {
    /// Total activation-class bytes (Q + K + V + S), competing for the
    /// activation global buffer.
    pub fn act_bytes(&self) -> usize {
        self.q_bytes + self.k_bytes + self.v_bytes + self.s_bytes
    }
}

/// Fit report of one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferReport {
    /// Layer index.
    pub layer: usize,
    /// Raw demand.
    pub demand: BufferDemand,
    /// Activation-buffer occupancy (demand / capacity); > 1 spills.
    pub act_occupancy: f64,
    /// Index-buffer occupancy.
    pub index_occupancy: f64,
    /// Output-buffer occupancy.
    pub output_occupancy: f64,
    /// Buffers whose demand exceeds capacity.
    pub spills: Vec<&'static str>,
}

impl BufferReport {
    /// Whether the whole layer working set is resident.
    pub fn fits(&self) -> bool {
        self.spills.is_empty()
    }
}

/// Checks every layer of `program` against `cfg`'s SRAM partition.
///
/// # Example
///
/// ```
/// use vitcod_core::{compile_model, AutoEncoderConfig, SplitConquer, SplitConquerConfig};
/// use vitcod_model::{AttentionStats, ViTConfig};
/// use vitcod_sim::{check_buffers, AcceleratorConfig};
///
/// let m = ViTConfig::deit_tiny();
/// let stats = AttentionStats::for_model(&m, 0);
/// let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
/// let p = compile_model(&m, &sc.apply(&stats.maps),
///                       Some(AutoEncoderConfig::half(m.heads)));
/// let reports = check_buffers(&AcceleratorConfig::vitcod_paper(), &p);
/// assert_eq!(reports.len(), 12);
/// ```
pub fn check_buffers(cfg: &AcceleratorConfig, program: &AcceleratorProgram) -> Vec<BufferReport> {
    let bytes = cfg.bytes_per_elem;
    let n = program.tokens;
    let d = program.heads * program.head_dim;
    let qk_ratio = program.auto_encoder.map(|ae| ae.ratio()).unwrap_or(1.0);
    program
        .layers
        .iter()
        .map(|layer| {
            let nnz: usize = layer
                .heads
                .iter()
                .map(|h| h.denser_nnz + h.sparser_nnz)
                .sum();
            // Indexes stream per head (the engine walks one head's CSC
            // at a time, double-buffered), so the residency unit is the
            // largest single head's index.
            let index_entries: usize = layer
                .heads
                .iter()
                .map(|h| h.sparser_nnz + n + 1)
                .max()
                .unwrap_or(0);
            let demand = BufferDemand {
                q_bytes: ((n * d * bytes) as f64 * qk_ratio).round() as usize,
                k_bytes: ((n * d * bytes) as f64 * qk_ratio).round() as usize,
                v_bytes: n * d * bytes,
                // One byte per kept score plus a 2-byte row tag.
                s_bytes: nnz * (bytes + 2),
                out_bytes: n * d * bytes,
                index_bytes: index_entries * 2,
            };
            let act_occupancy = demand.act_bytes() as f64 / cfg.sram.act_buffer_bytes as f64;
            let index_occupancy = demand.index_bytes as f64 / cfg.sram.index_buffer_bytes as f64;
            let output_occupancy = demand.out_bytes as f64 / cfg.sram.output_buffer_bytes as f64;
            let mut spills = Vec::new();
            if act_occupancy > 1.0 {
                spills.push("activation");
            }
            if index_occupancy > 1.0 {
                spills.push("index");
            }
            if output_occupancy > 1.0 {
                spills.push("output");
            }
            BufferReport {
                layer: layer.layer,
                demand,
                act_occupancy,
                index_occupancy,
                output_occupancy,
                spills,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitcod_core::{compile_model, AutoEncoderConfig, SplitConquer, SplitConquerConfig};
    use vitcod_model::{AttentionStats, ViTConfig};

    fn program(model: &ViTConfig, sparsity: f64, ae: bool) -> AcceleratorProgram {
        let stats = AttentionStats::for_model(model, 12);
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(sparsity));
        let ae_cfg = ae.then(|| AutoEncoderConfig::half(model.heads));
        compile_model(model, &sc.apply(&stats.maps), ae_cfg)
    }

    #[test]
    fn deit_tiny_with_ae_fits_at_90pct() {
        let m = ViTConfig::deit_tiny();
        let reports = check_buffers(&AcceleratorConfig::vitcod_paper(), &program(&m, 0.9, true));
        assert!(
            reports.iter().all(|r| r.fits()),
            "spills: {:?}",
            reports
                .iter()
                .flat_map(|r| r.spills.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn deit_base_without_ae_spills_activation_buffer() {
        // 197 x 768 Q+K+V at 1 B/elem = 454 KB > 128 KB: this is exactly
        // why the cycle model charges Q refetch traffic without the AE.
        let m = ViTConfig::deit_base();
        let reports = check_buffers(&AcceleratorConfig::vitcod_paper(), &program(&m, 0.9, false));
        assert!(reports.iter().all(|r| r.spills.contains(&"activation")));
    }

    #[test]
    fn ae_halves_qk_demand() {
        let m = ViTConfig::deit_base();
        let with = check_buffers(&AcceleratorConfig::vitcod_paper(), &program(&m, 0.9, true));
        let without = check_buffers(&AcceleratorConfig::vitcod_paper(), &program(&m, 0.9, false));
        assert_eq!(with[0].demand.q_bytes * 2, without[0].demand.q_bytes);
        assert!(with[0].act_occupancy < without[0].act_occupancy);
    }

    #[test]
    fn index_buffer_fits_only_at_high_sparsity() {
        // Matches the ablation_formats finding: at 60% the residue's CSC
        // exceeds 20 KB; at 95% it fits comfortably.
        let m = ViTConfig::deit_base();
        let dense_ish = check_buffers(&AcceleratorConfig::vitcod_paper(), &program(&m, 0.6, true));
        let sparse = check_buffers(&AcceleratorConfig::vitcod_paper(), &program(&m, 0.95, true));
        assert!(dense_ish.iter().any(|r| r.index_occupancy > 1.0));
        assert!(
            sparse
                .iter()
                .all(|r| r.index_occupancy < dense_ish[0].index_occupancy),
            "index demand must shrink with sparsity"
        );
    }

    #[test]
    fn occupancies_are_positive_and_demand_consistent() {
        let m = ViTConfig::deit_small();
        for r in check_buffers(&AcceleratorConfig::vitcod_paper(), &program(&m, 0.8, true)) {
            assert!(r.act_occupancy > 0.0);
            assert_eq!(
                r.demand.act_bytes(),
                r.demand.q_bytes + r.demand.k_bytes + r.demand.v_bytes + r.demand.s_bytes
            );
        }
    }
}
