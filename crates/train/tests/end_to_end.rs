//! Acceptance test of the sparse-finetune → serve handoff: weights
//! finetuned on the nnz-scaled sparse path flow unchanged into a
//! [`CompiledVit`], survive the on-disk artifact round trip byte for
//! byte, and serve bit-exactly.

use vitcod_engine::{CompiledVit, Engine};
use vitcod_model::{SyntheticTask, SyntheticTaskConfig, ViTConfig};
use vitcod_train::{SparseFinetuneConfig, SparseFinetuner};

#[test]
fn sparse_finetuned_weights_serve_bit_exact_through_save_load() {
    let task = SyntheticTask::generate(SyntheticTaskConfig {
        train_samples: 40,
        test_samples: 16,
        ..Default::default()
    });
    let cfg = SparseFinetuneConfig::quick(ViTConfig::deit_tiny().reduced_for_training());
    let report = SparseFinetuner::new(cfg).run(&task);
    assert!(report.sparse_heads > 0, "no heads froze sparse");

    // Serve the compiled artifact directly.
    let engine = Engine::builder(report.compiled.clone()).build();
    let direct = engine.infer_batch(&task.test);

    // Round-trip through the on-disk text artifact.
    let text = report.compiled.save();
    let loaded = CompiledVit::load(&text).expect("artifact parses");
    assert_eq!(
        loaded.num_sparse_heads(),
        report.compiled.num_sparse_heads(),
        "sparse plans lost in the round trip"
    );
    let engine2 = Engine::builder(loaded).build();
    let reloaded = engine2.infer_batch(&task.test);

    assert_eq!(direct.len(), reloaded.len());
    for (i, (a, b)) in direct.iter().zip(&reloaded).enumerate() {
        assert_eq!(a.class, b.class, "sample {i} class changed");
        assert_eq!(a.logits, b.logits, "sample {i} logits not bit-exact");
    }

    // The engine agrees with the training-time frozen-sparse forward —
    // the finetuned weights flow unchanged into serving.
    let trainer = &report.trainer;
    for (i, sample) in task.test.iter().take(4).enumerate() {
        let mut tape = vitcod_autograd::Tape::new();
        let out = trainer
            .model()
            .forward(&mut tape, trainer.store(), &sample.tokens);
        let tape_logits = tape.value(out.logits);
        for (c, &direct_logit) in direct[i].logits.iter().enumerate() {
            assert!(
                (tape_logits.get(0, c) - direct_logit).abs() < 1e-4,
                "sample {i} logit {c}: tape {} vs engine {direct_logit}",
                tape_logits.get(0, c)
            );
        }
    }

    // Finetuning under the frozen masks recovered usable accuracy.
    assert!(
        report.sparse_accuracy > 0.25,
        "sparse accuracy {} at chance",
        report.sparse_accuracy
    );
}
