//! Determinism contract of the batched sparse training step: one full
//! step's loss and **every** gradient are bit-identical across
//! `Backend::Scalar` / `Backend::Blocked` and across worker counts
//! {1, 4}, because every kernel (dense and sparse, forward and backward)
//! accumulates each output element along one fixed reduction chain.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_autograd::{ParamStore, Tape};
use vitcod_core::prune_to_sparsity;
use vitcod_model::{
    AutoEncoderSpec, SparsityPlan, SyntheticTask, SyntheticTaskConfig, ViTConfig, VisionTransformer,
};
use vitcod_tensor::kernels::{self, Backend};
use vitcod_tensor::Matrix;

/// Builds a frozen-sparse model (AE installed, 90 % masks compiled to
/// CSC) plus a small minibatch.
fn sparse_setup() -> (VisionTransformer, ParamStore, SyntheticTask) {
    let cfg = ViTConfig::deit_tiny().reduced_for_training();
    let task = SyntheticTask::generate(SyntheticTaskConfig {
        train_samples: 8,
        test_samples: 4,
        ..Default::default()
    });
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut vit = VisionTransformer::new(
        &cfg,
        task.config.in_dim,
        task.config.num_classes,
        &mut store,
        &mut rng,
    );
    vit.insert_auto_encoder(AutoEncoderSpec::half(cfg.heads), &mut store, &mut rng);
    // Deterministic diagonal-heavy maps -> 90 % masks -> frozen CSC.
    let maps = vit.averaged_attention_maps(&store, &task.train);
    let plan: SparsityPlan = maps
        .iter()
        .map(|layer| {
            layer
                .iter()
                .map(|m| Some(prune_to_sparsity(m, 0.9).to_matrix()))
                .collect()
        })
        .collect();
    vit.set_sparsity_plan(plan);
    vit.freeze_sparse_attention();
    (vit, store, task)
}

/// Runs one full batched training step (forward, losses, backward, grad
/// flush) and returns `(loss, every gradient in id order)`.
fn one_step(
    vit: &VisionTransformer,
    store: &ParamStore,
    task: &SyntheticTask,
) -> (f32, Vec<Matrix>) {
    let mut store = store.clone();
    store.zero_grads();
    let batch = &task.train[..8];
    let tokens: Vec<&Matrix> = batch.iter().map(|s| &s.tokens).collect();
    let targets: Vec<usize> = batch.iter().map(|s| s.label).collect();
    let mut tape = Tape::new();
    let out = vit.forward_batch(&mut tape, &store, &tokens);
    let ce = tape.cross_entropy(out.logits, &targets);
    let loss = match out.recon_loss {
        Some(r) => tape.weighted_sum(ce, r, 1.0, 1.0),
        None => ce,
    };
    let loss_value = tape.scalar(loss);
    tape.backward(loss);
    tape.write_grads(&mut store);
    let grads = store.ids().map(|id| store.grad(id).clone()).collect();
    (loss_value, grads)
}

fn assert_bit_identical(a: &(f32, Vec<Matrix>), b: &(f32, Vec<Matrix>), label: &str) {
    assert_eq!(a.0.to_bits(), b.0.to_bits(), "{label}: loss bits differ");
    assert_eq!(a.1.len(), b.1.len());
    for (i, (ga, gb)) in a.1.iter().zip(&b.1).enumerate() {
        assert_eq!(ga, gb, "{label}: gradient {i} differs");
    }
}

#[test]
fn training_step_bit_identical_across_backends_and_workers() {
    let (vit, store, task) = sparse_setup();
    let reference = kernels::with_backend_override(Backend::Scalar, || {
        kernels::with_thread_budget(1, || one_step(&vit, &store, &task))
    });
    for backend in [Backend::Scalar, Backend::Blocked] {
        for workers in [1usize, 4] {
            let got = kernels::with_backend_override(backend, || {
                kernels::with_thread_budget(workers, || one_step(&vit, &store, &task))
            });
            assert_bit_identical(
                &reference,
                &got,
                &format!("backend {backend:?}, {workers} workers"),
            );
        }
    }
}

#[test]
fn batched_step_matches_accumulated_per_sample_steps() {
    // The batched tape must compute the same mean loss and mean
    // gradients as per-sample tapes accumulated and rescaled (up to
    // floating-point reassociation).
    let (vit, store, task) = sparse_setup();
    let batch = &task.train[..8];
    let (batched_loss, batched_grads) = one_step(&vit, &store, &task);

    let mut per_sample = store.clone();
    per_sample.zero_grads();
    let mut loss_sum = 0.0f32;
    for s in batch {
        let mut tape = Tape::new();
        let out = vit.forward(&mut tape, &per_sample, &s.tokens);
        let ce = tape.cross_entropy(out.logits, &[s.label]);
        let loss = match out.recon_loss {
            Some(r) => tape.weighted_sum(ce, r, 1.0, 1.0),
            None => ce,
        };
        loss_sum += tape.scalar(loss);
        tape.backward(loss);
        tape.write_grads(&mut per_sample);
    }
    per_sample.scale_grads(1.0 / batch.len() as f32);
    let mean_loss = loss_sum / batch.len() as f32;
    assert!(
        (batched_loss - mean_loss).abs() < 1e-4,
        "batched loss {batched_loss} vs per-sample mean {mean_loss}"
    );
    for (id, bg) in per_sample.ids().zip(&batched_grads) {
        let diff = per_sample.grad(id).max_abs_diff(bg);
        assert!(
            diff < 1e-4,
            "grad {} differs by {diff}",
            per_sample.name(id)
        );
    }
}
