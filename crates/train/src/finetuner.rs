//! The [`SparseFinetuner`]: dense warmup → mask freeze → sparse finetune
//! → [`CompiledVit`] handoff.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_autograd::ParamStore;
use vitcod_core::{SplitConquer, SplitConquerConfig};
use vitcod_engine::CompiledVit;
use vitcod_model::{
    AutoEncoderSpec, SyntheticTask, TrainConfig, Trainer, Trajectory, ViTConfig, VisionTransformer,
};

/// Configuration of a full sparse-finetune run.
#[derive(Debug, Clone)]
pub struct SparseFinetuneConfig {
    /// Model architecture (reduced configs train in seconds).
    pub model: ViTConfig,
    /// Dense warmup schedule (the "pretrained ViT" input of Fig. 10).
    pub warmup: TrainConfig,
    /// Sparse finetuning schedule, run after the mask freeze.
    pub finetune: TrainConfig,
    /// Split-and-conquer settings producing the per-head masks.
    pub split_conquer: SplitConquerConfig,
    /// Auto-encoder modules inserted before the warmup; `None` skips
    /// them.
    pub auto_encoder: Option<AutoEncoderSpec>,
    /// Weight-init / data-order seed.
    pub seed: u64,
}

impl SparseFinetuneConfig {
    /// The paper's recipe at the model's reported sparsity: warmup, AE at
    /// 50 % head compression, split-and-conquer, sparse finetune.
    pub fn paper_default(model: ViTConfig) -> Self {
        let heads = model.heads;
        let sparsity = model.paper_sparsity;
        Self {
            warmup: TrainConfig {
                epochs: 15,
                ..TrainConfig::default()
            },
            finetune: TrainConfig {
                epochs: 10,
                lr: 1e-3,
                ..TrainConfig::default()
            },
            split_conquer: SplitConquerConfig::with_sparsity(sparsity),
            auto_encoder: Some(AutoEncoderSpec::half(heads)),
            model,
            seed: 0x5EED,
        }
    }

    /// A fast recipe (few epochs, no AE, 90 % sparsity) for tests and
    /// examples.
    pub fn quick(model: ViTConfig) -> Self {
        Self {
            warmup: TrainConfig {
                epochs: 4,
                ..TrainConfig::default()
            },
            finetune: TrainConfig {
                epochs: 3,
                lr: 1e-3,
                ..TrainConfig::default()
            },
            split_conquer: SplitConquerConfig::with_sparsity(0.9),
            auto_encoder: None,
            model,
            seed: 0x5EED,
        }
    }
}

/// Everything a sparse-finetune run produced.
#[derive(Debug)]
pub struct SparseFinetuneReport {
    /// Held-out accuracy of the dense warmed-up model.
    pub dense_accuracy: f32,
    /// Dense warmup trajectory.
    pub warmup_trajectory: Trajectory,
    /// Sparse finetuning trajectory (after the mask freeze).
    pub sparse_trajectory: Trajectory,
    /// Held-out accuracy after sparse finetuning.
    pub sparse_accuracy: f32,
    /// Mean achieved attention sparsity across masked heads.
    pub achieved_sparsity: f64,
    /// Number of heads frozen onto the CSC dataflow.
    pub sparse_heads: usize,
    /// The finetuned weights frozen for serving; hand this to
    /// [`vitcod_engine::Engine::builder`] or save it with
    /// [`CompiledVit::save`].
    pub compiled: CompiledVit,
    /// The finetuned trainer, for further analysis or training.
    pub trainer: Trainer,
}

impl SparseFinetuneReport {
    /// Accuracy drop of the sparse model versus its dense warmup
    /// (the paper claims < 1 % at 90 % sparsity on DeiT).
    pub fn accuracy_drop(&self) -> f32 {
        self.dense_accuracy - self.sparse_accuracy
    }
}

/// Drives the polarize → prune → sparse-finetune → compile loop.
///
/// See the [crate-level documentation](crate) for the full story and an
/// example.
#[derive(Debug, Clone)]
pub struct SparseFinetuner {
    config: SparseFinetuneConfig,
}

impl SparseFinetuner {
    /// Creates a finetuner with `config`.
    pub fn new(config: SparseFinetuneConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SparseFinetuneConfig {
        &self.config
    }

    /// Runs the full loop on `task`: build → warmup → freeze → sparse
    /// finetune → compile.
    pub fn run(&self, task: &SyntheticTask) -> SparseFinetuneReport {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let mut vit = VisionTransformer::new(
            &cfg.model,
            task.config.in_dim,
            task.config.num_classes,
            &mut store,
            &mut rng,
        );
        if let Some(spec) = cfg.auto_encoder {
            let mut rng_ae = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xAE);
            vit.insert_auto_encoder(spec, &mut store, &mut rng_ae);
        }
        let mut trainer = Trainer::new(vit, store);

        let warmup_trajectory = trainer.train(task, &cfg.warmup);
        let dense_accuracy = trainer.evaluate(&task.test);

        let (sparse_trajectory, achieved_sparsity, sparse_heads) =
            self.finetune_sparse(&mut trainer, task);
        let sparse_accuracy = trainer.evaluate(&task.test);

        let compiled = CompiledVit::from_parts(trainer.model(), trainer.store());
        SparseFinetuneReport {
            dense_accuracy,
            warmup_trajectory,
            sparse_trajectory,
            sparse_accuracy,
            achieved_sparsity,
            sparse_heads,
            compiled,
            trainer,
        }
    }

    /// The freeze-and-finetune half of the loop on an already-warm
    /// trainer: split-and-conquer on its averaged attention maps,
    /// install and freeze the masks, then finetune on the nnz-scaled
    /// sparse path. Returns the finetune trajectory, the achieved mean
    /// sparsity, and the number of heads frozen sparse.
    pub fn finetune_sparse(
        &self,
        trainer: &mut Trainer,
        task: &SyntheticTask,
    ) -> (Trajectory, f64, usize) {
        let maps = trainer.averaged_attention_maps(task);
        let sc = SplitConquer::new(self.config.split_conquer);
        let polarized = sc.apply(&maps);
        let achieved = SplitConquer::mean_sparsity(&polarized);
        let plan = SplitConquer::to_sparsity_plan(&polarized);
        trainer.model_mut().set_sparsity_plan(plan);
        let sparse_heads = trainer.model_mut().freeze_sparse_attention();
        let trajectory = trainer.train(task, &self.config.finetune);
        (trajectory, achieved, sparse_heads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitcod_model::SyntheticTaskConfig;

    #[test]
    fn quick_run_produces_sparse_compiled_model() {
        let task = SyntheticTask::generate(SyntheticTaskConfig {
            train_samples: 40,
            test_samples: 24,
            ..Default::default()
        });
        let cfg = SparseFinetuneConfig::quick(ViTConfig::deit_tiny().reduced_for_training());
        let report = SparseFinetuner::new(cfg).run(&task);
        assert!(
            (report.achieved_sparsity - 0.9).abs() < 0.05,
            "sparsity {}",
            report.achieved_sparsity
        );
        assert!(report.sparse_heads > 0);
        assert!(report.trainer.model().has_frozen_sparse());
        assert_eq!(report.compiled.num_sparse_heads(), report.sparse_heads);
        assert!(report.compiled.mean_attention_sparsity() > 0.5);
        assert_eq!(report.sparse_trajectory.epochs.len(), 3);
    }
}
