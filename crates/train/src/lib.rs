//! The sparse-aware training subsystem: the paper's polarize → prune →
//! sparse-finetune → compile loop as one composable component.
//!
//! ViTCoD's algorithm is not just a fixed mask at inference time — the
//! accuracy that makes the co-designed accelerator viable comes from
//! *finetuning the model under the polarized sparse attention patterns*
//! (paper Fig. 10). This crate owns that loop end to end:
//!
//! 1. **Dense warmup** — the "pretrained ViT" input, trained with the
//!    batched tape ([`vitcod_model::Trainer`] runs every minibatch as a
//!    single stacked forward/backward, amortising weight imports and
//!    per-op overhead across the batch);
//! 2. **Mask freeze** — split-and-conquer
//!    ([`vitcod_core::SplitConquer`]) on the warmed-up model's averaged
//!    attention maps produces per-head masks, which
//!    [`VisionTransformer::freeze_sparse_attention`] compiles to CSC
//!    indexes once;
//! 3. **Sparse finetune** — masked heads now run the accelerator's
//!    SDDMM → sparse-softmax → SpMM dataflow in the forward *and* the
//!    backward pass (`vitcod_tensor::sparse`'s nnz-scaled backward
//!    kernels), so a finetune step's attention cost follows the mask
//!    density instead of `n²`;
//! 4. **Compile** — the finetuned weights freeze into a
//!    [`vitcod_engine::CompiledVit`] ready for the serving engine and
//!    registry, bit-exact through the on-disk artifact round trip.
//!
//! Every step keeps the workspace's determinism contract: losses and
//! gradients are bit-identical across [`vitcod_tensor::Backend`]s and
//! worker counts, because all kernels preserve each output element's
//! reduction order.
//!
//! # Example
//!
//! ```no_run
//! use vitcod_model::{SyntheticTask, SyntheticTaskConfig, ViTConfig};
//! use vitcod_train::{SparseFinetuneConfig, SparseFinetuner};
//!
//! let task = SyntheticTask::generate(SyntheticTaskConfig::default());
//! let cfg = SparseFinetuneConfig::quick(ViTConfig::deit_tiny().reduced_for_training());
//! let report = SparseFinetuner::new(cfg).run(&task);
//! assert!(report.achieved_sparsity > 0.5);
//! let engine = vitcod_engine::Engine::builder(report.compiled.clone()).build();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod finetuner;

pub use finetuner::{SparseFinetuneConfig, SparseFinetuneReport, SparseFinetuner};

// Re-exported so downstream callers of `vitcod::train` can drive the
// loop without importing three more crates.
pub use vitcod_core::SplitConquerConfig;
pub use vitcod_model::{TrainConfig, Trainer, Trajectory, VisionTransformer};
