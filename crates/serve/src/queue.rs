//! A bounded multi-producer queue with blocking backpressure.
//!
//! This is the serving layer's front door: producers ([`crate::Client`]
//! handles) push requests, the batcher thread pops them with a deadline.
//! The queue is **bounded** — when it is full, [`BoundedQueue::push`]
//! blocks the producer instead of dropping the request, which is what
//! turns overload into backpressure rather than data loss. Built on
//! `Mutex` + two `Condvar`s; no lock is held while waiting.
//!
//! Lock poisoning is *recovered*, not propagated: every mutation the
//! queue performs under the lock is a single `VecDeque` call, so a
//! producer that panics mid-push cannot leave the queue half-updated —
//! the poison flag carries no information here, and propagating it
//! would let one panicking producer take down every other client.
//!
//! The queue is public because it is the workspace's general
//! backpressure primitive: the HTTP transport reuses it to hand
//! accepted connections to its handler pool.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

/// Outcome of a non-blocking push.
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue is closed; the item is handed back.
    Closed(T),
}

/// Outcome of a deadline-bounded pop.
#[derive(Debug)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The deadline passed with the queue still empty.
    TimedOut,
    /// The queue is closed and fully drained.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded MPSC queue; see the [module docs](self).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueues `item`, **blocking while the queue is full** (the
    /// backpressure path). Returns the item back if the queue closed
    /// before space opened up.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if inner.closed {
                return Err(item);
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self
                .not_full
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Enqueues without blocking; hands the item back when full or
    /// closed.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed {
            return Err(TryPushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        inner.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues one item, blocking until one arrives, `deadline` passes
    /// (`None` waits indefinitely), or the queue is closed **and
    /// drained** — close never discards queued items.
    pub fn pop_until(&self, deadline: Option<Instant>) -> Pop<T> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Pop::Item(item);
            }
            if inner.closed {
                return Pop::Closed;
            }
            match deadline {
                None => {
                    inner = self
                        .not_empty
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner)
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Pop::TimedOut;
                    }
                    let (guard, timeout) = self
                        .not_empty
                        .wait_timeout(inner, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    inner = guard;
                    if timeout.timed_out() && inner.items.is_empty() && !inner.closed {
                        return Pop::TimedOut;
                    }
                }
            }
        }
    }

    /// Closes the queue: pending pushes fail, pops drain the remaining
    /// items and then report [`Pop::Closed`].
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .items
            .len()
    }

    /// Whether nothing is currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns everything currently queued, without
    /// waiting (the shutdown sweep for items no consumer will take).
    pub fn drain_now(&self) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let items = inner.items.drain(..).collect();
        self.not_full.notify_all();
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn try_push_reports_full_then_succeeds_after_pop() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert!(matches!(q.try_push(3), Err(TryPushError::Full(3))));
        assert!(matches!(q.pop_until(None), Pop::Item(1)));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn push_blocks_on_full_queue_until_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1).unwrap());
        // The producer must be parked on the full queue, not dropping.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!producer.is_finished(), "push must block while full");
        assert!(matches!(q.pop_until(None), Pop::Item(0)));
        producer.join().unwrap();
        assert!(matches!(q.pop_until(None), Pop::Item(1)));
    }

    #[test]
    fn pop_times_out_then_sees_late_item() {
        let q = BoundedQueue::<u32>::new(4);
        let t = Instant::now();
        let deadline = t + Duration::from_millis(10);
        assert!(matches!(q.pop_until(Some(deadline)), Pop::TimedOut));
        assert!(t.elapsed() >= Duration::from_millis(10));
        q.push(7).unwrap();
        assert!(matches!(q.pop_until(Some(deadline)), Pop::Item(7)));
    }

    #[test]
    fn close_drains_before_reporting_closed() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert!(q.push(3).is_err());
        assert!(matches!(q.pop_until(None), Pop::Item(1)));
        assert!(matches!(q.pop_until(None), Pop::Item(2)));
        assert!(matches!(q.pop_until(None), Pop::Closed));
    }

    #[test]
    fn close_wakes_blocked_producer() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1));
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert!(producer.join().unwrap().is_err(), "push must fail on close");
    }
}
