//! Serving statistics: per-model latency percentiles, throughput, and
//! the batch-fill histogram.
//!
//! Workers record one entry per served request (end-to-end latency:
//! enqueue → prediction ready) and one per drained batch (its fill).
//! [`crate::Server::stats`] takes a consistent [`ServerStats`] snapshot
//! at any time; recording is a short critical section on a per-process
//! mutex, far off the per-sample compute path.

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Per-request latency samples kept per model; older samples are
/// discarded ring-buffer style so a long-lived server's snapshot cost
/// stays bounded.
const MAX_LATENCY_SAMPLES: usize = 65_536;

#[derive(Default)]
struct ModelAccum {
    requests: u64,
    batches: u64,
    timed_out: u64,
    latencies_s: Vec<f64>,
    latency_cursor: usize,
    /// `fill_histogram[k]` counts batches that carried `k + 1` requests.
    fill_histogram: Vec<u64>,
}

/// A point-in-time snapshot of one model's serving statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStats {
    /// Model id, as registered in the [`crate::ModelRegistry`].
    pub model: String,
    /// Requests served (tickets resolved).
    pub requests: u64,
    /// Batches drained through the engine.
    pub batches: u64,
    /// Requests expired past their deadline before reaching a batch
    /// slot (resolved as [`crate::RequestError::TimedOut`]); not
    /// counted in `requests` or the latency percentiles.
    pub timed_out: u64,
    /// Median end-to-end request latency (enqueue → prediction), in
    /// seconds; 0 when no request finished yet.
    pub p50_latency_s: f64,
    /// 99th-percentile end-to-end request latency, in seconds.
    pub p99_latency_s: f64,
    /// Mean requests per batch — how full the dynamic batcher keeps the
    /// engine's datapath.
    pub mean_batch_fill: f64,
    /// `batch_fill[k]` counts batches that carried `k + 1` requests.
    pub batch_fill: Vec<u64>,
    /// Served requests per second of server uptime.
    pub requests_per_s: f64,
}

/// A point-in-time snapshot of a server's statistics, one entry per
/// model that has served (or expired) at least one request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Per-model statistics, sorted by model id.
    pub models: Vec<ModelStats>,
}

impl ServerStats {
    /// The entry for `model`, if it has served anything.
    pub fn model(&self, model: &str) -> Option<&ModelStats> {
        self.models.iter().find(|m| m.model == model)
    }

    /// Total requests served across models.
    pub fn total_requests(&self) -> u64 {
        self.models.iter().map(|m| m.requests).sum()
    }
}

pub(crate) struct StatsRecorder {
    start: Instant,
    inner: Mutex<HashMap<String, ModelAccum>>,
}

impl StatsRecorder {
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Records one request expired past its deadline before it reached
    /// a batch slot.
    pub fn record_timeout(&self, model: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.entry(model.to_string()).or_default().timed_out += 1;
    }

    /// Records one drained batch: its fill and every request's
    /// end-to-end latency.
    pub fn record_batch(&self, model: &str, latencies: &[Duration]) {
        let fill = latencies.len();
        if fill == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let accum = inner.entry(model.to_string()).or_default();
        accum.batches += 1;
        accum.requests += fill as u64;
        if accum.fill_histogram.len() < fill {
            accum.fill_histogram.resize(fill, 0);
        }
        if let Some(slot) = accum.fill_histogram.get_mut(fill - 1) {
            *slot += 1;
        }
        for d in latencies {
            let s = d.as_secs_f64();
            if accum.latencies_s.len() < MAX_LATENCY_SAMPLES {
                accum.latencies_s.push(s);
            } else {
                let cursor = accum.latency_cursor;
                if let Some(slot) = accum.latencies_s.get_mut(cursor) {
                    *slot = s;
                }
                accum.latency_cursor = (cursor + 1) % MAX_LATENCY_SAMPLES;
            }
        }
    }

    pub fn snapshot(&self) -> ServerStats {
        let uptime_s = self.start.elapsed().as_secs_f64();
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut models: Vec<ModelStats> = inner
            .iter()
            .map(|(model, a)| {
                let mut sorted = a.latencies_s.clone();
                sorted.sort_by(f64::total_cmp);
                let weighted: u64 = a
                    .fill_histogram
                    .iter()
                    .enumerate()
                    .map(|(k, &c)| (k as u64 + 1) * c)
                    .sum();
                ModelStats {
                    model: model.clone(),
                    requests: a.requests,
                    batches: a.batches,
                    timed_out: a.timed_out,
                    p50_latency_s: percentile(&sorted, 0.50),
                    p99_latency_s: percentile(&sorted, 0.99),
                    mean_batch_fill: if a.batches == 0 {
                        0.0
                    } else {
                        weighted as f64 / a.batches as f64
                    },
                    batch_fill: a.fill_histogram.clone(),
                    requests_per_s: if uptime_s > 0.0 {
                        a.requests as f64 / uptime_s
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        models.sort_by(|a, b| a.model.cmp(&b.model));
        ServerStats { uptime_s, models }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample; 0 when empty.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted
        .get(idx.min(sorted.len() - 1))
        .copied()
        .unwrap_or(0.0)
}

#[cfg(test)]
// Exact float equality below asserts deterministic replay of seeded runs.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_histogram_track_recorded_batches() {
        let r = StatsRecorder::new();
        let ms = Duration::from_millis;
        r.record_batch("m", &[ms(10), ms(20), ms(30)]);
        r.record_batch("m", &[ms(40)]);
        let s = r.snapshot();
        let m = s.model("m").expect("model recorded");
        assert_eq!(m.requests, 4);
        assert_eq!(m.batches, 2);
        assert_eq!(m.batch_fill, vec![1, 0, 1]); // one 1-fill, one 3-fill
        assert!((m.mean_batch_fill - 2.0).abs() < 1e-9);
        // Nearest-rank on 4 samples: round(3 · 0.5) = index 2.
        assert!((m.p50_latency_s - 0.030).abs() < 1e-9);
        assert!((m.p99_latency_s - 0.040).abs() < 1e-9);
        assert_eq!(s.total_requests(), 4);
        assert!(s.model("other").is_none());
    }

    #[test]
    fn empty_recorder_snapshots_cleanly() {
        let s = StatsRecorder::new().snapshot();
        assert!(s.models.is_empty());
        assert_eq!(s.total_requests(), 0);
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[1.0], 0.99), 1.0);
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 51.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
    }
}
