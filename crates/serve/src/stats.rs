//! Serving statistics: per-model latency percentiles, **per-stage
//! histograms**, throughput, and the batch-fill histogram.
//!
//! Every served request carries monotonic stage stamps (enqueue →
//! batch-admission → compute-start → compute-end, see
//! [`RequestTiming`]); workers record one timing per request and one
//! fill per drained batch, and the transport layer adds the serialize
//! stage after it encodes the response. [`crate::Server::stats`] takes
//! a consistent [`ServerStats`] snapshot at any time; recording is a
//! short critical section on a per-process mutex, far off the
//! per-sample compute path.
//!
//! Two complementary latency representations are kept per model:
//!
//! * an **exact sample ring** of end-to-end latencies (bounded at
//!   [`MAX_LATENCY_SAMPLES`]; saturation is surfaced via
//!   [`ModelStats::latency_samples_truncated`] instead of silently
//!   skewing percentiles) feeding the exact p50/p99/p999 fields;
//! * **fixed log-bucket histograms** ([`HistogramSnapshot`]) per stage
//!   and for the end-to-end latency — dependency-free, bounded memory,
//!   and renderable as Prometheus `_bucket`/`_sum`/`_count` series by
//!   the transport's `/v1/metrics` endpoint.

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use vitcod_engine::{OP_COUNT, OP_NAMES};

/// Per-request latency samples kept per model; older samples are
/// discarded ring-buffer style so a long-lived server's snapshot cost
/// stays bounded. Saturation sets
/// [`ModelStats::latency_samples_truncated`].
pub const MAX_LATENCY_SAMPLES: usize = 65_536;

/// Smallest histogram bucket upper bound, in seconds (10 µs).
const HIST_LOWEST_S: f64 = 1e-5;

/// Finite log-spaced buckets (each bound doubles the previous one:
/// 10 µs, 20 µs, …, ~336 s); one overflow bucket rides behind them.
const HIST_FINITE_BUCKETS: usize = 26;

/// The upper bound of finite bucket `k`, in seconds.
fn bucket_bound(k: usize) -> f64 {
    // Exact in f64: a small power of two times the base.
    HIST_LOWEST_S * (1u64 << k.min(HIST_FINITE_BUCKETS)) as f64
}

/// The finite bucket a value of `s` seconds falls into, or
/// `HIST_FINITE_BUCKETS` for the overflow bucket. Buckets are
/// `le`-style: bucket `k` counts values `v <= bucket_bound(k)`.
fn bucket_index(s: f64) -> usize {
    if s.is_nan() || s <= HIST_LOWEST_S {
        // Non-positive, NaN and sub-lowest values land in bucket 0.
        return 0;
    }
    let mut idx = ((s / HIST_LOWEST_S).log2().ceil()).max(0.0) as usize;
    idx = idx.min(HIST_FINITE_BUCKETS);
    // The log/ceil above can be off by one right at a bucket boundary
    // (float rounding); settle it against the exact bounds.
    while idx > 0 && s <= bucket_bound(idx - 1) {
        idx -= 1;
    }
    while idx < HIST_FINITE_BUCKETS && s > bucket_bound(idx) {
        idx += 1;
    }
    idx
}

/// One served request's per-stage durations, computed by the worker
/// from the monotonic stamps the request carried (enqueue →
/// batch-admission → compute-start → compute-end).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestTiming {
    /// End-to-end: enqueue → prediction ready.
    pub total: Duration,
    /// Enqueue → admitted into the batch assembler (time spent in the
    /// bounded ingress queue).
    pub queue_wait: Duration,
    /// Admission → compute start (waiting for co-batching in the
    /// pending set, plus the staged-batch queue in front of the worker
    /// pool).
    pub batch_assembly: Duration,
    /// Compute start → compute end (the engine's `infer_batch`).
    pub compute: Duration,
}

impl RequestTiming {
    /// A timing carrying only the end-to-end latency (the stage fields
    /// stay zero) — convenience for tests and synthetic recorders.
    pub fn from_total(total: Duration) -> Self {
        Self {
            total,
            ..Self::default()
        }
    }
}

/// Fixed log-bucket accumulator (the mutable half behind the recorder's
/// mutex); snapshots out as [`HistogramSnapshot`].
#[derive(Debug, Clone)]
struct Histogram {
    /// Per-bucket (non-cumulative) counts; the last slot is the
    /// overflow bucket.
    counts: Vec<u64>,
    sum_s: f64,
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: vec![0; HIST_FINITE_BUCKETS + 1],
            sum_s: 0.0,
            count: 0,
        }
    }
}

impl Histogram {
    fn observe(&mut self, d: Duration) {
        self.observe_s(d.as_secs_f64());
    }

    fn observe_s(&mut self, s: f64) {
        if let Some(slot) = self.counts.get_mut(bucket_index(s)) {
            *slot += 1;
        }
        self.sum_s += s;
        self.count += 1;
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.counts.clone(),
            sum_s: self.sum_s,
            count: self.count,
        }
    }
}

/// A point-in-time copy of one fixed log-bucket latency histogram.
///
/// Bucket bounds are shared by every histogram in the process (10 µs
/// doubling up to ~336 s, [`HistogramSnapshot::upper_bounds`]), so
/// snapshots are directly comparable and renderable as Prometheus
/// cumulative `_bucket` series. `buckets` holds **non-cumulative**
/// per-bucket counts; the last slot is the overflow (`+Inf`) bucket.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, one slot per finite bound plus the trailing
    /// overflow bucket.
    pub buckets: Vec<u64>,
    /// Sum of every observed value, in seconds.
    pub sum_s: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// The shared finite bucket upper bounds, in seconds (the overflow
    /// bucket has no finite bound and is not listed).
    pub fn upper_bounds() -> Vec<f64> {
        (0..HIST_FINITE_BUCKETS).map(bucket_bound).collect()
    }

    /// Mean observed value in seconds; 0 when empty.
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_s / self.count as f64
        }
    }

    /// Estimated `q`-quantile in seconds, linearly interpolated inside
    /// the bucket holding the target rank (the overflow bucket reports
    /// the top finite bound). 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((self.count as f64 * q.clamp(0.0, 1.0)).ceil()).max(1.0) as u64;
        let mut cum = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            let before = cum;
            cum += c;
            if cum >= target && c > 0 {
                if k >= HIST_FINITE_BUCKETS {
                    return bucket_bound(HIST_FINITE_BUCKETS - 1);
                }
                let lower = if k == 0 { 0.0 } else { bucket_bound(k - 1) };
                let upper = bucket_bound(k);
                let frac = (target - before) as f64 / c as f64;
                return lower + frac * (upper - lower);
            }
        }
        bucket_bound(HIST_FINITE_BUCKETS - 1)
    }
}

/// Per-stage latency histograms for one model: where a request's time
/// went, from enqueue to the serialized response.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageStats {
    /// Enqueue → batch admission.
    pub queue_wait: HistogramSnapshot,
    /// Batch admission → compute start.
    pub batch_assembly: HistogramSnapshot,
    /// Compute start → compute end.
    pub compute: HistogramSnapshot,
    /// Response serialization (recorded by the transport after the JSON
    /// body is encoded; empty for purely in-process serving).
    pub serialize: HistogramSnapshot,
}

impl StageStats {
    /// The stages with their wire names, in pipeline order — what
    /// `/v1/metrics` labels the `stage=` series with.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &HistogramSnapshot)> {
        [
            ("queue_wait", &self.queue_wait),
            ("batch_assembly", &self.batch_assembly),
            ("compute", &self.compute),
            ("serialize", &self.serialize),
        ]
        .into_iter()
    }
}

#[derive(Default)]
struct ModelAccum {
    requests: u64,
    batches: u64,
    timed_out: u64,
    slow: u64,
    latencies_s: Vec<f64>,
    latency_cursor: usize,
    /// Set the first time the ring overwrites a sample: from then on
    /// the exact percentiles describe only the most recent
    /// [`MAX_LATENCY_SAMPLES`] requests.
    truncated: bool,
    /// `fill_histogram[k]` counts batches that carried `k + 1` requests.
    fill_histogram: Vec<u64>,
    latency_hist: Histogram,
    queue_wait: Histogram,
    batch_assembly: Histogram,
    compute: Histogram,
    serialize: Histogram,
    /// Engine busy seconds: each drained batch's compute wall, summed
    /// once per batch (the compute histogram above observes the wall
    /// once per *request*) — the denominator of the achieved-Gop/s
    /// gauge.
    compute_batch_s: f64,
    /// Per-op seconds from profiled forwards, one observation per
    /// sampled request per op (summed over layers); allocated lazily on
    /// the first profiled batch.
    ops: Vec<Histogram>,
}

/// A point-in-time snapshot of one model's serving statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStats {
    /// Model id, as registered in the [`crate::ModelRegistry`].
    pub model: String,
    /// Kernel backend the model's engine runs on (`scalar`/`blocked`/
    /// `simd`); `None` when the model is no longer registered.
    pub backend: Option<String>,
    /// Numeric precision the engine serves at (`fp32`/`int8`); `None`
    /// when the model is no longer registered.
    pub precision: Option<String>,
    /// Requests served (tickets resolved).
    pub requests: u64,
    /// Batches drained through the engine.
    pub batches: u64,
    /// Requests expired past their deadline before reaching a batch
    /// slot (resolved as [`crate::RequestError::TimedOut`]); not
    /// counted in `requests` or the latency percentiles.
    pub timed_out: u64,
    /// Requests whose end-to-end latency exceeded their slow threshold
    /// (the slowlog admissions counter, monotonic — the
    /// `vitcod_slow_requests_total` scrape family). Unlike the slowlog
    /// ring itself this is never drained, so slow rates stay computable
    /// from scrapes alone.
    pub slow: u64,
    /// Median end-to-end request latency (enqueue → prediction), in
    /// seconds; 0 when no request finished yet.
    pub p50_latency_s: f64,
    /// 99th-percentile end-to-end request latency, in seconds.
    pub p99_latency_s: f64,
    /// 99.9th-percentile end-to-end request latency, in seconds.
    pub p999_latency_s: f64,
    /// Whether the exact-sample ring has rolled over: the percentiles
    /// above describe only the most recent [`MAX_LATENCY_SAMPLES`]
    /// requests, not the server's whole lifetime.
    pub latency_samples_truncated: bool,
    /// End-to-end latency as a log-bucket histogram (never truncated —
    /// bucket counters accumulate for the server's whole lifetime).
    pub latency_histogram: HistogramSnapshot,
    /// Per-stage latency histograms: queue-wait, batch-assembly,
    /// compute, serialize.
    pub stages: StageStats,
    /// Mean requests per batch — how full the dynamic batcher keeps the
    /// engine's datapath.
    pub mean_batch_fill: f64,
    /// `batch_fill[k]` counts batches that carried `k + 1` requests.
    pub batch_fill: Vec<u64>,
    /// Served requests per second of server uptime.
    pub requests_per_s: f64,
    /// Engine busy seconds: each drained batch's compute wall summed
    /// once per batch.
    pub compute_batch_s: f64,
    /// Per-op latency histograms from profiled (head-sampled) forwards,
    /// in [`vitcod_engine::OP_NAMES`] order — the
    /// `vitcod_engine_op_seconds{model,op}` series. Empty until the
    /// model serves its first sampled request, keeping the exposition's
    /// cardinality bounded at 7 ops regardless of model depth.
    pub ops: Vec<(&'static str, HistogramSnapshot)>,
    /// Live achieved arithmetic throughput in Gop/s —
    /// `ops_per_sample × requests / compute_batch_s / 10⁹` — enriched
    /// from the engine's analytic op count by
    /// [`crate::Server::stats`]; `None` straight out of
    /// [`StatsRecorder::snapshot`] or before any batch completed.
    pub achieved_gops: Option<f64>,
}

/// A point-in-time snapshot of a server's statistics, one entry per
/// model that has served (or expired) at least one request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Per-model statistics, sorted by model id.
    pub models: Vec<ModelStats>,
}

impl ServerStats {
    /// The entry for `model`, if it has served anything.
    pub fn model(&self, model: &str) -> Option<&ModelStats> {
        self.models.iter().find(|m| m.model == model)
    }

    /// Total requests served across models.
    pub fn total_requests(&self) -> u64 {
        self.models.iter().map(|m| m.requests).sum()
    }

    /// Total requests expired past their deadline across models.
    pub fn total_timed_out(&self) -> u64 {
        self.models.iter().map(|m| m.timed_out).sum()
    }
}

/// The accumulator behind [`crate::Server::stats`]: workers record
/// batches, the batcher records timeouts, the transport records
/// serialize durations, anyone snapshots. Public so harnesses and tests
/// can drive it directly; a [`crate::Server`] owns one internally.
#[derive(Default)]
pub struct StatsRecorder {
    inner: Mutex<HashMap<String, ModelAccum>>,
}

impl StatsRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request expired past its deadline before it reached
    /// a batch slot.
    pub fn record_timeout(&self, model: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.entry(model.to_string()).or_default().timed_out += 1;
    }

    /// Records one request that exceeded its slow threshold (admitted
    /// to the slowlog ring).
    pub fn record_slow_request(&self, model: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.entry(model.to_string()).or_default().slow += 1;
    }

    /// Records one drained batch: its compute wall (engine busy time,
    /// counted once per batch), its fill and every request's end-to-end
    /// latency and per-stage breakdown.
    pub fn record_batch(&self, model: &str, batch_compute: Duration, timings: &[RequestTiming]) {
        let fill = timings.len();
        if fill == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let accum = inner.entry(model.to_string()).or_default();
        accum.compute_batch_s += batch_compute.as_secs_f64();
        accum.batches += 1;
        accum.requests += fill as u64;
        if accum.fill_histogram.len() < fill {
            accum.fill_histogram.resize(fill, 0);
        }
        if let Some(slot) = accum.fill_histogram.get_mut(fill - 1) {
            *slot += 1;
        }
        for t in timings {
            let s = t.total.as_secs_f64();
            if accum.latencies_s.len() < MAX_LATENCY_SAMPLES {
                accum.latencies_s.push(s);
            } else {
                let cursor = accum.latency_cursor;
                if let Some(slot) = accum.latencies_s.get_mut(cursor) {
                    *slot = s;
                }
                accum.latency_cursor = (cursor + 1) % MAX_LATENCY_SAMPLES;
                accum.truncated = true;
            }
            accum.latency_hist.observe(t.total);
            accum.queue_wait.observe(t.queue_wait);
            accum.batch_assembly.observe(t.batch_assembly);
            accum.compute.observe(t.compute);
        }
    }

    /// Records the per-op seconds of profiled (head-sampled) forwards:
    /// one `[f64; OP_COUNT]` per sampled request, each op's seconds
    /// already summed over layers ([`vitcod_engine::OpProfile::op_totals`]).
    pub fn record_ops(&self, model: &str, per_sample: &[[f64; OP_COUNT]]) {
        if per_sample.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let accum = inner.entry(model.to_string()).or_default();
        if accum.ops.len() < OP_COUNT {
            accum.ops = vec![Histogram::default(); OP_COUNT];
        }
        for sample in per_sample {
            for (hist, &s) in accum.ops.iter_mut().zip(sample) {
                hist.observe_s(s);
            }
        }
    }

    /// Records one response's serialize duration for `model` (called by
    /// the transport after the JSON body is encoded; every request in
    /// the response observed the same serialize latency).
    pub fn record_serialize(&self, model: &str, d: Duration) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner
            .entry(model.to_string())
            .or_default()
            .serialize
            .observe(d);
    }

    /// A consistent snapshot; `uptime_s` is stamped by the caller (the
    /// server owns the start instant).
    pub fn snapshot(&self, uptime_s: f64) -> ServerStats {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut models: Vec<ModelStats> = inner
            .iter()
            .map(|(model, a)| {
                let mut sorted = a.latencies_s.clone();
                sorted.sort_by(f64::total_cmp);
                let weighted: u64 = a
                    .fill_histogram
                    .iter()
                    .enumerate()
                    .map(|(k, &c)| (k as u64 + 1) * c)
                    .sum();
                ModelStats {
                    model: model.clone(),
                    backend: None,
                    precision: None,
                    requests: a.requests,
                    batches: a.batches,
                    timed_out: a.timed_out,
                    slow: a.slow,
                    p50_latency_s: percentile(&sorted, 0.50),
                    p99_latency_s: percentile(&sorted, 0.99),
                    p999_latency_s: percentile(&sorted, 0.999),
                    latency_samples_truncated: a.truncated,
                    latency_histogram: a.latency_hist.snapshot(),
                    stages: StageStats {
                        queue_wait: a.queue_wait.snapshot(),
                        batch_assembly: a.batch_assembly.snapshot(),
                        compute: a.compute.snapshot(),
                        serialize: a.serialize.snapshot(),
                    },
                    mean_batch_fill: if a.batches == 0 {
                        0.0
                    } else {
                        weighted as f64 / a.batches as f64
                    },
                    batch_fill: a.fill_histogram.clone(),
                    requests_per_s: if uptime_s > 0.0 {
                        a.requests as f64 / uptime_s
                    } else {
                        0.0
                    },
                    compute_batch_s: a.compute_batch_s,
                    ops: a
                        .ops
                        .iter()
                        .zip(OP_NAMES)
                        .map(|(h, name)| (name, h.snapshot()))
                        .collect(),
                    achieved_gops: None,
                }
            })
            .collect();
        models.sort_by(|a, b| a.model.cmp(&b.model));
        ServerStats { uptime_s, models }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample; 0 when empty.
pub(crate) fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted
        .get(idx.min(sorted.len() - 1))
        .copied()
        .unwrap_or(0.0)
}

#[cfg(test)]
// Exact float equality below asserts deterministic replay of seeded runs.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn timings(ms: &[u64]) -> Vec<RequestTiming> {
        ms.iter()
            .map(|&m| RequestTiming::from_total(Duration::from_millis(m)))
            .collect()
    }

    #[test]
    fn percentiles_and_histogram_track_recorded_batches() {
        let r = StatsRecorder::new();
        r.record_batch("m", Duration::from_millis(30), &timings(&[10, 20, 30]));
        r.record_batch("m", Duration::from_millis(40), &timings(&[40]));
        let s = r.snapshot(1.0);
        let m = s.model("m").expect("model recorded");
        assert_eq!(m.requests, 4);
        assert_eq!(m.batches, 2);
        assert_eq!(m.batch_fill, vec![1, 0, 1]); // one 1-fill, one 3-fill
        assert!((m.mean_batch_fill - 2.0).abs() < 1e-9);
        // Nearest-rank on 4 samples: round(3 · 0.5) = index 2.
        assert!((m.p50_latency_s - 0.030).abs() < 1e-9);
        assert!((m.p99_latency_s - 0.040).abs() < 1e-9);
        assert!((m.p999_latency_s - 0.040).abs() < 1e-9);
        assert!(!m.latency_samples_truncated);
        assert_eq!(m.latency_histogram.count, 4);
        assert_eq!(s.total_requests(), 4);
        assert!(s.model("other").is_none());
        // The compute wall accumulates once per batch, not per request.
        assert!((m.compute_batch_s - 0.070).abs() < 1e-9);
        // Never profiled: no per-op series, and the recorder leaves the
        // gauge for the server to enrich.
        assert!(m.ops.is_empty());
        assert_eq!(m.achieved_gops, None);
    }

    #[test]
    fn op_histograms_observe_per_sample_in_name_order() {
        let r = StatsRecorder::new();
        let mut a = [0.0f64; OP_COUNT];
        let mut b = [0.0f64; OP_COUNT];
        for i in 0..OP_COUNT {
            a[i] = 0.001 * (i + 1) as f64;
            b[i] = 0.002 * (i + 1) as f64;
        }
        r.record_ops("m", &[a, b]);
        r.record_ops("m", &[]); // no-op
        let s = r.snapshot(1.0);
        let m = s.model("m").expect("recorded");
        assert_eq!(m.ops.len(), OP_COUNT);
        for (i, (name, h)) in m.ops.iter().enumerate() {
            assert_eq!(*name, OP_NAMES[i]);
            assert_eq!(h.count, 2, "{name}");
            assert!((h.sum_s - 0.003 * (i + 1) as f64).abs() < 1e-9, "{name}");
        }
    }

    #[test]
    fn slow_counter_accumulates_independently_of_requests() {
        let r = StatsRecorder::new();
        r.record_slow_request("m");
        r.record_slow_request("m");
        r.record_batch("m", Duration::from_millis(1), &timings(&[1]));
        let m = r.snapshot(1.0);
        let m = m.model("m").expect("recorded");
        assert_eq!(m.slow, 2);
        assert_eq!(m.requests, 1);
    }

    #[test]
    fn empty_recorder_snapshots_cleanly() {
        let s = StatsRecorder::new().snapshot(0.0);
        assert!(s.models.is_empty());
        assert_eq!(s.total_requests(), 0);
        assert_eq!(s.total_timed_out(), 0);
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[1.0], 0.99), 1.0);
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 51.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
    }

    #[test]
    fn stage_histograms_accumulate_per_stage() {
        let r = StatsRecorder::new();
        r.record_batch(
            "m",
            Duration::from_millis(5),
            &[RequestTiming {
                total: Duration::from_millis(10),
                queue_wait: Duration::from_millis(2),
                batch_assembly: Duration::from_millis(3),
                compute: Duration::from_millis(5),
            }],
        );
        r.record_serialize("m", Duration::from_millis(1));
        let s = r.snapshot(1.0);
        let m = s.model("m").expect("recorded");
        for (name, h) in m.stages.iter() {
            assert_eq!(h.count, 1, "{name}");
        }
        assert!((m.stages.compute.sum_s - 0.005).abs() < 1e-9);
        assert!((m.stages.serialize.sum_s - 0.001).abs() < 1e-9);
    }

    #[test]
    fn bucket_index_respects_exact_bounds() {
        // At a bound the value belongs to that bucket (le semantics);
        // just past it, to the next.
        for k in 0..HIST_FINITE_BUCKETS {
            let b = bucket_bound(k);
            assert_eq!(bucket_index(b), k, "bound {k}");
            assert_eq!(bucket_index(b * 1.0000001), k + 1, "past bound {k}");
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e9), HIST_FINITE_BUCKETS);
    }

    #[test]
    fn quantile_interpolates_and_handles_overflow() {
        let mut h = Histogram::default();
        for _ in 0..100 {
            h.observe(Duration::from_millis(1)); // bucket bound 0.00128
        }
        let snap = h.snapshot();
        let q50 = snap.quantile(0.5);
        // Inside the bucket containing 1 ms: (0.64 ms, 1.28 ms].
        assert!(q50 > 0.00064 && q50 <= 0.00128, "q50 {q50}");
        // Overflow-heavy histogram clamps to the top finite bound.
        let mut h = Histogram::default();
        h.observe(Duration::from_secs(100_000));
        let top = bucket_bound(HIST_FINITE_BUCKETS - 1);
        assert_eq!(h.snapshot().quantile(0.99), top);
        // Empty histogram.
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0.0);
    }
}
