//! The serving loop: ingress queue → batcher thread → worker pool.
//!
//! ```text
//!  Client::submit ──▶ BoundedQueue (backpressure) ──▶ batcher thread
//!                                                     │ size / deadline / expiry
//!                                                     ▼
//!                                       round-robin ready rotation ──▶ batch queue ──▶ N workers
//!                                                                                      │ Engine::infer_batch
//!                                                                                      ▼
//!                                                                             tickets resolve, stats record
//! ```
//!
//! One batcher thread owns the [`crate::batcher::BatchAssembler`]; it
//! sleeps toward the earliest pending deadline — a model's
//! [`BatchConfig::max_wait`] flush or a request's expiry, whichever is
//! sooner — so partial batches leave exactly when their oldest request
//! has waited `max_wait`, and deadlined requests resolve as timed out
//! the moment they expire. Ready batches drain **round-robin across
//! models**, so a hot model's backlog cannot starve a light one.
//! Workers share the registry's `Arc`'d engines — serving never copies
//! weights — and the engine behind a model id can be hot-swapped at any
//! time ([`Server::reload`]): in-flight requests keep the engine they
//! were submitted against, later ones get the new weights.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vitcod_engine::{Engine, OpProfile, Prediction, OP_COUNT};
use vitcod_model::Sample;
use vitcod_tensor::Matrix;

use crate::batcher::{Batch, BatchAssembler, BatchConfig, Request};
use crate::queue::{BoundedQueue, Pop};
use crate::registry::ModelRegistry;
use crate::spans::{
    compute_span, FinishedTrace, KeepReason, PendingSpan, RequestOutcome, Sampler, Span, SpanRing,
    StageReport, TailSampler, TracingConfig,
};
use crate::stats::{RequestTiming, ServerStats, StatsRecorder};
use crate::ticket::{RequestError, Ticket, TicketInner};
use crate::trace::{TraceBuffer, TraceEvent, TraceKind};

/// Error submitting a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// No model with this id is registered.
    UnknownModel(String),
    /// The token matrix does not match the model's compiled shape.
    ShapeMismatch {
        /// Shape the caller submitted.
        got: (usize, usize),
        /// Shape the compiled model expects.
        expected: (usize, usize),
    },
    /// The bounded queue is full (only from [`Client::try_submit`];
    /// [`Client::submit`] blocks instead).
    QueueFull,
    /// The server has shut down.
    Closed,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::UnknownModel(id) => write!(f, "unknown model id '{id}'"),
            SubmitError::ShapeMismatch { got, expected } => {
                write!(
                    f,
                    "token shape {got:?} does not match compiled {expected:?}"
                )
            }
            SubmitError::QueueFull => write!(f, "request queue is full"),
            SubmitError::Closed => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct Shared {
    /// Model id → engine. Behind an `RwLock` so [`Server::reload`] can
    /// hot-swap an engine while serving: lookups take a brief read
    /// lock, a swap takes the write lock only for the map update.
    /// Requests hold the `Arc` they resolved at submit time, so a swap
    /// never affects work already accepted.
    engines: RwLock<BTreeMap<String, Arc<Engine>>>,
    requests: BoundedQueue<Request>,
    batches: BoundedQueue<Batch>,
    stats: StatsRecorder,
    trace: TraceBuffer,
    /// Request-tracing knobs, fixed at startup.
    tracing: TracingConfig,
    /// Deterministic head sampler driven by the ingress
    /// ([`Client::sample_trace`]).
    sampler: Sampler,
    /// Finished span trees of sampled requests (`GET /v1/traces`).
    traces: SpanRing,
    /// Span trees of requests that blew their slow threshold
    /// (`GET /v1/slowlog`).
    slowlog: SpanRing,
    /// Completion-time retention ([`TracingConfig::tail`]); `None`
    /// keeps the traces ring head-sampled only.
    tail: Option<TailSampler>,
}

impl Shared {
    fn model_ids(&self) -> Vec<String> {
        self.engines
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect()
    }

    fn reload(&self, id: String, engine: Arc<Engine>) -> bool {
        let replaced = self
            .engines
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(id.clone(), engine)
            .is_some();
        self.trace
            .record(TraceKind::Reload, &id, usize::from(replaced));
        replaced
    }

    /// Recorder snapshot enriched with registry labels and the
    /// achieved-Gop/s gauge: the stats mutex is released before the
    /// engines read lock is taken (no nesting, no lock-order edge).
    fn stats_snapshot(&self) -> ServerStats {
        let mut stats = self.stats.snapshot(self.trace.uptime_s());
        let engines = self.engines.read().unwrap_or_else(PoisonError::into_inner);
        for m in &mut stats.models {
            if let Some(engine) = engines.get(&m.model) {
                m.backend = Some(engine.backend().to_string());
                m.precision = Some(engine.precision().to_string());
                if m.compute_batch_s > 0.0 && m.requests > 0 {
                    m.achieved_gops = Some(
                        engine.approx_ops_per_sample() * m.requests as f64
                            / m.compute_batch_s
                            / 1e9,
                    );
                }
            }
        }
        stats
    }
}

/// The serving front end; see the [module](self) and
/// [crate docs](crate).
///
/// Dropping the server (or calling [`Server::shutdown`]) closes the
/// queue, drains every already-accepted request, and joins the threads
/// — accepted work is never dropped.
pub struct Server {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts a server over `registry` with `config`'s batching and
    /// queueing parameters, spawning the batcher thread and
    /// [`BatchConfig::workers`] worker threads.
    ///
    /// # Panics
    ///
    /// Panics if a config bound is zero.
    pub fn start(registry: ModelRegistry, config: BatchConfig) -> Server {
        Server::start_with_tracing(registry, config, TracingConfig::default())
    }

    /// Like [`Server::start`], but with request tracing configured: a
    /// head-sampling rate (sampled requests run the engine's profiled
    /// forward and retain a per-layer span tree) and a fallback slowlog
    /// threshold for deadline-less requests. [`Server::start`] installs
    /// [`TracingConfig::default`] — rate 0, the fast path stamp-free.
    ///
    /// # Panics
    ///
    /// Panics if a config bound is zero.
    pub fn start_with_tracing(
        registry: ModelRegistry,
        config: BatchConfig,
        tracing: TracingConfig,
    ) -> Server {
        let config = config.validated();
        let shared = Arc::new(Shared {
            engines: RwLock::new(registry.into_engines()),
            requests: BoundedQueue::new(config.queue_capacity),
            // Minimal buffer between assembly and execution: one staged
            // batch per worker keeps the pool fed while bounding the
            // head-of-line latency a light model pays behind a hot
            // model's already-dispatched batches (round-robin fairness
            // only governs batches still in the assembler's rotation).
            batches: BoundedQueue::new(config.workers),
            stats: StatsRecorder::new(),
            trace: TraceBuffer::new(),
            tracing,
            sampler: Sampler::new(tracing.sample_rate),
            traces: SpanRing::new(),
            slowlog: SpanRing::new(),
            tail: tracing.tail.map(TailSampler::new),
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            let cfg = config.clone();
            std::thread::Builder::new()
                .name("vitcod-serve-batcher".into())
                .spawn(move || run_batcher(&shared, &cfg))
                // vitcod-lint: allow(V001, spawn fails only on OS thread exhaustion at startup; start() documents that it panics)
                .expect("spawn batcher")
        };
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vitcod-serve-worker-{i}"))
                    .spawn(move || run_worker(&shared))
                    // vitcod-lint: allow(V001, spawn fails only on OS thread exhaustion at startup; start() documents that it panics)
                    .expect("spawn worker")
            })
            .collect();
        Server {
            shared,
            batcher: Some(batcher),
            workers,
        }
    }

    /// A cheap, clonable submission handle.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Registered model ids, sorted.
    pub fn model_ids(&self) -> Vec<String> {
        self.shared.model_ids()
    }

    /// Hot-swaps the engine behind `id` (or registers a new id) without
    /// interrupting serving: requests already accepted keep the engine
    /// they were submitted against — old and new weights never share a
    /// batch — while later submissions resolve to the new one. Returns
    /// whether an engine was replaced.
    pub fn reload(&self, id: impl Into<String>, engine: Engine) -> bool {
        self.shared.reload(id.into(), Arc::new(engine))
    }

    /// A consistent snapshot of the serving statistics.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats_snapshot()
    }

    /// Seconds since the server started.
    pub fn uptime_s(&self) -> f64 {
        self.shared.trace.uptime_s()
    }

    /// Drains and returns the event-trace ring; see [`crate::trace`].
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        self.shared.trace.take()
    }

    /// Trace events evicted before being drained (ring saturation).
    pub fn trace_dropped(&self) -> u64 {
        self.shared.trace.dropped()
    }

    /// The tracing configuration the server was started with.
    pub fn tracing(&self) -> TracingConfig {
        self.shared.tracing
    }

    /// Drains and returns the sampled span-tree ring; see
    /// [`crate::spans`].
    pub fn take_traces(&self) -> Vec<FinishedTrace> {
        self.shared.traces.take()
    }

    /// Drains and returns the slow-request ring; see [`crate::spans`].
    pub fn take_slowlog(&self) -> Vec<FinishedTrace> {
        self.shared.slowlog.take()
    }

    /// Requests currently waiting in the ingress queue.
    pub fn queued_requests(&self) -> usize {
        self.shared.requests.len()
    }

    /// Stops accepting requests, drains everything already accepted,
    /// joins the threads, and returns the final statistics.
    pub fn shutdown(mut self) -> ServerStats {
        self.join_threads();
        self.shared.stats_snapshot()
    }

    fn join_threads(&mut self) {
        if self.batcher.is_some() {
            self.shared
                .trace
                .record(TraceKind::Shutdown, "", self.shared.requests.len());
        }
        self.shared.requests.close();
        if let Some(h) = self.batcher.take() {
            if h.join().is_err() {
                // Never panic out of Drop (it would abort mid-unwind);
                // a dead batcher cannot assemble, so fail the queues.
                self.shared.batches.close();
                eprintln!("vitcod-serve: batcher thread panicked");
            }
        }
        for h in self.workers.drain(..) {
            if h.join().is_err() {
                eprintln!("vitcod-serve: worker thread panicked");
            }
        }
        // Normally both queues are empty here (the batcher drains the
        // ingress queue, workers drain the batch queue). If a thread
        // died instead, resolve whatever it stranded so no client ever
        // hangs in `Ticket::wait`.
        for request in self.shared.requests.drain_now() {
            request.ticket.cancel();
        }
        for batch in self.shared.batches.drain_now() {
            for request in batch.requests {
                request.ticket.cancel();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.join_threads();
    }
}

/// A clonable submission handle to a [`Server`].
///
/// Besides submitting work, a client can read statistics, list models
/// and hot-swap engines — everything a remote transport needs to expose
/// the server over a socket lives on this handle.
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

impl Client {
    /// Enqueues one classification request for `model` and returns its
    /// [`Ticket`] immediately. Blocks (backpressure) while the bounded
    /// request queue is full.
    ///
    /// # Errors
    ///
    /// Unknown model id, token-shape mismatch, or a shut-down server.
    pub fn submit(&self, model: &str, tokens: Matrix) -> Result<Ticket, SubmitError> {
        self.enqueue(model, tokens, None, false)
    }

    /// Like [`Client::submit`], but the request carries a deadline: if
    /// `timeout` elapses before the request reaches a batch slot, the
    /// batcher expires it — it stops occupying queue capacity and its
    /// ticket resolves as [`RequestError::TimedOut`]. A request that
    /// made it into a batch before the deadline is served normally.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`].
    pub fn submit_with_timeout(
        &self,
        model: &str,
        tokens: Matrix,
        timeout: Duration,
    ) -> Result<Ticket, SubmitError> {
        self.enqueue(model, tokens, Some(timeout), false)
    }

    /// Like [`Client::submit_with_timeout`] (with `timeout: None`
    /// meaning no deadline), but the request carries its head-sampling
    /// decision: a sampled request's batch runs the engine's profiled
    /// forward, and its ticket's [`crate::spans::StageReport`] carries a
    /// compute span with per-layer op children. The transport decides
    /// `sampled` from [`Client::sample_trace`] or an explicit
    /// `x-vitcod-trace-id` header.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`].
    pub fn submit_traced(
        &self,
        model: &str,
        tokens: Matrix,
        timeout: Option<Duration>,
        sampled: bool,
    ) -> Result<Ticket, SubmitError> {
        self.enqueue(model, tokens, timeout, sampled)
    }

    /// Like [`Client::submit`] but never blocks: a full queue returns
    /// [`SubmitError::QueueFull`] instead of applying backpressure, so
    /// callers that prefer load-shedding can make that choice
    /// explicitly.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`], plus [`SubmitError::QueueFull`].
    pub fn try_submit(&self, model: &str, tokens: Matrix) -> Result<Ticket, SubmitError> {
        use crate::queue::TryPushError;
        let (request, ticket) = self.make_request(model, tokens, None, false)?;
        match self.shared.requests.try_push(request) {
            Ok(()) => {
                self.shared
                    .trace
                    .record(TraceKind::Enqueue, model, self.shared.requests.len());
                Ok(Ticket::new(ticket))
            }
            Err(TryPushError::Full(_)) => Err(SubmitError::QueueFull),
            Err(TryPushError::Closed(_)) => Err(SubmitError::Closed),
        }
    }

    fn enqueue(
        &self,
        model: &str,
        tokens: Matrix,
        timeout: Option<Duration>,
        sampled: bool,
    ) -> Result<Ticket, SubmitError> {
        let (request, ticket) = self.make_request(model, tokens, timeout, sampled)?;
        self.shared
            .requests
            .push(request)
            .map_err(|_| SubmitError::Closed)?;
        self.shared
            .trace
            .record(TraceKind::Enqueue, model, self.shared.requests.len());
        Ok(Ticket::new(ticket))
    }

    fn make_request(
        &self,
        model: &str,
        tokens: Matrix,
        timeout: Option<Duration>,
        sampled: bool,
    ) -> Result<(Request, Arc<TicketInner>), SubmitError> {
        let engine = self
            .shared
            .engines
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(model)
            .map(Arc::clone)
            .ok_or_else(|| SubmitError::UnknownModel(model.to_string()))?;
        let compiled = engine.compiled();
        let expected = (compiled.config().tokens, compiled.in_dim());
        if tokens.shape() != expected {
            return Err(SubmitError::ShapeMismatch {
                got: tokens.shape(),
                expected,
            });
        }
        let ticket = TicketInner::new();
        let enqueued = Instant::now();
        let request = Request {
            model: model.to_string(),
            tokens,
            ticket: Arc::clone(&ticket),
            engine,
            enqueued,
            admitted: None,
            deadline: timeout.map(|t| enqueued + t),
            sampled,
        };
        Ok((request, ticket))
    }

    /// Submits and blocks until the prediction arrives (the synchronous
    /// convenience over [`Client::submit`] + [`Ticket::wait`]).
    ///
    /// # Errors
    ///
    /// As [`Client::submit`], plus [`SubmitError::Closed`] when the
    /// server shut down before serving the request.
    pub fn classify(&self, model: &str, tokens: Matrix) -> Result<Prediction, SubmitError> {
        self.submit(model, tokens)?
            .wait()
            .ok_or(SubmitError::Closed)
    }

    /// Blocks on `ticket` for at most `dur` and takes its prediction —
    /// the in-process mirror of the wire path's `timeout_ms` (a thin
    /// convenience over [`Ticket::wait_timeout`]).
    ///
    /// # Errors
    ///
    /// [`RequestError::TimedOut`] when the budget elapses (the ticket
    /// stays valid for a later wait) or the batcher expired the request
    /// server-side; [`RequestError::Cancelled`] when it will never
    /// resolve.
    pub fn wait_timeout(&self, ticket: &Ticket, dur: Duration) -> Result<Prediction, RequestError> {
        ticket.wait_timeout(dur)
    }

    /// Registered model ids, sorted.
    pub fn model_ids(&self) -> Vec<String> {
        self.shared.model_ids()
    }

    /// Hot-swaps the engine behind `id`; see [`Server::reload`].
    pub fn reload(&self, id: impl Into<String>, engine: Engine) -> bool {
        self.shared.reload(id.into(), Arc::new(engine))
    }

    /// A consistent snapshot of the serving statistics.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats_snapshot()
    }

    /// Seconds since the server started.
    pub fn uptime_s(&self) -> f64 {
        self.shared.trace.uptime_s()
    }

    /// Records one serialize-stage observation for `model`.
    ///
    /// Serialization happens outside the worker pool — in whatever layer
    /// encodes the prediction for its consumer (the HTTP transport times
    /// its JSON encode and reports it here). In-process callers that
    /// never serialize simply leave the stage histogram empty.
    pub fn observe_serialize(&self, model: &str, took: Duration) {
        self.shared.stats.record_serialize(model, took);
    }

    /// Drains and returns the event-trace ring; see [`crate::trace`].
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        self.shared.trace.take()
    }

    /// Trace events evicted before being drained (ring saturation).
    pub fn trace_dropped(&self) -> u64 {
        self.shared.trace.dropped()
    }

    /// The tracing configuration the server was started with.
    pub fn tracing(&self) -> TracingConfig {
        self.shared.tracing
    }

    /// Whether the next ingress request is head-sampled. Advances the
    /// deterministic sampler — call exactly once per wire request, at
    /// ingress (an explicit `x-vitcod-trace-id` header forces sampling
    /// *without* consulting this).
    pub fn sample_trace(&self) -> bool {
        self.shared.sampler.sample()
    }

    /// Retains one finished sampled request's span tree in the traces
    /// ring (`GET /v1/traces`). Called by the transport after the
    /// response is written, when the end-to-end total is known.
    pub fn record_trace(&self, trace_id: String, model: String, total_s: f64, root: Span) {
        self.shared
            .traces
            .record(trace_id, model, true, "head", total_s, root);
    }

    /// Retains one slow request's span tree in the slowlog ring
    /// (`GET /v1/slowlog`): the transport calls this when the
    /// end-to-end latency exceeded
    /// [`TracingConfig::slow_threshold_for`] the request's deadline.
    /// Also bumps the model's `slow` counter (the
    /// `vitcod_slow_requests_total` scrape family), so slow rates are
    /// computable without draining the ring.
    pub fn record_slow(
        &self,
        trace_id: String,
        model: String,
        sampled: bool,
        total_s: f64,
        root: Span,
    ) {
        self.shared.stats.record_slow_request(&model);
        self.shared
            .slowlog
            .record(trace_id, model, sampled, "slow", total_s, root);
    }

    /// Retains one tail-kept request's span tree in the traces ring
    /// (`GET /v1/traces`), labelled with its [`KeepReason`]. Tail-kept
    /// traces are `sampled: false` — their compute span is a stage
    /// leaf, not a profiled per-layer tree.
    pub fn record_tail(
        &self,
        trace_id: String,
        model: String,
        total_s: f64,
        root: Span,
        reason: KeepReason,
    ) {
        self.shared
            .traces
            .record(trace_id, model, false, reason.as_str(), total_s, root);
    }

    /// Whether tail-based retention is configured
    /// ([`TracingConfig::tail`]).
    pub fn tail_enabled(&self) -> bool {
        self.shared.tail.is_some()
    }

    /// Registers an in-flight request with the tail sampler's pending
    /// buffer. `None` when the tail is off or the buffer is full
    /// (counted via [`Client::tail_pending_dropped`]); the request
    /// stays eligible for the slow/error keeps either way.
    pub fn tail_register(&self, trace_id: &str, model: &str) -> Option<u64> {
        self.shared
            .tail
            .as_ref()
            .and_then(|t| t.register(trace_id, model))
    }

    /// Completes a request against the tail sampler: unregisters its
    /// pending entry and returns the keep decision (`None` when the
    /// trace is dropped, or already retained by head sampling).
    pub fn tail_complete(
        &self,
        key: Option<u64>,
        sampled: bool,
        slow: bool,
        outcome: RequestOutcome,
    ) -> Option<KeepReason> {
        self.shared
            .tail
            .as_ref()
            .and_then(|t| t.complete(key, sampled, slow, outcome))
    }

    /// Snapshot of the tail sampler's in-flight pending buffer (empty
    /// when the tail is off).
    pub fn tail_pending(&self) -> Vec<PendingSpan> {
        self.shared
            .tail
            .as_ref()
            .map(TailSampler::pending)
            .unwrap_or_default()
    }

    /// Requests that skipped tail registration on a full pending
    /// buffer.
    pub fn tail_pending_dropped(&self) -> u64 {
        self.shared
            .tail
            .as_ref()
            .map(TailSampler::pending_dropped)
            .unwrap_or(0)
    }

    /// The compiled token-matrix shape `(tokens, in_dim)` the model
    /// expects, or `None` for an unknown id — what a health prober
    /// needs to build a valid one-sample input.
    pub fn model_shape(&self, model: &str) -> Option<(usize, usize)> {
        self.shared
            .engines
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(model)
            .map(|engine| {
                let compiled = engine.compiled();
                (compiled.config().tokens, compiled.in_dim())
            })
    }

    /// Drains and returns the sampled span-tree ring in record order.
    pub fn take_traces(&self) -> Vec<FinishedTrace> {
        self.shared.traces.take()
    }

    /// Copies the sampled span-tree ring without draining (`?peek=1`).
    pub fn peek_traces(&self) -> Vec<FinishedTrace> {
        self.shared.traces.peek()
    }

    /// Sampled traces evicted before being drained (ring saturation).
    pub fn traces_dropped(&self) -> u64 {
        self.shared.traces.dropped()
    }

    /// Drains and returns the slow-request ring in record order.
    pub fn take_slowlog(&self) -> Vec<FinishedTrace> {
        self.shared.slowlog.take()
    }

    /// Copies the slow-request ring without draining (`?peek=1`).
    pub fn peek_slowlog(&self) -> Vec<FinishedTrace> {
        self.shared.slowlog.peek()
    }

    /// Slow-request traces evicted before being drained.
    pub fn slowlog_dropped(&self) -> u64 {
        self.shared.slowlog.dropped()
    }

    /// Copies the event-trace ring without draining (`?peek=1`); see
    /// [`crate::trace`].
    pub fn peek_trace(&self) -> Vec<TraceEvent> {
        self.shared.trace.peek()
    }

    /// Requests currently waiting in the ingress queue.
    pub fn queued_requests(&self) -> usize {
        self.shared.requests.len()
    }
}

fn run_batcher(shared: &Shared, cfg: &BatchConfig) {
    let mut assembler = BatchAssembler::new(cfg.max_batch_size, cfg.max_wait);
    // The batch queue only closes after this thread exits; a failed
    // push can only mean shutdown mid-drain, where requests are
    // cancelled on the spot.
    let dispatch = |batch: Batch| {
        shared
            .trace
            .record(TraceKind::Dispatch, &batch.model, batch.requests.len());
        if let Err(batch) = shared.batches.push(batch) {
            for r in batch.requests {
                r.ticket.cancel();
            }
        }
    };
    let mut closed = false;
    loop {
        // Absorb phase: move ingress requests into the assembler.
        // Block toward the earliest deadline only when nothing is
        // ready to dispatch; otherwise just sweep up whatever is
        // immediately available. Absorption is bounded (ingress
        // capacity again) so a flooding producer still meets
        // backpressure instead of an unbounded assembler.
        if !closed && !assembler.has_ready() {
            if assembler.buffered() < cfg.queue_capacity {
                match shared.requests.pop_until(assembler.next_deadline()) {
                    Pop::Item(request) => assembler.offer(request, Instant::now()),
                    Pop::TimedOut => {}
                    Pop::Closed => closed = true,
                }
            } else {
                // At capacity with nothing ready (many models, none at
                // its trigger yet): wait toward the earliest deadline
                // WITHOUT absorbing more, so the ingress queue fills
                // and producers feel backpressure. Short naps keep
                // expiry/shutdown latency bounded; the state itself
                // ends at the oldest set's flush deadline (≤ max_wait).
                let nap = assembler
                    .next_deadline()
                    .map(|d| d.saturating_duration_since(Instant::now()))
                    .unwrap_or(Duration::from_millis(10))
                    .min(Duration::from_millis(10));
                if !nap.is_zero() {
                    std::thread::sleep(nap);
                }
            }
        }
        while !closed && assembler.buffered() < cfg.queue_capacity {
            match shared.requests.pop_until(Some(Instant::now())) {
                Pop::Item(request) => assembler.offer(request, Instant::now()),
                Pop::TimedOut => break,
                Pop::Closed => {
                    closed = true;
                    break;
                }
            }
        }
        let now = Instant::now();
        if closed {
            // Shutdown: accepted work is never dropped — promote every
            // pending set, expired requests excepted.
            assembler.flush_all(now);
        } else {
            assembler.poll(now);
        }
        for (model, n) in assembler.take_promoted() {
            shared.trace.record(TraceKind::Promote, &model, n);
        }
        let expired = assembler.take_expired();
        if !expired.is_empty() {
            let mut per_model: BTreeMap<&str, usize> = BTreeMap::new();
            for request in &expired {
                *per_model.entry(&request.model).or_insert(0) += 1;
            }
            for (model, n) in per_model {
                shared.trace.record(TraceKind::Expire, model, n);
            }
        }
        for request in expired {
            shared.stats.record_timeout(&request.model);
            request.ticket.expire();
        }
        if closed {
            while let Some(batch) = assembler.next_ready() {
                dispatch(batch);
            }
            shared.batches.close();
            return;
        }
        // Dispatch phase: hand over at most ONE batch per cycle. The
        // push blocks while the batch queue is full — that is where
        // the round-robin rotation becomes service order: a hot model
        // hands over one batch per turn, then the loop re-absorbs the
        // ingress queue (so a light model's request reaches the
        // rotation) before the hot model gets another slot.
        if let Some(batch) = assembler.next_ready() {
            dispatch(batch);
        }
    }
}

fn run_worker(shared: &Shared) {
    loop {
        match shared.batches.pop_until(None) {
            Pop::Item(batch) => {
                // A panicking batch (an engine assert slipping past
                // submit-time validation) must not kill the worker: its
                // tickets cancel via the guard in `serve_batch`, the
                // pool keeps draining, and the batcher never wedges on
                // a consumer-less batch queue.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    serve_batch(shared, batch)
                }));
                if result.is_err() {
                    eprintln!("vitcod-serve: batch panicked; its tickets were cancelled");
                }
            }
            Pop::Closed => return,
            // `pop_until(None)` never times out; tolerate it anyway
            // rather than giving the pool a panic path.
            Pop::TimedOut => continue,
        }
    }
}

/// Cancels every still-pending ticket on drop. Armed for the whole of
/// [`serve_batch`]: if inference panics mid-batch, the unwind resolves
/// the batch's tickets to "cancelled" instead of leaving clients
/// blocked in [`Ticket::wait`] forever ([`TicketInner::cancel`] is a
/// no-op on tickets that completed normally).
struct CancelOnDrop<'a>(&'a [(std::sync::Arc<TicketInner>, Instant, Option<Instant>, bool)]);

impl Drop for CancelOnDrop<'_> {
    fn drop(&mut self) {
        for (ticket, _, _, _) in self.0 {
            ticket.cancel();
        }
    }
}

fn serve_batch(shared: &Shared, batch: Batch) {
    let mut samples = Vec::with_capacity(batch.requests.len());
    let mut tickets = Vec::with_capacity(batch.requests.len());
    for r in batch.requests {
        // Tokens move into the sample — no activation copy, and the
        // engine holds its weights behind an `Arc`, so serving a batch
        // allocates nothing model-sized.
        samples.push(Sample {
            tokens: r.tokens,
            label: 0,
        });
        tickets.push((r.ticket, r.enqueued, r.admitted, r.sampled));
    }
    let _cancel_guard = CancelOnDrop(&tickets);
    // A batch with any head-sampled request runs the profiled forward
    // (per-layer op timing, samples served sequentially); otherwise the
    // fast path stays completely stamp-free.
    let any_sampled = tickets.iter().any(|(_, _, _, sampled)| *sampled);
    let compute_start = Instant::now();
    let (predictions, profiles): (Vec<Prediction>, Option<Vec<OpProfile>>) = if any_sampled {
        let (p, prof) = batch
            .engine
            .infer_batch_profiled(&samples)
            .into_iter()
            .unzip();
        (p, Some(prof))
    } else {
        (batch.engine.infer_batch(&samples), None)
    };
    let compute_end = Instant::now();
    // Every request in the batch shares the compute window; the earlier
    // stages come from its own stamps. A request without an admission
    // stamp (never routed through the assembler) charges its whole wait
    // to the queue.
    let compute = compute_end.saturating_duration_since(compute_start);
    let timings: Vec<RequestTiming> = tickets
        .iter()
        .map(|(_, enqueued, admitted, _)| {
            let admitted = admitted.unwrap_or(compute_start);
            RequestTiming {
                total: compute_end.saturating_duration_since(*enqueued),
                queue_wait: admitted.saturating_duration_since(*enqueued),
                batch_assembly: compute_start.saturating_duration_since(admitted),
                compute,
            }
        })
        .collect();
    // Stats first, tickets second: a client unblocked by its ticket must
    // already see this batch in any stats snapshot it takes.
    shared.stats.record_batch(&batch.model, compute, &timings);
    if let Some(profiles) = &profiles {
        // Per-op histograms observe only the requests that were
        // themselves sampled — co-batched bystanders ran profiled as a
        // side effect but were not selected by the sampler.
        let per_sample: Vec<[f64; OP_COUNT]> = tickets
            .iter()
            .zip(profiles)
            .filter(|((_, _, _, sampled), _)| *sampled)
            .map(|(_, profile)| {
                let mut ops = [0.0f64; OP_COUNT];
                for (slot, (_, s)) in ops.iter_mut().zip(profile.op_totals()) {
                    *slot = s;
                }
                ops
            })
            .collect();
        shared.stats.record_ops(&batch.model, &per_sample);
    }
    for (i, ((ticket, _, _, sampled), prediction)) in tickets.iter().zip(predictions).enumerate() {
        let (compute_s, compute_tree) = match profiles.as_ref().and_then(|p| p.get(i)) {
            // Sampled request: its own forward's wall and the full
            // per-layer span tree.
            Some(profile) if *sampled => (profile.total_s, Some(compute_span(profile))),
            // Unsampled (possibly in a profiled batch): the shared
            // batch compute wall, no per-layer detail.
            _ => (compute.as_secs_f64(), None),
        };
        let timing = timings.get(i).copied().unwrap_or_default();
        ticket.set_report(StageReport {
            queue_wait_s: timing.queue_wait.as_secs_f64(),
            batch_assembly_s: timing.batch_assembly.as_secs_f64(),
            compute_s,
            compute: compute_tree,
        });
        ticket.complete(prediction);
    }
}
