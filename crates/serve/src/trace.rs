//! Structured event tracing: a bounded, sharded ring of typed serving
//! events for debugging deadline storms and reload races without a
//! debugger.
//!
//! Every interesting transition in the serving loop records one
//! [`TraceEvent`] — enqueue, expiry, pending-set promotion, batch
//! dispatch, hot reload, shutdown — into a [`TraceBuffer`]: a fixed
//! number of mutex-guarded shards (writers pick one by thread id, so
//! concurrent producers, the batcher and the control plane rarely
//! contend), each a bounded ring that evicts its oldest event when
//! full. Eviction is **counted, not hidden**
//! ([`crate::Client::trace_dropped`], exported as a counter on
//! `/v1/metrics`), so a drained trace that missed events says so.
//!
//! Draining ([`crate::Server::take_trace`], `GET /v1/trace` on the
//! transport) removes the events and returns them merged in record
//! order — a global atomic sequence number orders events across shards.
//! Memory stays bounded at [`TRACE_CAPACITY`] events regardless of
//! traffic.

use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Total events the buffer retains across all shards.
pub const TRACE_CAPACITY: usize = 2048;

/// Shards (independent rings) the capacity is split across.
const TRACE_SHARDS: usize = 8;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A request entered the ingress queue (`n` = queue depth after).
    Enqueue,
    /// Requests expired past their deadline before reaching a batch
    /// slot (`n` = how many, this batcher cycle).
    Expire,
    /// A pending set was promoted to a ready batch (`n` = batch size).
    Promote,
    /// A ready batch was handed to the worker pool (`n` = batch size).
    Dispatch,
    /// An engine was hot-swapped (`n` = 1 when an engine was replaced,
    /// 0 when the id was newly registered).
    Reload,
    /// The server began shutting down (`n` = requests still queued).
    Shutdown,
}

impl TraceKind {
    /// The wire name (`GET /v1/trace` events carry this string).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Enqueue => "enqueue",
            TraceKind::Expire => "expire",
            TraceKind::Promote => "promote",
            TraceKind::Dispatch => "dispatch",
            TraceKind::Reload => "reload",
            TraceKind::Shutdown => "shutdown",
        }
    }
}

/// One recorded serving event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Global record order (monotonic across shards; drains sort by it).
    pub seq: u64,
    /// Seconds since the server started.
    pub at_s: f64,
    /// What happened.
    pub kind: TraceKind,
    /// The model involved; empty for server-scoped events
    /// ([`TraceKind::Shutdown`]).
    pub model: String,
    /// Kind-specific magnitude; see each [`TraceKind`] variant.
    pub n: usize,
}

/// The bounded, sharded event ring; see the [module docs](self).
pub(crate) struct TraceBuffer {
    start: Instant,
    seq: AtomicU64,
    dropped: AtomicU64,
    shards: Vec<Mutex<VecDeque<TraceEvent>>>,
}

impl TraceBuffer {
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            shards: (0..TRACE_SHARDS)
                .map(|_| Mutex::new(VecDeque::with_capacity(TRACE_CAPACITY / TRACE_SHARDS)))
                .collect(),
        }
    }

    /// Seconds since the buffer (= server) was created.
    pub fn uptime_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Records one event into the calling thread's shard, evicting the
    /// shard's oldest event when full.
    pub fn record(&self, kind: TraceKind, model: &str, n: usize) {
        let event = TraceEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            at_s: self.uptime_s(),
            kind,
            model: model.to_string(),
            n,
        };
        let shard_idx = {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            (h.finish() as usize) % self.shards.len().max(1)
        };
        if let Some(shard) = self.shards.get(shard_idx) {
            let mut ring = shard.lock().unwrap_or_else(PoisonError::into_inner);
            if ring.len() >= TRACE_CAPACITY / TRACE_SHARDS {
                ring.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(event);
        }
    }

    /// Drains every shard and returns the events in record order.
    pub fn take(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = Vec::new();
        for shard in &self.shards {
            let mut ring = shard.lock().unwrap_or_else(PoisonError::into_inner);
            events.extend(ring.drain(..));
        }
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Copies every shard's events in record order **without draining**
    /// — the `?peek=1` read for scraping tools, which must not race a
    /// human draining the ring.
    pub fn peek(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = Vec::new();
        for shard in &self.shards {
            let ring = shard.lock().unwrap_or_else(PoisonError::into_inner);
            events.extend(ring.iter().cloned());
        }
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Events evicted before being drained (ring saturation), since the
    /// server started.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_drain_in_record_order() {
        let b = TraceBuffer::new();
        b.record(TraceKind::Enqueue, "m", 1);
        b.record(TraceKind::Promote, "m", 4);
        b.record(TraceKind::Dispatch, "m", 4);
        let events = b.take();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.kind).collect::<Vec<_>>(),
            [TraceKind::Enqueue, TraceKind::Promote, TraceKind::Dispatch]
        );
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(b.take().is_empty(), "take drains");
        assert_eq!(b.dropped(), 0);
    }

    #[test]
    fn peek_is_non_destructive() {
        let b = TraceBuffer::new();
        b.record(TraceKind::Enqueue, "m", 1);
        b.record(TraceKind::Dispatch, "m", 1);
        let peeked = b.peek();
        assert_eq!(peeked.len(), 2);
        assert!(peeked.windows(2).all(|w| w[0].seq < w[1].seq));
        // A second peek sees the same events; a take still drains them.
        assert_eq!(b.peek(), peeked);
        assert_eq!(b.take(), peeked);
        assert!(b.peek().is_empty());
    }

    #[test]
    fn saturation_evicts_oldest_and_counts_drops() {
        let b = TraceBuffer::new();
        // All from one thread → one shard → its ring bounds the run.
        let per_shard = TRACE_CAPACITY / TRACE_SHARDS;
        for i in 0..per_shard + 10 {
            b.record(TraceKind::Enqueue, "m", i);
        }
        let events = b.take();
        assert_eq!(events.len(), per_shard);
        assert_eq!(b.dropped(), 10);
        // The oldest 10 were evicted, the newest survive.
        assert_eq!(events.first().map(|e| e.n), Some(10));
        assert_eq!(events.last().map(|e| e.n), Some(per_shard + 9));
    }

    #[test]
    fn concurrent_writers_keep_global_order_consistent() {
        let b = std::sync::Arc::new(TraceBuffer::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let b = std::sync::Arc::clone(&b);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        b.record(TraceKind::Enqueue, "m", t * 1000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer");
        }
        let events = b.take();
        assert_eq!(events.len() as u64 + b.dropped(), 200);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
