//! The multi-model registry: routes model ids to shared [`Engine`]s.
//!
//! Each registered model is an independent engine — its own
//! [`CompiledVit`], precision and backend — behind one id. Engines are
//! held in `Arc`s, so the server's worker pool and every client route
//! to the *same* frozen weight allocation; registering a model never
//! copies weights, and neither does serving it.
//!
//! Registries are loadable from disk: [`ModelRegistry::load_dir`] scans
//! a directory for `*.vitcod` artifacts written by
//! [`vitcod_engine::save_compiled_vit`] and builds one engine per file
//! (model id = file stem, precision = the artifact's stored tag).

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

use vitcod_engine::{load_compiled_vit, ArtifactError, Engine};

/// File extension the directory loader looks for.
pub const ARTIFACT_EXTENSION: &str = "vitcod";

/// Error registering models or loading them from disk.
#[derive(Debug)]
pub enum RegistryError {
    /// A model id was registered twice.
    DuplicateId(String),
    /// Reading an artifact file failed.
    Io(std::io::Error),
    /// An artifact file failed to parse or validate.
    Artifact {
        /// The file that failed.
        path: String,
        /// Why it failed.
        source: ArtifactError,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateId(id) => write!(f, "model id '{id}' registered twice"),
            RegistryError::Io(e) => write!(f, "artifact i/o error: {e}"),
            RegistryError::Artifact { path, source } => {
                write!(f, "artifact '{path}' invalid: {source}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<std::io::Error> for RegistryError {
    fn from(e: std::io::Error) -> Self {
        RegistryError::Io(e)
    }
}

/// Routes model ids to shared engines; see the [module docs](self).
#[derive(Default)]
pub struct ModelRegistry {
    engines: BTreeMap<String, Arc<Engine>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `engine` under `id`. Each model's engine keeps its own
    /// precision/backend settings.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateId`] when `id` is already taken.
    pub fn register(&mut self, id: impl Into<String>, engine: Engine) -> Result<(), RegistryError> {
        self.register_shared(id, Arc::new(engine))
    }

    /// Registers an already-shared engine (e.g. one also served
    /// elsewhere) without cloning it.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateId`] when `id` is already taken.
    pub fn register_shared(
        &mut self,
        id: impl Into<String>,
        engine: Arc<Engine>,
    ) -> Result<(), RegistryError> {
        let id = id.into();
        if self.engines.contains_key(&id) {
            return Err(RegistryError::DuplicateId(id));
        }
        self.engines.insert(id, engine);
        Ok(())
    }

    /// Loads one artifact file and registers it under `id`, serving at
    /// the precision the artifact was saved with.
    ///
    /// # Errors
    ///
    /// I/O, parse/schema, or duplicate-id errors.
    pub fn register_file(
        &mut self,
        id: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> Result<(), RegistryError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)?;
        let (compiled, precision) =
            load_compiled_vit(&text).map_err(|source| RegistryError::Artifact {
                path: path.display().to_string(),
                source,
            })?;
        self.register(id, Engine::builder(compiled).precision(precision).build())
    }

    /// Builds a registry from every `*.vitcod` artifact in `dir`
    /// (model id = file stem), in lexicographic order.
    ///
    /// # Errors
    ///
    /// I/O, parse/schema, or duplicate-stem errors.
    pub fn load_dir(dir: impl AsRef<Path>) -> Result<Self, RegistryError> {
        let mut registry = Self::new();
        let mut paths: Vec<_> = std::fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(ARTIFACT_EXTENSION))
            .collect();
        paths.sort();
        for path in paths {
            let id = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("model")
                .to_string();
            registry.register_file(id, &path)?;
        }
        Ok(registry)
    }

    /// The engine registered under `id`.
    pub fn get(&self, id: &str) -> Option<Arc<Engine>> {
        self.engines.get(id).map(Arc::clone)
    }

    /// Registered model ids, sorted.
    pub fn ids(&self) -> Vec<&str> {
        self.engines.keys().map(String::as_str).collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether no model is registered.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    pub(crate) fn into_engines(self) -> BTreeMap<String, Arc<Engine>> {
        self.engines
    }
}
