//! Request-scoped span trees: head sampling, per-request stage
//! reports, and the bounded rings behind `GET /v1/traces` and
//! `GET /v1/slowlog`.
//!
//! Every wire request gets a trace id at ingress (or brings one in an
//! `x-vitcod-trace-id` header) and, on completion, a [`Span`] tree —
//! `request → {parse, queue, batch_assembly, compute, serialize}`. The
//! compute span of a **sampled** request (head sampling at
//! [`TracingConfig::sample_rate`], forced by an explicit trace-id
//! header) additionally carries per-layer children, each partitioned
//! into the engine's named ops ([`vitcod_engine::OP_NAMES`]); the fast
//! path stays stamp-free — unsampled requests never run the profiled
//! forward.
//!
//! Finished trees land in two [`SpanRing`]s (same sharded, counted-
//! eviction design as [`crate::trace::TraceBuffer`]): every sampled
//! request in the traces ring, and any request whose end-to-end latency
//! exceeded its slow threshold (deadline × 0.5, or the configured
//! fallback) in the slowlog ring. The ring shard mutexes are leaf
//! locks: nothing is acquired while one is held.
//!
//! With [`TracingConfig::tail`] set, retention flips from an
//! ingress-time coin flip to a completion-time decision: every
//! in-flight request registers in a bounded pending buffer (the
//! crate-private `TailSampler`) and, at completion, is kept in the traces ring if
//! it turned out slow, errored or expired, or was selected by a
//! deterministic seeded reservoir over completed requests — so
//! `/v1/traces` holds the requests that matter. Head sampling and the
//! `x-vitcod-trace-id` header remain as overrides, and with the tail
//! off the fast path is untouched.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use vitcod_engine::{OpProfile, OP_NAMES};

/// Total finished span trees each ring retains across all shards.
pub const SPAN_RING_CAPACITY: usize = 256;

/// Shards (independent rings) the capacity is split across.
const SPAN_RING_SHARDS: usize = 8;

/// Head-sampling denominator: rates are fixed-point millionths.
const SAMPLE_UNIT: u64 = 1_000_000;

/// Request-tracing knobs, fixed at [`crate::Server::start_with_tracing`].
///
/// The default — sampling rate `0.0`, no fallback slow threshold — is
/// what [`crate::Server::start`] installs: tracing machinery present
/// but the fast path stamp-free.
#[derive(Debug, Clone, Copy, Default)]
pub struct TracingConfig {
    /// Head-sampling rate in `[0, 1]`: the deterministic fraction of
    /// requests whose compute runs the profiled (per-layer, per-op)
    /// forward. `0.0` (the default) keeps the fast path stamp-free; an
    /// explicit `x-vitcod-trace-id` header always forces sampling.
    pub sample_rate: f64,
    /// Slowlog threshold for requests **without** a deadline. Requests
    /// with a deadline use deadline × 0.5 (half the SLO budget);
    /// `None` (the default) means deadline-less requests never enter
    /// the slowlog.
    pub slow_threshold: Option<Duration>,
    /// Tail-based retention. `None` (the default) keeps the PR-8
    /// semantics: the traces ring holds head-sampled requests only.
    /// `Some` switches the traces ring to completion-time retention —
    /// slow, errored/expired, or reservoir-selected requests are kept
    /// even when unsampled.
    pub tail: Option<TailConfig>,
}

impl TracingConfig {
    /// The effective slowlog threshold for a request with the given
    /// deadline: half the deadline when one exists, otherwise the
    /// configured fallback.
    pub fn slow_threshold_for(&self, deadline: Option<Duration>) -> Option<Duration> {
        deadline.map(|d| d / 2).or(self.slow_threshold)
    }
}

/// Deterministic head sampler: a fixed-point accumulator adds
/// `rate × 10⁶` per request and samples exactly when the running sum
/// crosses a unit boundary — rate 0 never samples, rate 1 always does,
/// and any rate in between samples precisely its fraction of requests
/// with no RNG on the hot path.
pub(crate) struct Sampler {
    rate_millionths: u64,
    acc: AtomicU64,
}

impl Sampler {
    pub fn new(rate: f64) -> Self {
        Self {
            rate_millionths: (rate.clamp(0.0, 1.0) * SAMPLE_UNIT as f64).round() as u64,
            acc: AtomicU64::new(0),
        }
    }

    /// Whether the next request is head-sampled.
    pub fn sample(&self) -> bool {
        match self.rate_millionths {
            0 => false,
            r if r >= SAMPLE_UNIT => true,
            r => {
                let prev = self.acc.fetch_add(r, Ordering::Relaxed);
                (prev % SAMPLE_UNIT) + r >= SAMPLE_UNIT
            }
        }
    }
}

/// Tail-retention knobs ([`TracingConfig::tail`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailConfig {
    /// Reservoir size: the expected number of ordinary (not slow, not
    /// errored, not head-sampled) completed requests retained; the
    /// `n`-th completion is kept with probability `reservoir / n`
    /// (Algorithm R acceptance), so early traffic is fully covered and
    /// steady-state keeps a uniform sample. `0` disables the reservoir
    /// — only slow and errored requests are tail-kept.
    pub reservoir: usize,
    /// Seed of the reservoir's deterministic PRNG: the same seed over
    /// the same completion sequence keeps the same requests.
    pub seed: u64,
    /// Bound on the in-flight pending buffer. Requests arriving while
    /// it is full skip tail registration (counted, not hidden) and stay
    /// eligible for the slow/error keeps, which need no pending entry.
    pub pending_capacity: usize,
}

impl Default for TailConfig {
    fn default() -> Self {
        Self {
            reservoir: 32,
            seed: 0x5eed_1e55,
            pending_capacity: 1024,
        }
    }
}

/// Terminal outcome of one wire request, as the transport observed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Served a prediction.
    Ok,
    /// Deadline passed before compute; the ticket expired.
    Expired,
    /// Failed for any other reason (cancelled ticket, internal error).
    Failed,
}

/// Why a finished request's span tree was retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepReason {
    /// Past its slow threshold.
    Slow,
    /// Errored or expired.
    Error,
    /// Selected by the deterministic reservoir.
    Reservoir,
}

impl KeepReason {
    /// Stable wire name (the `kept` field of `/v1/traces` entries).
    pub fn as_str(self) -> &'static str {
        match self {
            KeepReason::Slow => "slow",
            KeepReason::Error => "error",
            KeepReason::Reservoir => "reservoir",
        }
    }
}

/// SplitMix64 step — the reservoir's PRNG. Hand-rolled because the
/// serving crate carries no dependencies; statistical quality is far
/// beyond what a keep/drop draw needs and the sequence is a pure
/// function of the seed, which the determinism tests rely on.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One in-flight request registered with the tail sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingSpan {
    /// The request's trace id.
    pub trace_id: String,
    /// Model the request targets.
    pub model: String,
    /// Seconds since the sampler was created, stamped at ingress.
    pub since_s: f64,
}

/// Reservoir state: completion counter plus PRNG, under one mutex so a
/// completion's (index, draw) pair is atomic — two racing completions
/// cannot observe the same index.
struct Reservoir {
    completed: u64,
    rng: u64,
}

/// Completion-time retention: a bounded pending buffer of in-flight
/// requests plus the keep decision ([`TailSampler::complete`]). Both
/// internal mutexes are leaf locks — nothing is acquired while either
/// is held.
pub(crate) struct TailSampler {
    cfg: TailConfig,
    start: Instant,
    next_key: AtomicU64,
    pending: Mutex<HashMap<u64, PendingSpan>>,
    pending_dropped: AtomicU64,
    reservoir: Mutex<Reservoir>,
}

impl TailSampler {
    pub fn new(cfg: TailConfig) -> Self {
        Self {
            cfg,
            start: Instant::now(),
            next_key: AtomicU64::new(0),
            pending: Mutex::new(HashMap::new()),
            pending_dropped: AtomicU64::new(0),
            reservoir: Mutex::new(Reservoir {
                completed: 0,
                rng: cfg.seed,
            }),
        }
    }

    /// Registers an in-flight request and returns its pending key, or
    /// `None` (counted) when the buffer is at capacity.
    pub fn register(&self, trace_id: &str, model: &str) -> Option<u64> {
        let entry = PendingSpan {
            trace_id: trace_id.to_string(),
            model: model.to_string(),
            since_s: self.start.elapsed().as_secs_f64(),
        };
        let key = self.next_key.fetch_add(1, Ordering::Relaxed);
        {
            let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
            if pending.len() >= self.cfg.pending_capacity {
                drop(pending);
                self.pending_dropped.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            pending.insert(key, entry);
        }
        Some(key)
    }

    /// Unregisters a completed request and decides whether its span
    /// tree is tail-kept. The reservoir draw advances for **every**
    /// completion — sampled or not, registered or not — so the keep
    /// sequence is a pure function of the seed and the completion
    /// order. Head-sampled requests return `None` (the head path
    /// already retains them).
    pub fn complete(
        &self,
        key: Option<u64>,
        sampled: bool,
        slow: bool,
        outcome: RequestOutcome,
    ) -> Option<KeepReason> {
        if let Some(key) = key {
            let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
            pending.remove(&key);
        }
        let reservoir_hit = {
            let mut r = self
                .reservoir
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            r.completed += 1;
            let draw = splitmix64(&mut r.rng) % r.completed;
            (draw as usize) < self.cfg.reservoir
        };
        if sampled {
            return None;
        }
        if outcome != RequestOutcome::Ok {
            return Some(KeepReason::Error);
        }
        if slow {
            return Some(KeepReason::Slow);
        }
        if reservoir_hit {
            return Some(KeepReason::Reservoir);
        }
        None
    }

    /// Snapshot of the in-flight pending buffer, ingress order not
    /// guaranteed.
    pub fn pending(&self) -> Vec<PendingSpan> {
        let pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        pending.values().cloned().collect()
    }

    /// Requests that skipped tail registration because the pending
    /// buffer was full.
    pub fn pending_dropped(&self) -> u64 {
        self.pending_dropped.load(Ordering::Relaxed)
    }
}

/// One node of a request's span tree. Children are in chronological
/// order; a node's children durations sum to **at most** its own (gaps
/// are real waiting), and exactly partition it under `compute` (an
/// `other` leaf absorbs unattributed glue).
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span name: `request`, a stage (`parse`, `queue`,
    /// `batch_assembly`, `compute`, `serialize`), `layer{i}`, an engine
    /// op name, or `other`.
    pub name: String,
    /// Wall-clock seconds this span covers.
    pub duration_s: f64,
    /// Sub-spans, chronological.
    pub children: Vec<Span>,
}

impl Span {
    /// A childless span.
    pub fn leaf(name: impl Into<String>, duration_s: f64) -> Self {
        Self {
            name: name.into(),
            duration_s,
            children: Vec::new(),
        }
    }

    /// A span with children.
    pub fn with_children(name: impl Into<String>, duration_s: f64, children: Vec<Span>) -> Self {
        Self {
            name: name.into(),
            duration_s,
            children,
        }
    }

    /// Sum of the direct children's durations.
    pub fn children_s(&self) -> f64 {
        self.children.iter().map(|c| c.duration_s).sum()
    }
}

/// Builds the compute span of a profiled forward: one child per layer
/// (each exactly partitioned into the engine's named op leaves) plus an
/// `other` leaf absorbing the unattributed glue (LayerNorms, residuals,
/// stem, classifier) — so the children sum to the compute duration
/// exactly, the invariant the span-partition tests assert.
pub fn compute_span(profile: &OpProfile) -> Span {
    let mut children: Vec<Span> = profile
        .layers
        .iter()
        .enumerate()
        .map(|(i, layer)| {
            let ops = OP_NAMES
                .iter()
                .zip(&layer.seconds)
                .map(|(name, s)| Span::leaf(*name, *s))
                .collect();
            Span::with_children(format!("layer{i}"), layer.total_s(), ops)
        })
        .collect();
    children.push(Span::leaf(
        "other",
        (profile.total_s - profile.attributed_s()).max(0.0),
    ));
    Span::with_children("compute", profile.total_s, children)
}

/// Stage timings one served request reports back through its ticket —
/// the serve-side half of the span tree the transport assembles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageReport {
    /// Seconds from enqueue to batch admission.
    pub queue_wait_s: f64,
    /// Seconds from admission to the batch starting compute.
    pub batch_assembly_s: f64,
    /// Seconds of engine compute: the batch wall for unsampled
    /// requests, the sample's own profiled forward when sampled.
    pub compute_s: f64,
    /// The full compute span with per-layer op children; `None` for
    /// unsampled requests (the transport builds a childless compute
    /// leaf from `compute_s` instead).
    pub compute: Option<Span>,
}

/// One finished request's retained span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct FinishedTrace {
    /// Global record order within the ring (drains sort by it).
    pub seq: u64,
    /// Seconds since the server started, stamped at retention.
    pub at_s: f64,
    /// The request's trace id (ingress-generated or client-supplied).
    pub trace_id: String,
    /// Model the request targeted.
    pub model: String,
    /// Whether the request was head-sampled (its compute span carries
    /// per-layer op children).
    pub sampled: bool,
    /// Why the trace was retained: `head` (head-sampled or trace-id
    /// forced), or a tail [`KeepReason`] wire name (`slow`, `error`,
    /// `reservoir`).
    pub kept: &'static str,
    /// End-to-end seconds, first request byte to response written.
    pub total_s: f64,
    /// The `request` span.
    pub root: Span,
}

/// A bounded, sharded ring of [`FinishedTrace`]s: same design as the
/// event [`crate::trace::TraceBuffer`] — writers pick a shard by thread
/// id, full shards evict their oldest entry (counted, not hidden), and
/// reads merge shards in record order. Shard mutexes are leaf locks.
pub(crate) struct SpanRing {
    start: Instant,
    seq: AtomicU64,
    dropped: AtomicU64,
    shards: Vec<Mutex<VecDeque<FinishedTrace>>>,
}

impl SpanRing {
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            shards: (0..SPAN_RING_SHARDS)
                .map(|_| {
                    Mutex::new(VecDeque::with_capacity(
                        SPAN_RING_CAPACITY / SPAN_RING_SHARDS,
                    ))
                })
                .collect(),
        }
    }

    /// Retains one finished trace, assigning its ring sequence number
    /// and retention timestamp.
    pub fn record(
        &self,
        trace_id: String,
        model: String,
        sampled: bool,
        kept: &'static str,
        total_s: f64,
        root: Span,
    ) {
        let trace = FinishedTrace {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            at_s: self.start.elapsed().as_secs_f64(),
            trace_id,
            model,
            sampled,
            kept,
            total_s,
            root,
        };
        let shard_idx = {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            (h.finish() as usize) % self.shards.len().max(1)
        };
        if let Some(shard) = self.shards.get(shard_idx) {
            let mut ring = shard.lock().unwrap_or_else(PoisonError::into_inner);
            if ring.len() >= SPAN_RING_CAPACITY / SPAN_RING_SHARDS {
                ring.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(trace);
        }
    }

    /// Drains every shard and returns the traces in record order.
    pub fn take(&self) -> Vec<FinishedTrace> {
        let mut traces: Vec<FinishedTrace> = Vec::new();
        for shard in &self.shards {
            let mut ring = shard.lock().unwrap_or_else(PoisonError::into_inner);
            traces.extend(ring.drain(..));
        }
        traces.sort_by_key(|t| t.seq);
        traces
    }

    /// Copies every shard's traces in record order without draining —
    /// the `?peek=1` read.
    pub fn peek(&self) -> Vec<FinishedTrace> {
        let mut traces: Vec<FinishedTrace> = Vec::new();
        for shard in &self.shards {
            let ring = shard.lock().unwrap_or_else(PoisonError::into_inner);
            traces.extend(ring.iter().cloned());
        }
        traces.sort_by_key(|t| t.seq);
        traces
    }

    /// Traces evicted before being drained, since the server started.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitcod_engine::{LayerOps, OP_COUNT};

    fn trace_root() -> Span {
        Span::with_children(
            "request",
            1.0,
            vec![Span::leaf("parse", 0.1), Span::leaf("compute", 0.7)],
        )
    }

    #[test]
    fn sampler_rate_bounds_and_fraction() {
        assert!(!Sampler::new(0.0).sample());
        assert!(Sampler::new(1.0).sample());
        let s = Sampler::new(0.25);
        let hits = (0..1000).filter(|_| s.sample()).count();
        assert_eq!(hits, 250, "deterministic quarter sampling");
        // Out-of-range rates clamp instead of misbehaving.
        assert!(Sampler::new(7.5).sample());
        assert!(!Sampler::new(-1.0).sample());
    }

    #[test]
    fn slow_threshold_prefers_half_the_deadline() {
        let cfg = TracingConfig {
            slow_threshold: Some(Duration::from_secs(3)),
            ..Default::default()
        };
        assert_eq!(
            cfg.slow_threshold_for(Some(Duration::from_secs(4))),
            Some(Duration::from_secs(2))
        );
        assert_eq!(cfg.slow_threshold_for(None), Some(Duration::from_secs(3)));
        assert_eq!(TracingConfig::default().slow_threshold_for(None), None);
    }

    #[test]
    fn compute_span_partitions_exactly() {
        let mut layer = LayerOps::default();
        for i in 0..OP_COUNT {
            layer.seconds[i] = 0.001 * (i + 1) as f64;
        }
        let profile = OpProfile {
            layers: vec![layer, layer],
            total_s: 0.1,
        };
        let span = compute_span(&profile);
        assert_eq!(span.name, "compute");
        assert!((span.duration_s - 0.1).abs() < 1e-12);
        // Layers plus the `other` leaf partition compute exactly.
        assert_eq!(span.children.len(), 3);
        assert!((span.children_s() - span.duration_s).abs() < 1e-9);
        for (i, layer_span) in span.children[..2].iter().enumerate() {
            assert_eq!(layer_span.name, format!("layer{i}"));
            assert_eq!(layer_span.children.len(), OP_COUNT);
            assert!((layer_span.children_s() - layer_span.duration_s).abs() < 1e-9);
            let names: Vec<&str> = layer_span
                .children
                .iter()
                .map(|c| c.name.as_str())
                .collect();
            assert_eq!(names, OP_NAMES.to_vec());
        }
        assert_eq!(span.children[2].name, "other");
    }

    /// Replays `n` ordinary completions (no pending key, unsampled,
    /// not slow, outcome Ok) and returns the kept completion indices.
    fn reservoir_keeps(cfg: TailConfig, n: usize) -> Vec<usize> {
        let tail = TailSampler::new(cfg);
        (0..n)
            .filter(|_| {
                tail.complete(None, false, false, RequestOutcome::Ok) == Some(KeepReason::Reservoir)
            })
            .collect()
    }

    #[test]
    fn tail_reservoir_is_deterministic_per_seed() {
        let cfg = TailConfig {
            reservoir: 8,
            seed: 42,
            pending_capacity: 64,
        };
        let a = reservoir_keeps(cfg, 500);
        let b = reservoir_keeps(cfg, 500);
        assert_eq!(a, b, "same seed, same completion order, same keeps");
        // The first `reservoir` completions are always kept (n ≤ k ⇒
        // draw % n < k), and acceptance decays like k/n afterwards.
        assert_eq!(&a[..8], &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(a.len() < 200, "k/n acceptance thins the tail");
        let c = reservoir_keeps(TailConfig { seed: 43, ..cfg }, 500);
        assert_ne!(a, c, "a different seed keeps a different sample");
    }

    #[test]
    fn tail_always_keeps_slow_and_errored_even_when_reservoir_is_off() {
        let tail = TailSampler::new(TailConfig {
            reservoir: 0,
            seed: 1,
            pending_capacity: 4,
        });
        for _ in 0..100 {
            assert_eq!(
                tail.complete(None, false, true, RequestOutcome::Ok),
                Some(KeepReason::Slow)
            );
            assert_eq!(
                tail.complete(None, false, false, RequestOutcome::Expired),
                Some(KeepReason::Error)
            );
            assert_eq!(
                tail.complete(None, false, false, RequestOutcome::Failed),
                Some(KeepReason::Error)
            );
            // Ordinary completions are dropped; head-sampled ones are
            // the head path's responsibility even when slow.
            assert_eq!(tail.complete(None, false, false, RequestOutcome::Ok), None);
            assert_eq!(tail.complete(None, true, true, RequestOutcome::Ok), None);
        }
    }

    #[test]
    fn tail_pending_buffer_is_bounded_under_storm() {
        let tail = TailSampler::new(TailConfig {
            reservoir: 4,
            seed: 7,
            pending_capacity: 8,
        });
        let keys: Vec<Option<u64>> = (0..100)
            .map(|i| tail.register(&format!("t{i}"), "m"))
            .collect();
        assert_eq!(tail.pending().len(), 8, "storm cannot grow the buffer");
        assert_eq!(tail.pending_dropped(), 92);
        assert_eq!(keys.iter().filter(|k| k.is_some()).count(), 8);
        // Completion drains the buffer; unregistered requests still
        // complete (their key is None) without touching it.
        for key in keys {
            tail.complete(key, false, false, RequestOutcome::Ok);
        }
        assert!(tail.pending().is_empty());
    }

    #[test]
    fn ring_records_in_order_peeks_without_draining_and_counts_evictions() {
        let ring = SpanRing::new();
        let per_shard = SPAN_RING_CAPACITY / SPAN_RING_SHARDS;
        for i in 0..per_shard + 5 {
            ring.record(
                format!("t{i}"),
                "m".into(),
                false,
                "head",
                0.5,
                trace_root(),
            );
        }
        let peeked = ring.peek();
        assert_eq!(peeked.len(), per_shard);
        assert_eq!(ring.dropped(), 5);
        assert!(peeked.windows(2).all(|w| w[0].seq < w[1].seq));
        // Oldest evicted; peek left everything in place for take.
        assert_eq!(peeked.first().map(|t| t.trace_id.as_str()), Some("t5"));
        assert_eq!(ring.take(), peeked);
        assert!(ring.take().is_empty());
    }
}
