//! Completion tickets: the submit/poll half of the client API.
//!
//! [`crate::Client::submit`] returns a [`Ticket`] immediately; the
//! prediction arrives later, when a worker drains the batch the request
//! was assembled into. A ticket resolves **exactly once**: the worker
//! completes it once (enforced by a panic on double completion), and the
//! prediction can be taken out once — by [`Ticket::wait`] or the first
//! successful [`Ticket::try_take`].

use std::sync::{Arc, Condvar, Mutex};

use vitcod_engine::Prediction;

enum State {
    /// Not yet served.
    Pending,
    /// Served; prediction waiting to be taken.
    Ready(Prediction),
    /// Prediction taken by the client.
    Taken,
    /// The server shut down before serving the request.
    Cancelled,
}

pub(crate) struct TicketInner {
    state: Mutex<State>,
    ready: Condvar,
}

impl TicketInner {
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(State::Pending),
            ready: Condvar::new(),
        })
    }

    /// Resolves the ticket. Each ticket is completed exactly once; a
    /// second completion is a serving-layer bug and panics.
    pub fn complete(&self, prediction: Prediction) {
        let mut state = self.state.lock().expect("ticket poisoned");
        match *state {
            State::Pending => *state = State::Ready(prediction),
            _ => panic!("ticket completed twice"),
        }
        self.ready.notify_all();
    }

    /// Marks the ticket as never-to-arrive (server shutdown).
    pub fn cancel(&self) {
        let mut state = self.state.lock().expect("ticket poisoned");
        if matches!(*state, State::Pending) {
            *state = State::Cancelled;
            self.ready.notify_all();
        }
    }
}

/// A handle to one in-flight classification request.
///
/// Obtained from [`crate::Client::submit`]; poll with
/// [`Ticket::try_take`] or block with [`Ticket::wait`].
pub struct Ticket {
    inner: Arc<TicketInner>,
}

impl Ticket {
    pub(crate) fn new(inner: Arc<TicketInner>) -> Self {
        Self { inner }
    }

    /// Takes the prediction if it has arrived. Returns `Some` exactly
    /// once; before completion — and forever after the first `Some` —
    /// it returns `None`.
    pub fn try_take(&self) -> Option<Prediction> {
        let mut state = self.inner.state.lock().expect("ticket poisoned");
        if matches!(*state, State::Ready(_)) {
            match std::mem::replace(&mut *state, State::Taken) {
                State::Ready(p) => Some(p),
                _ => unreachable!(),
            }
        } else {
            None
        }
    }

    /// Whether the prediction has arrived and has not been taken yet.
    pub fn is_ready(&self) -> bool {
        matches!(
            *self.inner.state.lock().expect("ticket poisoned"),
            State::Ready(_)
        )
    }

    /// Blocks until the prediction arrives and takes it. Returns `None`
    /// if the server shut down before serving the request (or the
    /// prediction was already taken via [`Ticket::try_take`]).
    pub fn wait(self) -> Option<Prediction> {
        let mut state = self.inner.state.lock().expect("ticket poisoned");
        loop {
            match *state {
                State::Pending => {
                    state = self.inner.ready.wait(state).expect("ticket poisoned");
                }
                State::Ready(_) => {
                    return match std::mem::replace(&mut *state, State::Taken) {
                        State::Ready(p) => Some(p),
                        _ => unreachable!(),
                    };
                }
                State::Taken | State::Cancelled => return None,
            }
        }
    }
}
