//! Completion tickets: the submit/poll half of the client API.
//!
//! [`crate::Client::submit`] returns a [`Ticket`] immediately; the
//! prediction arrives later, when a worker drains the batch the request
//! was assembled into. A ticket resolves **exactly once**: the worker
//! completes it once (a second completion of a served ticket is a
//! serving-layer bug and panics), and the prediction can be taken out
//! once — by [`Ticket::wait`], [`Ticket::wait_timeout`] or the first
//! successful [`Ticket::try_take`].
//!
//! Two terminal states besides `Taken` exist: **cancelled** (the server
//! shut down abnormally before serving the request) and **timed out**
//! (the request's deadline passed while it was still waiting for a
//! batch slot — see [`crate::Client::submit_with_timeout`]). Both
//! surface as [`RequestError`] from the deadline-aware waits.
//!
//! The state mutex recovers from poisoning (`PoisonError::into_inner`):
//! every transition is a single assignment of the `State` enum, so a
//! panicking thread cannot leave the state half-written, and a poisoned
//! ticket must still resolve its waiters.

use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use vitcod_engine::Prediction;

use crate::spans::StageReport;

/// Why a deadline-aware wait did not produce a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// The deadline passed before a prediction arrived — either the
    /// caller's wait budget ran out, or the batcher expired the request
    /// server-side (it never occupied a batch slot past its deadline).
    TimedOut,
    /// The request will never resolve: the server shut down abnormally
    /// before serving it, or its prediction was already taken.
    Cancelled,
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::TimedOut => write!(f, "request timed out"),
            RequestError::Cancelled => write!(f, "request cancelled"),
        }
    }
}

impl std::error::Error for RequestError {}

enum State {
    /// Not yet served.
    Pending,
    /// Served; prediction waiting to be taken.
    Ready(Prediction),
    /// Prediction taken by the client.
    Taken,
    /// The server shut down before serving the request.
    Cancelled,
    /// The request's deadline expired before it was batched.
    TimedOut,
}

pub(crate) struct TicketInner {
    state: Mutex<State>,
    ready: Condvar,
    /// Per-stage timing filled in by the worker just before completion;
    /// a separate leaf mutex so span bookkeeping never contends with
    /// waiters parked on `state`.
    report: Mutex<Option<StageReport>>,
}

impl TicketInner {
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(State::Pending),
            ready: Condvar::new(),
            report: Mutex::new(None),
        })
    }

    /// Attaches the per-stage timing report. Called by the worker before
    /// [`TicketInner::complete`] so a woken waiter always observes it.
    pub fn set_report(&self, report: StageReport) {
        *self.report.lock().unwrap_or_else(PoisonError::into_inner) = Some(report);
    }

    /// Resolves the ticket. A pending ticket becomes ready; an expired
    /// or cancelled ticket swallows the prediction (its client already
    /// gave up — the race is benign). Completing a *served* ticket
    /// twice is a serving-layer bug and panics.
    pub fn complete(&self, prediction: Prediction) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        match *state {
            State::Pending => *state = State::Ready(prediction),
            State::TimedOut | State::Cancelled => return,
            // vitcod-lint: allow(V001, double-completion is a batcher bug; the contract is to fail loudly in the offending worker)
            State::Ready(_) | State::Taken => panic!("ticket completed twice"),
        }
        self.ready.notify_all();
    }

    /// Marks the ticket as never-to-arrive (server shutdown).
    pub fn cancel(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if matches!(*state, State::Pending) {
            *state = State::Cancelled;
            self.ready.notify_all();
        }
    }

    /// Marks the ticket as expired (its deadline passed while it was
    /// still waiting for a batch slot). No-op once resolved.
    pub fn expire(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if matches!(*state, State::Pending) {
            *state = State::TimedOut;
            self.ready.notify_all();
        }
    }
}

/// A handle to one in-flight classification request.
///
/// Obtained from [`crate::Client::submit`]; poll with
/// [`Ticket::try_take`], block with [`Ticket::wait`], or bound the wait
/// with [`Ticket::wait_timeout`].
pub struct Ticket {
    inner: Arc<TicketInner>,
}

impl Ticket {
    pub(crate) fn new(inner: Arc<TicketInner>) -> Self {
        Self { inner }
    }

    /// Takes the prediction if it has arrived. Returns `Some` exactly
    /// once; before completion — and forever after the first `Some` —
    /// it returns `None`.
    pub fn try_take(&self) -> Option<Prediction> {
        let mut state = self
            .inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match std::mem::replace(&mut *state, State::Taken) {
            State::Ready(p) => Some(p),
            other => {
                *state = other;
                None
            }
        }
    }

    /// Takes the per-stage timing report, if the worker attached one.
    /// Present after a successful wait/take on every served request
    /// (span-tree detail only on sampled ones); `None` before service
    /// and forever after the first `Some`.
    pub fn take_stage_report(&self) -> Option<StageReport> {
        self.inner
            .report
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }

    /// Whether the prediction has arrived and has not been taken yet.
    pub fn is_ready(&self) -> bool {
        matches!(
            *self
                .inner
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
            State::Ready(_)
        )
    }

    /// Blocks until the prediction arrives and takes it. Returns `None`
    /// if the request will never resolve — server shutdown, a
    /// server-side deadline expiry, or a prediction already taken via
    /// [`Ticket::try_take`].
    pub fn wait(self) -> Option<Prediction> {
        let mut state = self
            .inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if matches!(*state, State::Pending) {
                state = self
                    .inner
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            return match std::mem::replace(&mut *state, State::Taken) {
                State::Ready(p) => Some(p),
                other => {
                    *state = other;
                    None
                }
            };
        }
    }

    /// Blocks until the prediction arrives — but at most `dur` — and
    /// takes it. The in-process mirror of the wire path's `timeout_ms`.
    ///
    /// # Errors
    ///
    /// [`RequestError::TimedOut`] when `dur` elapses first or the
    /// batcher expired the request server-side;
    /// [`RequestError::Cancelled`] when the server shut down before
    /// serving it (or the prediction was already taken). A local
    /// timeout leaves the ticket intact: a later wait can still take a
    /// prediction that arrives afterwards.
    pub fn wait_timeout(&self, dur: Duration) -> Result<Prediction, RequestError> {
        let deadline = Instant::now() + dur;
        let mut state = self
            .inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if matches!(*state, State::Pending) {
                let now = Instant::now();
                if now >= deadline {
                    return Err(RequestError::TimedOut);
                }
                let (guard, _) = self
                    .inner
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                state = guard;
                continue;
            }
            return match std::mem::replace(&mut *state, State::Taken) {
                State::Ready(p) => Ok(p),
                other => {
                    let err = match other {
                        State::TimedOut => RequestError::TimedOut,
                        _ => RequestError::Cancelled,
                    };
                    *state = other;
                    Err(err)
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prediction() -> Prediction {
        Prediction {
            class: 1,
            logits: vec![0.0, 1.0],
        }
    }

    #[test]
    fn wait_timeout_times_out_then_takes_late_prediction() {
        let inner = TicketInner::new();
        let ticket = Ticket::new(Arc::clone(&inner));
        let t = Instant::now();
        assert_eq!(
            ticket.wait_timeout(Duration::from_millis(10)),
            Err(RequestError::TimedOut)
        );
        assert!(t.elapsed() >= Duration::from_millis(10));
        // A local timeout abandons nothing: the ticket still resolves.
        inner.complete(prediction());
        assert_eq!(
            ticket.wait_timeout(Duration::from_secs(1)),
            Ok(prediction())
        );
        // Exactly once.
        assert_eq!(
            ticket.wait_timeout(Duration::from_millis(1)),
            Err(RequestError::Cancelled)
        );
    }

    #[test]
    fn expire_resolves_waiters_and_swallows_late_completion() {
        let inner = TicketInner::new();
        let ticket = Ticket::new(Arc::clone(&inner));
        inner.expire();
        assert_eq!(
            ticket.wait_timeout(Duration::from_secs(10)),
            Err(RequestError::TimedOut)
        );
        // A prediction racing in after expiry is dropped, not a panic.
        inner.complete(prediction());
        assert!(ticket.try_take().is_none());
        assert!(ticket.wait().is_none());
    }

    #[test]
    fn cancel_beats_expire_and_vice_versa_without_flapping() {
        let inner = TicketInner::new();
        inner.cancel();
        inner.expire(); // no-op on a resolved ticket
        let ticket = Ticket::new(Arc::clone(&inner));
        assert_eq!(
            ticket.wait_timeout(Duration::from_millis(1)),
            Err(RequestError::Cancelled)
        );
    }
}
