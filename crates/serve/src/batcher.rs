//! Dynamic batch assembly: requests → full or deadline-flushed batches.
//!
//! The assembler accumulates queued requests per model and emits a
//! [`Batch`] when either trigger fires, whichever comes first:
//!
//! * **size** — a model's pending set reaches
//!   [`BatchConfig::max_batch_size`] (emitted immediately, keeping the
//!   engine's datapath fed with full batches);
//! * **deadline** — the model's *oldest* pending request has waited
//!   [`BatchConfig::max_wait`] (emitted partially filled, bounding
//!   tail latency under light traffic).
//!
//! The assembler is pure bookkeeping — no threads, no clocks of its own
//! (callers pass `Instant`s) — which is what makes its flush semantics
//! unit-testable.

use std::sync::Arc;
use std::time::{Duration, Instant};

use vitcod_engine::Engine;
use vitcod_tensor::Matrix;

use crate::ticket::TicketInner;

/// Serving-layer tuning knobs; see [`crate::Server::start`].
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Largest batch handed to an engine (size-trigger threshold).
    pub max_batch_size: usize,
    /// Longest a request may wait for co-batching before a partial
    /// batch is flushed (deadline trigger).
    pub max_wait: Duration,
    /// Bound of the ingress request queue; producers block (not drop)
    /// when it is full.
    pub queue_capacity: usize,
    /// Worker threads draining assembled batches through the engines.
    pub workers: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch_size: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 64,
            workers: 2,
        }
    }
}

impl BatchConfig {
    pub(crate) fn validated(self) -> Self {
        assert!(self.max_batch_size >= 1, "max_batch_size must be >= 1");
        assert!(self.queue_capacity >= 1, "queue_capacity must be >= 1");
        assert!(self.workers >= 1, "workers must be >= 1");
        self
    }
}

/// One queued classification request.
pub(crate) struct Request {
    pub model: String,
    pub tokens: Matrix,
    pub ticket: Arc<TicketInner>,
    pub engine: Arc<Engine>,
    pub enqueued: Instant,
}

/// An assembled batch, ready for a worker to drain through its engine.
pub(crate) struct Batch {
    pub model: String,
    pub engine: Arc<Engine>,
    pub requests: Vec<Request>,
}

/// Per-model pending set with its flush deadline.
struct PendingModel {
    model: String,
    requests: Vec<Request>,
    deadline: Instant,
}

/// The dynamic batch assembler; see the [module docs](self).
pub(crate) struct BatchAssembler {
    max_batch: usize,
    max_wait: Duration,
    pending: Vec<PendingModel>,
}

impl BatchAssembler {
    pub fn new(max_batch: usize, max_wait: Duration) -> Self {
        Self {
            max_batch,
            max_wait,
            pending: Vec::new(),
        }
    }

    /// Accepts one request; returns a full batch when the request tops
    /// its model's pending set up to `max_batch`.
    pub fn offer(&mut self, request: Request, now: Instant) -> Option<Batch> {
        let idx = match self.pending.iter().position(|p| p.model == request.model) {
            Some(idx) => idx,
            None => {
                self.pending.push(PendingModel {
                    model: request.model.clone(),
                    requests: Vec::with_capacity(self.max_batch),
                    // The deadline belongs to the oldest request.
                    deadline: now + self.max_wait,
                });
                self.pending.len() - 1
            }
        };
        self.pending[idx].requests.push(request);
        if self.pending[idx].requests.len() >= self.max_batch {
            return Some(Self::emit(self.pending.swap_remove(idx)));
        }
        None
    }

    /// Earliest pending flush deadline — what the batcher thread sleeps
    /// toward; `None` when nothing is pending.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.pending.iter().map(|p| p.deadline).min()
    }

    /// Flushes every model whose deadline has passed, as (possibly
    /// partial) batches.
    pub fn take_due(&mut self, now: Instant) -> Vec<Batch> {
        let mut due = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].deadline <= now {
                due.push(Self::emit(self.pending.swap_remove(i)));
            } else {
                i += 1;
            }
        }
        due
    }

    /// Flushes everything (shutdown path — no request is dropped).
    pub fn drain(&mut self) -> Vec<Batch> {
        std::mem::take(&mut self.pending)
            .into_iter()
            .map(Self::emit)
            .collect()
    }

    fn emit(p: PendingModel) -> Batch {
        Batch {
            model: p.model,
            engine: Arc::clone(&p.requests[0].engine),
            requests: p.requests,
        }
    }
}

/// If the batcher thread unwinds (a poisoned-lock panic) with requests
/// still pending, their clients must not hang in `Ticket::wait`: the
/// assembler resolves every still-held ticket to "cancelled" on drop.
/// On the normal shutdown path `drain()` has already emptied `pending`,
/// so this is a no-op.
impl Drop for BatchAssembler {
    fn drop(&mut self) {
        for p in &self.pending {
            for r in &p.requests {
                r.ticket.cancel();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vitcod_autograd::ParamStore;
    use vitcod_model::{ViTConfig, VisionTransformer};

    fn test_engine() -> Arc<Engine> {
        let cfg = ViTConfig::deit_tiny().reduced_for_training();
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let vit = VisionTransformer::new(&cfg, 4, 2, &mut store, &mut rng);
        Arc::new(Engine::builder(vitcod_engine::CompiledVit::from_parts(&vit, &store)).build())
    }

    fn request(model: &str, engine: &Arc<Engine>, now: Instant) -> Request {
        Request {
            model: model.to_string(),
            tokens: Matrix::zeros(1, 1),
            ticket: TicketInner::new(),
            engine: Arc::clone(engine),
            enqueued: now,
        }
    }

    #[test]
    fn size_trigger_emits_exactly_at_max_batch() {
        let engine = test_engine();
        let mut a = BatchAssembler::new(3, Duration::from_secs(60));
        let now = Instant::now();
        assert!(a.offer(request("m", &engine, now), now).is_none());
        assert!(a.offer(request("m", &engine, now), now).is_none());
        let batch = a.offer(request("m", &engine, now), now).expect("full");
        assert_eq!(batch.requests.len(), 3);
        assert_eq!(batch.model, "m");
        assert!(a.next_deadline().is_none(), "pending set consumed");
    }

    #[test]
    fn deadline_belongs_to_oldest_request_and_flushes_partial() {
        let engine = test_engine();
        let wait = Duration::from_millis(50);
        let mut a = BatchAssembler::new(8, wait);
        let t0 = Instant::now();
        a.offer(request("m", &engine, t0), t0);
        // A later request must not push the deadline back.
        let t1 = t0 + Duration::from_millis(30);
        a.offer(request("m", &engine, t1), t1);
        assert_eq!(a.next_deadline(), Some(t0 + wait));
        assert!(a.take_due(t0 + Duration::from_millis(49)).is_empty());
        let due = a.take_due(t0 + wait);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].requests.len(), 2, "partial batch flushed");
    }

    #[test]
    fn models_batch_independently() {
        let engine = test_engine();
        let mut a = BatchAssembler::new(2, Duration::from_secs(60));
        let now = Instant::now();
        assert!(a.offer(request("a", &engine, now), now).is_none());
        assert!(a.offer(request("b", &engine, now), now).is_none());
        // Model a fills without model b's request counting toward it.
        let full = a.offer(request("a", &engine, now), now).expect("a full");
        assert_eq!(full.model, "a");
        let rest = a.drain();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].model, "b");
        assert_eq!(rest[0].requests.len(), 1);
    }
}
