//! Dynamic batch assembly: requests → full or deadline-flushed batches,
//! drained round-robin across models.
//!
//! The assembler accumulates queued requests per model and promotes a
//! pending set to a ready [`Batch`] when either trigger fires,
//! whichever comes first:
//!
//! * **size** — a model's pending set reaches
//!   [`BatchConfig::max_batch_size`] (promoted immediately, keeping the
//!   engine's datapath fed with full batches);
//! * **deadline** — the model's *oldest* pending request has waited
//!   [`BatchConfig::max_wait`] (promoted partially filled, bounding
//!   tail latency under light traffic).
//!
//! Two serving properties live here rather than in the threads:
//!
//! * **Request deadlines** — a request carrying a deadline
//!   ([`crate::Client::submit_with_timeout`]) never occupies a batch
//!   slot past it: expired requests are pruned at every promotion and
//!   surfaced via [`BatchAssembler::take_expired`] so the server can
//!   resolve their tickets as timed out.
//! * **Round-robin fairness** — ready batches are handed out by
//!   [`BatchAssembler::next_ready`] in model rotation, so a hot model
//!   with a deep ready backlog cannot starve a light one: between two
//!   of the hot model's batches every other model with ready work gets
//!   a turn.
//!
//! The assembler is pure bookkeeping — no threads, no clocks of its own
//! (callers pass `Instant`s) — which is what makes its flush semantics
//! unit-testable.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use vitcod_engine::Engine;
use vitcod_tensor::Matrix;

use crate::ticket::TicketInner;

/// Serving-layer tuning knobs; see [`crate::Server::start`].
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Largest batch handed to an engine (size-trigger threshold).
    pub max_batch_size: usize,
    /// Longest a request may wait for co-batching before a partial
    /// batch is flushed (deadline trigger).
    pub max_wait: Duration,
    /// Bound of the ingress request queue; producers block (not drop)
    /// when it is full.
    pub queue_capacity: usize,
    /// Worker threads draining assembled batches through the engines.
    pub workers: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch_size: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 64,
            workers: 2,
        }
    }
}

impl BatchConfig {
    pub(crate) fn validated(self) -> Self {
        assert!(self.max_batch_size >= 1, "max_batch_size must be >= 1");
        assert!(self.queue_capacity >= 1, "queue_capacity must be >= 1");
        assert!(self.workers >= 1, "workers must be >= 1");
        self
    }
}

/// One queued classification request.
pub(crate) struct Request {
    pub model: String,
    pub tokens: Matrix,
    pub ticket: Arc<TicketInner>,
    pub engine: Arc<Engine>,
    pub enqueued: Instant,
    /// When the assembler admitted the request (stamped by
    /// [`BatchAssembler::offer`]); `enqueued → admitted` is the
    /// queue-wait stage of the request's latency breakdown.
    pub admitted: Option<Instant>,
    /// Expiry deadline; past it the request resolves as timed out
    /// instead of occupying a batch slot. `None` waits indefinitely.
    pub deadline: Option<Instant>,
    /// Whether the request was head-sampled at ingress: its batch runs
    /// the engine's profiled forward and its ticket reports a compute
    /// span with per-layer op children.
    pub sampled: bool,
}

impl Request {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

/// An assembled batch, ready for a worker to drain through its engine.
pub(crate) struct Batch {
    pub model: String,
    pub engine: Arc<Engine>,
    pub requests: Vec<Request>,
}

/// Per-engine pending set with its flush deadline. Keyed by the engine
/// `Arc` identity, not just the model id: across a hot reload, requests
/// submitted against the old and new weights must never share a batch
/// (a batch runs through exactly one engine).
struct PendingSet {
    model: String,
    engine: Arc<Engine>,
    requests: Vec<Request>,
    deadline: Instant,
}

/// A model's queue of ready batches, one slot in the round-robin
/// rotation.
struct ReadySet {
    model: String,
    batches: VecDeque<Batch>,
}

/// The dynamic batch assembler; see the [module docs](self).
pub(crate) struct BatchAssembler {
    max_batch: usize,
    max_wait: Duration,
    pending: Vec<PendingSet>,
    /// Round-robin rotation: [`BatchAssembler::next_ready`] pops one
    /// batch from the front model, then rotates it to the back.
    ready: VecDeque<ReadySet>,
    /// Requests pruned past their deadline, awaiting
    /// [`BatchAssembler::take_expired`].
    expired: Vec<Request>,
    /// Promotions (model, batch size) since the last
    /// [`BatchAssembler::take_promoted`] — the batcher drains these
    /// into the trace ring.
    promoted: Vec<(String, usize)>,
}

impl BatchAssembler {
    pub fn new(max_batch: usize, max_wait: Duration) -> Self {
        Self {
            max_batch,
            max_wait,
            pending: Vec::new(),
            ready: VecDeque::new(),
            expired: Vec::new(),
            promoted: Vec::new(),
        }
    }

    /// Accepts one request, stamping its admission time (the end of the
    /// queue-wait stage). Already-expired requests go straight to the
    /// expired list; a request that tops its engine's pending set up to
    /// `max_batch` promotes it to the ready rotation.
    pub fn offer(&mut self, mut request: Request, now: Instant) {
        if request.expired(now) {
            self.expired.push(request);
            return;
        }
        request.admitted = Some(now);
        let idx = match self
            .pending
            .iter()
            .position(|p| p.model == request.model && Arc::ptr_eq(&p.engine, &request.engine))
        {
            Some(idx) => idx,
            None => {
                self.pending.push(PendingSet {
                    model: request.model.clone(),
                    engine: Arc::clone(&request.engine),
                    requests: Vec::with_capacity(self.max_batch),
                    // The flush deadline belongs to the oldest request.
                    deadline: now + self.max_wait,
                });
                self.pending.len() - 1
            }
        };
        let full = match self.pending.get_mut(idx) {
            Some(set) => {
                set.requests.push(request);
                set.requests.len() >= self.max_batch
            }
            None => false,
        };
        if full {
            let set = self.pending.swap_remove(idx);
            self.promote(set, now);
        }
    }

    /// Earliest pending deadline — flush or request expiry, whichever
    /// comes first — what the batcher thread sleeps toward; `None` when
    /// nothing is pending.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.pending
            .iter()
            .flat_map(|p| {
                std::iter::once(p.deadline).chain(p.requests.iter().filter_map(|r| r.deadline))
            })
            .min()
    }

    /// Advances the clock: prunes expired requests out of every pending
    /// set and promotes sets whose flush deadline has passed.
    pub fn poll(&mut self, now: Instant) {
        let mut i = 0;
        while let Some(p) = self.pending.get_mut(i) {
            let mut j = 0;
            while let Some(r) = p.requests.get(j) {
                if r.expired(now) {
                    self.expired.push(p.requests.swap_remove(j));
                } else {
                    j += 1;
                }
            }
            if p.requests.is_empty() {
                self.pending.swap_remove(i);
            } else if p.deadline <= now {
                let set = self.pending.swap_remove(i);
                self.promote(set, now);
            } else {
                i += 1;
            }
        }
    }

    /// Promotes every remaining pending set regardless of deadline (the
    /// shutdown path — accepted work is never dropped, though requests
    /// already past their expiry still resolve as timed out).
    pub fn flush_all(&mut self, now: Instant) {
        for set in std::mem::take(&mut self.pending) {
            self.promote(set, now);
        }
    }

    /// Whether a batch is ready to dispatch.
    pub fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }

    /// Requests currently buffered (pending sets + ready batches) —
    /// the batcher bounds this to keep backpressure at the ingress
    /// queue meaningful.
    pub fn buffered(&self) -> usize {
        self.pending.iter().map(|p| p.requests.len()).sum::<usize>()
            + self
                .ready
                .iter()
                .flat_map(|r| r.batches.iter())
                .map(|b| b.requests.len())
                .sum::<usize>()
    }

    /// Pops the next ready batch, rotating round-robin across models.
    pub fn next_ready(&mut self) -> Option<Batch> {
        let mut set = self.ready.pop_front()?;
        // Ready sets are created non-empty and retired when drained, so
        // this pop always yields; `?` keeps the invariant panic-free.
        let batch = set.batches.pop_front()?;
        if !set.batches.is_empty() {
            self.ready.push_back(set);
        }
        Some(batch)
    }

    /// Takes the requests pruned past their deadline since the last
    /// call; the server resolves their tickets as timed out.
    pub fn take_expired(&mut self) -> Vec<Request> {
        std::mem::take(&mut self.expired)
    }

    /// Takes the (model, batch size) promotions since the last call;
    /// the batcher records them as trace events.
    pub fn take_promoted(&mut self) -> Vec<(String, usize)> {
        std::mem::take(&mut self.promoted)
    }

    /// Moves a pending set into the ready rotation, pruning requests
    /// that expired since they were accepted.
    fn promote(&mut self, mut set: PendingSet, now: Instant) {
        let mut i = 0;
        while let Some(r) = set.requests.get(i) {
            if r.expired(now) {
                self.expired.push(set.requests.swap_remove(i));
            } else {
                i += 1;
            }
        }
        if set.requests.is_empty() {
            return;
        }
        self.promoted.push((set.model.clone(), set.requests.len()));
        let batch = Batch {
            model: set.model,
            engine: set.engine,
            requests: set.requests,
        };
        match self.ready.iter_mut().find(|r| r.model == batch.model) {
            Some(ready) => ready.batches.push_back(batch),
            None => self.ready.push_back(ReadySet {
                model: batch.model.clone(),
                batches: VecDeque::from([batch]),
            }),
        }
    }
}

/// If the batcher thread unwinds (a poisoned-lock panic) with requests
/// still held, their clients must not hang in `Ticket::wait`: the
/// assembler resolves every still-held ticket on drop — pending and
/// ready requests as cancelled, pruned ones as timed out. On the normal
/// shutdown path everything has already been handed out, so this is a
/// no-op.
impl Drop for BatchAssembler {
    fn drop(&mut self) {
        for p in &self.pending {
            for r in &p.requests {
                r.ticket.cancel();
            }
        }
        for set in &self.ready {
            for b in &set.batches {
                for r in &b.requests {
                    r.ticket.cancel();
                }
            }
        }
        for r in &self.expired {
            r.ticket.expire();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vitcod_autograd::ParamStore;
    use vitcod_model::{ViTConfig, VisionTransformer};

    fn test_engine() -> Arc<Engine> {
        let cfg = ViTConfig::deit_tiny().reduced_for_training();
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let vit = VisionTransformer::new(&cfg, 4, 2, &mut store, &mut rng);
        Arc::new(Engine::builder(vitcod_engine::CompiledVit::from_parts(&vit, &store)).build())
    }

    fn request(model: &str, engine: &Arc<Engine>, now: Instant) -> Request {
        Request {
            model: model.to_string(),
            tokens: Matrix::zeros(1, 1),
            ticket: TicketInner::new(),
            engine: Arc::clone(engine),
            enqueued: now,
            admitted: None,
            deadline: None,
            sampled: false,
        }
    }

    fn deadlined(model: &str, engine: &Arc<Engine>, now: Instant, timeout: Duration) -> Request {
        Request {
            deadline: Some(now + timeout),
            ..request(model, engine, now)
        }
    }

    #[test]
    fn size_trigger_promotes_exactly_at_max_batch() {
        let engine = test_engine();
        let mut a = BatchAssembler::new(3, Duration::from_secs(60));
        let now = Instant::now();
        a.offer(request("m", &engine, now), now);
        a.offer(request("m", &engine, now), now);
        assert!(a.next_ready().is_none(), "below max_batch");
        a.offer(request("m", &engine, now), now);
        let batch = a.next_ready().expect("full");
        assert_eq!(batch.requests.len(), 3);
        assert_eq!(batch.model, "m");
        assert!(a.next_deadline().is_none(), "pending set consumed");
    }

    #[test]
    fn deadline_belongs_to_oldest_request_and_flushes_partial() {
        let engine = test_engine();
        let wait = Duration::from_millis(50);
        let mut a = BatchAssembler::new(8, wait);
        let t0 = Instant::now();
        a.offer(request("m", &engine, t0), t0);
        // A later request must not push the deadline back.
        let t1 = t0 + Duration::from_millis(30);
        a.offer(request("m", &engine, t1), t1);
        assert_eq!(a.next_deadline(), Some(t0 + wait));
        a.poll(t0 + Duration::from_millis(49));
        assert!(a.next_ready().is_none());
        a.poll(t0 + wait);
        let due = a.next_ready().expect("flushed at the deadline");
        assert_eq!(due.requests.len(), 2, "partial batch flushed");
        assert!(a.next_ready().is_none());
    }

    #[test]
    fn models_batch_independently() {
        let engine = test_engine();
        let mut a = BatchAssembler::new(2, Duration::from_secs(60));
        let now = Instant::now();
        a.offer(request("a", &engine, now), now);
        a.offer(request("b", &engine, now), now);
        // Model a fills without model b's request counting toward it.
        a.offer(request("a", &engine, now), now);
        let full = a.next_ready().expect("a full");
        assert_eq!(full.model, "a");
        a.flush_all(now);
        let rest = a.next_ready().expect("b flushed");
        assert_eq!(rest.model, "b");
        assert_eq!(rest.requests.len(), 1);
        assert!(a.next_ready().is_none());
    }

    #[test]
    fn ready_batches_rotate_round_robin_across_models() {
        let engine = test_engine();
        let mut a = BatchAssembler::new(2, Duration::from_secs(60));
        let now = Instant::now();
        // Hot model "a": three full batches. Light model "b": one.
        for _ in 0..3 {
            a.offer(request("a", &engine, now), now);
            a.offer(request("a", &engine, now), now);
        }
        a.offer(request("b", &engine, now), now);
        a.offer(request("b", &engine, now), now);
        let order: Vec<String> = std::iter::from_fn(|| a.next_ready().map(|b| b.model)).collect();
        // "b" gets its turn after one "a" batch, not after all three.
        assert_eq!(order, ["a", "b", "a", "a"]);
    }

    #[test]
    fn expired_requests_never_occupy_batch_slots() {
        let engine = test_engine();
        let mut a = BatchAssembler::new(4, Duration::from_millis(100));
        let t0 = Instant::now();
        // One short-deadline request, one without.
        a.offer(deadlined("m", &engine, t0, Duration::from_millis(10)), t0);
        a.offer(request("m", &engine, t0), t0);
        // The request deadline (not the flush deadline) is what the
        // batcher must sleep toward.
        assert_eq!(a.next_deadline(), Some(t0 + Duration::from_millis(10)));
        a.poll(t0 + Duration::from_millis(20));
        let expired = a.take_expired();
        assert_eq!(expired.len(), 1);
        assert!(expired[0].deadline.is_some());
        assert!(a.next_ready().is_none(), "flush deadline not reached yet");
        // The surviving request still flushes on the model deadline.
        a.poll(t0 + Duration::from_millis(100));
        assert_eq!(a.next_ready().expect("flushed").requests.len(), 1);
    }

    #[test]
    fn already_expired_offer_and_flush_all_prune() {
        let engine = test_engine();
        let mut a = BatchAssembler::new(8, Duration::from_secs(60));
        let t0 = Instant::now();
        a.offer(deadlined("m", &engine, t0, Duration::ZERO), t0);
        assert_eq!(a.take_expired().len(), 1, "expired on arrival");
        a.offer(deadlined("m", &engine, t0, Duration::from_millis(5)), t0);
        a.offer(request("m", &engine, t0), t0);
        a.flush_all(t0 + Duration::from_millis(10));
        assert_eq!(a.take_expired().len(), 1, "expired at shutdown flush");
        assert_eq!(a.next_ready().expect("survivor").requests.len(), 1);
    }

    #[test]
    fn reloaded_engines_never_share_a_batch() {
        let old = test_engine();
        let new = test_engine();
        let mut a = BatchAssembler::new(8, Duration::from_millis(1));
        let now = Instant::now();
        a.offer(request("m", &old, now), now);
        a.offer(request("m", &new, now), now);
        a.flush_all(now);
        let mut batches = Vec::new();
        while let Some(b) = a.next_ready() {
            batches.push(b);
        }
        assert_eq!(batches.len(), 2, "one batch per engine identity");
        assert!(!Arc::ptr_eq(&batches[0].engine, &batches[1].engine));
    }
}
