//! The serving layer of the ViTCoD reproduction: an async request queue
//! with dynamic batching, a multi-model registry, and on-disk artifacts.
//!
//! [`vitcod_engine`] gave the workspace a compile-once / serve-many
//! [`Engine`](vitcod_engine::Engine), but callers still had to assemble
//! batches by hand, in process. This crate is the production shell
//! around it — the layer the ROADMAP's "heavy concurrent traffic" story
//! needs:
//!
//! * [`Server`] — owns a **bounded ingress queue** (full ⇒ producers
//!   block: backpressure, not drops), a **dynamic batch assembler**
//!   (flush on [`BatchConfig::max_batch_size`] or the oldest request's
//!   [`BatchConfig::max_wait`] deadline, whichever first) and a worker
//!   pool draining batches through shared engines;
//! * [`Client`] — clonable handles with a blocking
//!   [`Client::classify`], a ticket/poll
//!   [`Client::submit`]/[`Ticket::try_take`] pair, and deadline-aware
//!   [`Client::submit_with_timeout`]/[`Client::wait_timeout`]: a
//!   request whose deadline passes before it reaches a batch slot
//!   resolves as [`RequestError::TimedOut`] instead of occupying queue
//!   capacity;
//! * [`ModelRegistry`] — routes requests by model id across several
//!   compiled models with independent precision/backend settings, and
//!   loads whole registries from `*.vitcod` artifacts on disk
//!   ([`ModelRegistry::load_dir`], written by
//!   [`vitcod_engine::save_compiled_vit`]); engines hot-swap behind a
//!   live server via [`Server::reload`] without dropping in-flight
//!   requests;
//! * [`ServerStats`] — per-model p50/p99/p999 latency, throughput, the
//!   batch-fill histogram and per-stage (queue-wait / batch-assembly /
//!   compute / serialize) latency histograms, queryable at any time;
//! * [`trace`] — a bounded ring of typed serving events (enqueue,
//!   expire, promote, dispatch, reload, shutdown) drained via
//!   [`Server::take_trace`] for debugging deadline storms and reload
//!   races without a debugger;
//! * [`spans`] — request-scoped span trees: head-sampled requests run
//!   the engine's profiled forward (`compute → layer{i} → {qkv, scores,
//!   softmax, spmm, out_proj, fc1, fc2}`), finished trees land in
//!   bounded rings behind `GET /v1/traces` (sampled) and
//!   `GET /v1/slowlog` (requests past their slow threshold), and every
//!   served ticket carries a [`spans::StageReport`] the transport
//!   assembles into the `request` span.
//!
//! Batching never changes values: every per-sample forward is
//! independent, so a prediction served through the queue is
//! bit-identical to [`vitcod_engine::Engine::infer_batch`] on the same
//! tokens — the acceptance tests in `crates/serve/tests` enforce this
//! end to end, through an artifact save/load round trip.
//!
//! # Example
//!
//! ```no_run
//! use vitcod_serve::{BatchConfig, ModelRegistry, Server};
//!
//! // `dir` holds artifacts saved with `vitcod_engine::save_compiled_vit`.
//! let registry = ModelRegistry::load_dir("artifacts/").unwrap();
//! let server = Server::start(registry, BatchConfig::default());
//! let client = server.client();
//! # let tokens = vitcod_tensor::Matrix::zeros(17, 8);
//! let prediction = client.classify("deit-tiny", tokens).unwrap();
//! println!("class {}", prediction.class);
//! println!("{:#?}", server.stats());
//! ```

#![forbid(unsafe_code)]
// The serving path must not panic (vitcod-lint V001); clippy enforces
// the unwrap half at compile time. Tests may unwrap freely.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

mod batcher;
pub mod queue;
mod registry;
mod server;
pub mod spans;
pub mod stats;
mod ticket;
pub mod trace;

pub use batcher::BatchConfig;
pub use registry::{ModelRegistry, RegistryError, ARTIFACT_EXTENSION};
pub use server::{Client, Server, SubmitError};
pub use spans::{
    compute_span, FinishedTrace, KeepReason, PendingSpan, RequestOutcome, Span, StageReport,
    TailConfig, TracingConfig, SPAN_RING_CAPACITY,
};
pub use stats::{
    HistogramSnapshot, ModelStats, RequestTiming, ServerStats, StageStats, StatsRecorder,
    MAX_LATENCY_SAMPLES,
};
pub use ticket::{RequestError, Ticket};
pub use trace::{TraceEvent, TraceKind, TRACE_CAPACITY};
