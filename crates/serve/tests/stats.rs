//! `StatsRecorder` acceptance tests: exact-percentile correctness
//! across ring-buffer rollover (vs a sort of the samples the ring
//! actually retains), concurrent recording vs snapshotting, and the
//! log-bucket histogram's boundary behavior — all through the public
//! API only.

use std::sync::Arc;
use std::time::Duration;

use vitcod_serve::{HistogramSnapshot, RequestTiming, StatsRecorder, MAX_LATENCY_SAMPLES};

fn timing_ms(ms: u64) -> RequestTiming {
    RequestTiming::from_total(Duration::from_millis(ms))
}

/// Nearest-rank percentile, the recorder's documented estimator.
fn exact_percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[test]
fn percentiles_match_exact_sort_across_ring_rollover() {
    let r = StatsRecorder::new();
    // 1.5 rings of latencies from a deterministic, non-monotonic
    // sequence, so the rollover discards a value-diverse prefix.
    let total = MAX_LATENCY_SAMPLES + MAX_LATENCY_SAMPLES / 2;
    let latency_ms = |i: usize| ((i * 37) % 1000 + 1) as u64;
    let mut batch = Vec::with_capacity(256);
    let mut recorded: Vec<f64> = Vec::with_capacity(total);
    for i in 0..total {
        batch.push(timing_ms(latency_ms(i)));
        recorded.push(latency_ms(i) as f64 / 1e3);
        if batch.len() == 256 {
            r.record_batch("m", Duration::from_millis(1), &batch);
            batch.clear();
        }
    }
    let s = r.snapshot(1.0);
    let m = s.model("m").expect("recorded");
    assert_eq!(m.requests as usize, total);
    assert!(
        m.latency_samples_truncated,
        "1.5 rings of samples must flag truncation"
    );
    // The ring retains exactly the most recent MAX_LATENCY_SAMPLES
    // observations; percentiles must agree with a direct sort of them.
    let mut retained: Vec<f64> = recorded[total - MAX_LATENCY_SAMPLES..].to_vec();
    retained.sort_by(f64::total_cmp);
    for (q, got) in [
        (0.50, m.p50_latency_s),
        (0.99, m.p99_latency_s),
        (0.999, m.p999_latency_s),
    ] {
        let want = exact_percentile(&retained, q);
        assert!(
            (got - want).abs() < 1e-12,
            "p{q}: recorder {got} vs exact {want}"
        );
    }
    // The histogram is never truncated: it saw every observation.
    assert_eq!(m.latency_histogram.count as usize, total);
}

#[test]
fn truncation_flag_stays_clear_below_capacity() {
    let r = StatsRecorder::new();
    let batch: Vec<RequestTiming> = (0..1000).map(|i| timing_ms(i % 50 + 1)).collect();
    r.record_batch("m", Duration::from_millis(1), &batch);
    let m = r.snapshot(1.0);
    let m = m.model("m").expect("recorded");
    assert!(!m.latency_samples_truncated);
    assert_eq!(m.requests, 1000);
}

#[test]
fn concurrent_recording_and_snapshotting_stays_consistent() {
    let r = Arc::new(StatsRecorder::new());
    const WRITERS: usize = 4;
    const BATCHES: usize = 200;
    const FILL: usize = 8;
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for b in 0..BATCHES {
                    let batch: Vec<RequestTiming> = (0..FILL)
                        .map(|i| timing_ms((w * 7 + b + i) as u64 % 100 + 1))
                        .collect();
                    r.record_batch("m", Duration::from_millis(1), &batch);
                    if b % 3 == 0 {
                        r.record_timeout("m");
                    }
                    r.record_serialize("m", Duration::from_micros(50));
                }
            })
        })
        .collect();
    // Snapshot continuously while the writers race; every intermediate
    // snapshot must be internally consistent.
    let reader = {
        let r = Arc::clone(&r);
        std::thread::spawn(move || {
            let mut snapshots = 0usize;
            loop {
                let s = r.snapshot(1.0);
                if let Some(m) = s.model("m") {
                    assert_eq!(m.requests, m.batches * FILL as u64, "fill is constant");
                    assert_eq!(m.latency_histogram.count, m.requests);
                    assert_eq!(m.stages.compute.count, m.requests);
                    let histogram_total: u64 = m.latency_histogram.buckets.iter().sum();
                    assert_eq!(histogram_total, m.latency_histogram.count);
                }
                snapshots += 1;
                if s.model("m")
                    .is_some_and(|m| m.requests as usize == WRITERS * BATCHES * FILL)
                {
                    return snapshots;
                }
                std::thread::yield_now();
            }
        })
    };
    for w in writers {
        w.join().expect("writer");
    }
    let snapshots = reader.join().expect("reader");
    assert!(snapshots >= 1);
    let m = r.snapshot(1.0);
    let m = m.model("m").expect("recorded");
    assert_eq!(m.requests as usize, WRITERS * BATCHES * FILL);
    assert_eq!(m.batches as usize, WRITERS * BATCHES);
    assert_eq!(m.timed_out as usize, WRITERS * BATCHES.div_ceil(3));
    assert_eq!(m.stages.serialize.count as usize, WRITERS * BATCHES);
}

/// The documented `le` rule: smallest finite bucket whose bound is
/// `>= s`, or the overflow slot past the top bound.
fn le_bucket(bounds: &[f64], s: f64) -> usize {
    bounds.iter().position(|&b| s <= b).unwrap_or(bounds.len())
}

#[test]
fn histogram_boundaries_hold_through_the_public_api() {
    let r = StatsRecorder::new();
    // The shared bucket bounds, via the public snapshot type.
    let bounds = HistogramSnapshot::upper_bounds();
    assert!(!bounds.is_empty());
    assert!(bounds.windows(2).all(|w| w[1] > w[0]), "bounds ascend");
    // Probe every boundary from both sides: exactly at each bound,
    // just past it, mid-bucket, zero, and far past the top bound.
    let mut values_s: Vec<f64> = Vec::new();
    for &b in &bounds {
        values_s.push(b);
        values_s.push(b * 1.0000001);
        values_s.push(b * 0.75);
    }
    values_s.push(0.0);
    values_s.push(1e9);
    let timings: Vec<RequestTiming> = values_s
        .iter()
        .map(|&s| RequestTiming::from_total(Duration::from_secs_f64(s)))
        .collect();
    r.record_batch("m", Duration::from_millis(1), &timings);
    let snap = r.snapshot(1.0);
    let h = &snap.model("m").expect("recorded").latency_histogram;
    assert_eq!(
        h.buckets.len(),
        bounds.len() + 1,
        "finite buckets + overflow"
    );
    // Expected counts from the `le` rule applied to what the recorder
    // actually observed (the Duration round-trip of each probe).
    let mut expected = vec![0u64; bounds.len() + 1];
    for t in &timings {
        expected[le_bucket(&bounds, t.total.as_secs_f64())] += 1;
    }
    assert_eq!(h.buckets, expected, "le-bucket assignment at boundaries");
    assert_eq!(h.count as usize, timings.len());
    assert!(h.buckets[bounds.len()] >= 1, "1e9 s lands in overflow");
}

#[test]
fn quantile_estimate_brackets_the_exact_value() {
    let r = StatsRecorder::new();
    let batch: Vec<RequestTiming> = (1..=1000).map(timing_ms).collect();
    r.record_batch("m", Duration::from_millis(1), &batch);
    let s = r.snapshot(1.0);
    let m = s.model("m").expect("recorded");
    // The histogram's interpolated quantile must bracket the exact one
    // within a bucket's width (factor-of-2 buckets → within 2x).
    let sorted: Vec<f64> = (1..=1000).map(|i| i as f64 / 1e3).collect();
    for q in [0.5, 0.9, 0.99] {
        let est = m.latency_histogram.quantile(q);
        let truth = exact_percentile(&sorted, q);
        assert!(
            est >= truth / 2.0 && est <= truth * 2.0,
            "q{q}: estimate {est} not within a bucket of exact {truth}"
        );
    }
}
