//! Serving-layer acceptance tests: dynamic batching semantics,
//! backpressure, exactly-once tickets, multi-model routing, and the
//! end-to-end disk → registry → server → bit-identical-predictions
//! guarantee.

use std::sync::Arc;
use std::time::Duration;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod_autograd::ParamStore;
use vitcod_engine::{save_compiled_vit, CompiledVit, Engine, Precision};
use vitcod_model::{Sample, SparsityPlan, ViTConfig, VisionTransformer};
use vitcod_serve::{
    BatchConfig, KeepReason, ModelRegistry, RequestOutcome, Server, Span, SubmitError, TailConfig,
    TracingConfig,
};
use vitcod_tensor::{Initializer, Matrix};

const IN_DIM: usize = 8;
const CLASSES: usize = 4;

fn tiny_model(seed: u64, sparse: bool) -> CompiledVit {
    let cfg = ViTConfig::deit_tiny().reduced_for_training();
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut vit = VisionTransformer::new(&cfg, IN_DIM, CLASSES, &mut store, &mut rng);
    if sparse {
        let n = vit.config().tokens;
        let mut mask = Matrix::zeros(n, n);
        for q in 0..n {
            mask.set(q, q, 1.0);
            mask.set(q, 0, 1.0);
            mask.set(q, (q + 1) % n, 1.0);
        }
        let plan: SparsityPlan = (0..vit.config().depth)
            .map(|_| {
                (0..vit.config().heads)
                    .map(|_| Some(mask.clone()))
                    .collect()
            })
            .collect();
        vit.set_sparsity_plan(plan);
    }
    CompiledVit::from_parts(&vit, &store)
}

fn tokens_for(model: &CompiledVit, seed: u64) -> Matrix {
    Initializer::Normal { std: 1.0 }.sample(model.config().tokens, IN_DIM, seed)
}

/// A scratch directory unique to this test, cleaned up on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("vitcod-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The ISSUE's acceptance criterion: a `CompiledVit` saved to disk,
/// reloaded, and served through a `Server` with 4 concurrent clients
/// and `max_wait`-driven partial batches returns predictions
/// bit-identical to direct `Engine::infer_batch` fp32.
#[test]
fn disk_roundtrip_served_with_four_clients_is_bit_identical_to_direct_inference() {
    let original = tiny_model(42, true);
    let dir = TempDir::new("acceptance");
    let path = dir.0.join("deit-tiny.vitcod");
    std::fs::write(&path, save_compiled_vit(&original, Precision::Fp32)).unwrap();

    let registry = ModelRegistry::load_dir(&dir.0).unwrap();
    assert_eq!(registry.ids(), vec!["deit-tiny"]);
    let server = Server::start(
        registry,
        BatchConfig {
            // Larger than any client burst: every flush is
            // deadline-driven, i.e. a partial batch.
            max_batch_size: 64,
            max_wait: Duration::from_millis(5),
            queue_capacity: 64,
            workers: 2,
        },
    );

    const PER_CLIENT: u64 = 6;
    let handles: Vec<_> = (0..4)
        .map(|c| {
            let client = server.client();
            let model = original.clone();
            std::thread::spawn(move || {
                (0..PER_CLIENT)
                    .map(|i| {
                        let seed = 1000 + c * PER_CLIENT + i;
                        let tokens = tokens_for(&model, seed);
                        (seed, client.classify("deit-tiny", tokens).unwrap())
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut served: Vec<(u64, vitcod_engine::Prediction)> = Vec::new();
    for h in handles {
        served.extend(h.join().unwrap());
    }

    // Direct fp32 inference on the *original* (never-serialized) model.
    let engine = Engine::builder(original.clone()).build();
    let samples: Vec<Sample> = served
        .iter()
        .map(|(seed, _)| Sample {
            tokens: tokens_for(&original, *seed),
            label: 0,
        })
        .collect();
    let direct = engine.infer_batch(&samples);
    for ((seed, queued), direct) in served.iter().zip(direct.iter()) {
        assert_eq!(
            queued.logits, direct.logits,
            "seed {seed}: queued prediction must be bit-identical to direct fp32"
        );
        assert_eq!(queued.class, direct.class);
    }

    // The flushes really were deadline-driven partials.
    let stats = server.shutdown();
    let m = stats.model("deit-tiny").expect("model served");
    assert_eq!(m.requests, 4 * PER_CLIENT);
    assert!(
        m.batch_fill.len() < 64,
        "no batch may reach the size trigger here"
    );
    assert!(m.batches > 0 && m.p99_latency_s >= m.p50_latency_s);
}

#[test]
fn deadline_flushes_partial_batches_and_size_flushes_full_ones() {
    let model = tiny_model(7, false);
    let mut registry = ModelRegistry::new();
    registry
        .register("m", Engine::builder(model.clone()).build())
        .unwrap();
    let server = Server::start(
        registry,
        BatchConfig {
            max_batch_size: 4,
            max_wait: Duration::from_millis(10),
            queue_capacity: 64,
            workers: 1,
        },
    );
    let client = server.client();

    // Burst of 3 (< max_batch_size): only the deadline can flush it.
    let tickets: Vec<_> = (0..3)
        .map(|i| client.submit("m", tokens_for(&model, i)).unwrap())
        .collect();
    for t in tickets {
        assert!(t.wait().is_some());
    }
    let stats = server.stats();
    let m = stats.model("m").unwrap();
    assert_eq!(m.requests, 3);
    assert!(
        m.batch_fill.iter().take(3).sum::<u64>() > 0,
        "expected a partial (deadline) flush, fills: {:?}",
        m.batch_fill
    );

    // Burst of 11: full batches must cap at max_batch_size.
    let tickets: Vec<_> = (0..11)
        .map(|i| client.submit("m", tokens_for(&model, 100 + i)).unwrap())
        .collect();
    for t in tickets {
        assert!(t.wait().is_some());
    }
    let stats = server.shutdown();
    let m = stats.model("m").unwrap();
    assert_eq!(m.requests, 14);
    assert!(
        m.batch_fill.len() <= 4,
        "a batch exceeded max_batch_size: {:?}",
        m.batch_fill
    );
    assert!(m.mean_batch_fill <= 4.0);
}

#[test]
fn bounded_queue_applies_backpressure_and_every_ticket_resolves_exactly_once() {
    let model = tiny_model(9, false);
    let mut registry = ModelRegistry::new();
    registry
        .register("m", Engine::builder(model.clone()).build())
        .unwrap();
    // Tiny queue, many producers: correctness must come from blocking,
    // not dropping.
    let server = Server::start(
        registry,
        BatchConfig {
            max_batch_size: 4,
            max_wait: Duration::from_millis(1),
            queue_capacity: 2,
            workers: 2,
        },
    );
    const PRODUCERS: u64 = 8;
    const PER_PRODUCER: u64 = 8;
    let handles: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let client = server.client();
            let model = model.clone();
            std::thread::spawn(move || {
                let mut served = 0u64;
                for i in 0..PER_PRODUCER {
                    let ticket = client
                        .submit("m", tokens_for(&model, p * 100 + i))
                        .expect("submit blocks, never drops");
                    // Poll (the ticket API) rather than wait, and count
                    // resolutions: exactly one Some per ticket.
                    let mut takes = 0;
                    let deadline = std::time::Instant::now() + Duration::from_secs(30);
                    while std::time::Instant::now() < deadline {
                        if ticket.try_take().is_some() {
                            takes += 1;
                            break;
                        }
                        std::thread::yield_now();
                    }
                    assert!(ticket.try_take().is_none(), "second take must fail");
                    assert_eq!(takes, 1, "ticket must resolve exactly once");
                    served += 1;
                }
                served
            })
        })
        .collect();
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, PRODUCERS * PER_PRODUCER);
    let stats = server.shutdown();
    assert_eq!(
        stats.total_requests(),
        PRODUCERS * PER_PRODUCER,
        "backpressure must not drop any request"
    );
}

#[test]
fn registry_routes_models_independently_and_rejects_bad_submissions() {
    let fp32_model = tiny_model(11, false);
    let int8_model = tiny_model(12, true);
    let mut registry = ModelRegistry::new();
    registry
        .register("fp32", Engine::builder(fp32_model.clone()).build())
        .unwrap();
    registry
        .register(
            "int8",
            Engine::builder(int8_model.clone())
                .precision(Precision::Int8)
                .build(),
        )
        .unwrap();
    assert!(registry
        .register("fp32", Engine::builder(fp32_model.clone()).build())
        .is_err());

    let server = Server::start(registry, BatchConfig::default());
    let client = server.client();

    let t = tokens_for(&fp32_model, 500);
    let direct_fp32 = Engine::builder(fp32_model.clone()).build().infer_one(&t);
    let direct_int8 = Engine::builder(int8_model.clone())
        .precision(Precision::Int8)
        .build()
        .infer_one(&t);
    // Different models and precisions behind one server: each route
    // reproduces its own engine exactly.
    assert_eq!(
        client.classify("fp32", t.clone()).unwrap().logits,
        direct_fp32.logits
    );
    assert_eq!(
        client.classify("int8", t.clone()).unwrap().logits,
        direct_int8.logits
    );

    assert!(matches!(
        client.classify("nope", t.clone()),
        Err(SubmitError::UnknownModel(_))
    ));
    assert!(matches!(
        client.classify("fp32", Matrix::zeros(3, 3)),
        Err(SubmitError::ShapeMismatch { .. })
    ));
}

/// The serve pool holds `Arc`'d weights: registering and serving a
/// model copies no weight scalars.
#[test]
fn serving_shares_weights_instead_of_cloning_them() {
    let compiled = Arc::new(tiny_model(13, true));
    let scalars_before = compiled.num_weight_scalars();
    let engine = Engine::builder_shared(Arc::clone(&compiled)).build();
    let engine_arc = engine.compiled_arc();
    assert!(
        Arc::ptr_eq(&engine_arc, &compiled),
        "engine must share, not copy"
    );

    let mut registry = ModelRegistry::new();
    registry.register("m", engine).unwrap();
    let server = Server::start(
        registry,
        BatchConfig {
            workers: 4,
            ..BatchConfig::default()
        },
    );
    let client = server.client();
    let handles: Vec<_> = (0..4)
        .map(|c| {
            let client = client.clone();
            let model = Arc::clone(&compiled);
            std::thread::spawn(move || {
                for i in 0..4 {
                    client
                        .classify("m", tokens_for(&model, c * 10 + i))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    drop(server);
    drop(client); // the last handle to the server's shared state
                  // After serving 16 requests through 4 workers, the weights are
                  // still the same single allocation, unchanged in size.
    assert_eq!(compiled.num_weight_scalars(), scalars_before);
    assert_eq!(
        Arc::strong_count(&compiled),
        2, // this handle + `engine_arc`; the server's engine is dropped
        "no worker may retain a weight copy"
    );
}

#[test]
fn shutdown_drains_accepted_requests() {
    let model = tiny_model(15, false);
    let mut registry = ModelRegistry::new();
    registry
        .register("m", Engine::builder(model.clone()).build())
        .unwrap();
    let server = Server::start(
        registry,
        BatchConfig {
            max_batch_size: 32,
            max_wait: Duration::from_secs(10), // would never flush by deadline
            queue_capacity: 16,
            workers: 1,
        },
    );
    let client = server.client();
    let tickets: Vec<_> = (0..5)
        .map(|i| client.submit("m", tokens_for(&model, i)).unwrap())
        .collect();
    // Shutdown must flush the assembler rather than dropping the 5
    // pending requests.
    let stats = server.shutdown();
    assert_eq!(stats.total_requests(), 5);
    for t in tickets {
        assert!(t.try_take().is_some(), "accepted request must be served");
    }
    // And a closed server refuses new work.
    assert!(matches!(
        client.classify("m", tokens_for(&model, 99)),
        Err(SubmitError::Closed)
    ));
}

/// The in-process deadline satellites: `submit_with_timeout` +
/// `Client::wait_timeout` give in-process callers the wire path's
/// semantics — a request whose deadline passes before it reaches a
/// batch slot resolves as `TimedOut`, counts in the stats, and stops
/// occupying capacity.
#[test]
fn deadlines_expire_in_process_requests_instead_of_blocking_forever() {
    use vitcod_serve::RequestError;

    let model = tiny_model(17, false);
    let mut registry = ModelRegistry::new();
    registry
        .register("m", Engine::builder(model.clone()).build())
        .unwrap();
    let server = Server::start(
        registry,
        BatchConfig {
            max_batch_size: 64,
            max_wait: Duration::from_secs(30), // would flush long after the test
            queue_capacity: 16,
            workers: 1,
        },
    );
    let client = server.client();

    // Without the new API this wait would block toward the 30s flush;
    // with it, the batcher expires the request at its 50ms deadline.
    let t = std::time::Instant::now();
    let ticket = client
        .submit_with_timeout("m", tokens_for(&model, 1), Duration::from_millis(50))
        .unwrap();
    assert_eq!(
        client.wait_timeout(&ticket, Duration::from_secs(20)),
        Err(RequestError::TimedOut)
    );
    assert!(
        t.elapsed() < Duration::from_secs(10),
        "server-side expiry must beat the flush deadline"
    );

    // A client-side budget alone also returns, leaving the ticket
    // valid for a later wait.
    let ticket = client.submit("m", tokens_for(&model, 2)).unwrap();
    assert_eq!(
        client.wait_timeout(&ticket, Duration::from_millis(20)),
        Err(RequestError::TimedOut)
    );

    let stats = server.shutdown();
    let m = stats.model("m").expect("model recorded");
    assert_eq!(m.timed_out, 1, "only the expired request counts");
    // The second request was drained at shutdown and served.
    assert_eq!(m.requests, 1);
    assert!(ticket.wait_timeout(Duration::from_secs(1)).is_ok());
}

/// Hot reload, deterministically: tickets submitted before the swap
/// hold the old engine and must resolve against the old weights even
/// though they are served after the swap; tickets submitted after it
/// resolve against the new ones.
#[test]
fn reload_keeps_in_flight_requests_on_their_submitted_engine() {
    let v1 = tiny_model(23, false);
    let v2 = tiny_model(24, false);
    let mut registry = ModelRegistry::new();
    registry
        .register("m", Engine::builder(v1.clone()).build())
        .unwrap();
    let server = Server::start(
        registry,
        BatchConfig {
            max_batch_size: 64,
            max_wait: Duration::from_millis(200),
            queue_capacity: 64,
            workers: 1,
        },
    );
    let client = server.client();

    let before: Vec<_> = (0..3)
        .map(|i| {
            let t = tokens_for(&v1, 300 + i);
            (t.clone(), client.submit("m", t).unwrap())
        })
        .collect();
    // The swap happens while those requests pend in the assembler.
    assert!(server.reload("m", Engine::builder(v2.clone()).build()));
    let after: Vec<_> = (0..2)
        .map(|i| {
            let t = tokens_for(&v2, 400 + i);
            (t.clone(), client.submit("m", t).unwrap())
        })
        .collect();

    let v1_engine = Engine::builder(v1).build();
    let v2_engine = Engine::builder(v2).build();
    for (tokens, ticket) in before {
        let served = ticket.wait().expect("served");
        assert_eq!(
            served.logits,
            v1_engine.infer_one(&tokens).logits,
            "pre-reload submissions must finish on the old weights"
        );
    }
    for (tokens, ticket) in after {
        let served = ticket.wait().expect("served");
        assert_eq!(
            served.logits,
            v2_engine.infer_one(&tokens).logits,
            "post-reload submissions must see the new weights"
        );
    }
    server.shutdown();
}

/// The graceful-shutdown satellite: producers race `shutdown` from
/// other threads; every ticket whose submit returned `Ok` must resolve
/// with a prediction — no accepted request is ever stranded or
/// cancelled by a clean shutdown.
#[test]
fn shutdown_never_strands_an_accepted_ticket() {
    let model = tiny_model(29, false);
    let mut registry = ModelRegistry::new();
    registry
        .register("m", Engine::builder(model.clone()).build())
        .unwrap();
    let server = Server::start(
        registry,
        BatchConfig {
            max_batch_size: 4,
            max_wait: Duration::from_millis(1),
            queue_capacity: 4,
            workers: 2,
        },
    );

    const PRODUCERS: u64 = 4;
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let client = server.client();
            let model = model.clone();
            std::thread::spawn(move || {
                let mut accepted = Vec::new();
                for i in 0..64u64 {
                    match client.submit("m", tokens_for(&model, p * 1000 + i)) {
                        Ok(ticket) => accepted.push(ticket),
                        // The race resolved: the server closed under us.
                        Err(SubmitError::Closed) => break,
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
                accepted
            })
        })
        .collect();
    // Shut down while the producers are mid-burst.
    std::thread::sleep(Duration::from_millis(5));
    let stats = server.shutdown();

    let mut accepted_total = 0u64;
    for p in producers {
        for ticket in p.join().unwrap() {
            accepted_total += 1;
            assert!(
                ticket.wait_timeout(Duration::from_secs(30)).is_ok(),
                "an accepted ticket must be served, not stranded"
            );
        }
    }
    assert!(accepted_total > 0, "the race should accept some requests");
    assert_eq!(
        stats.total_requests(),
        accepted_total,
        "drained work must match accepted work"
    );
}

/// Per-stage timing e2e: every served request contributes one
/// observation to the queue-wait, batch-assembly, and compute
/// histograms, and the stage durations add up to the end-to-end
/// latency (the stamps are a partition of enqueue → compute-end).
/// Purely in-process serving leaves the serialize stage empty — that
/// stage belongs to the transport.
#[test]
fn stage_histograms_partition_the_end_to_end_latency() {
    let model = tiny_model(91, false);
    let mut registry = ModelRegistry::new();
    registry
        .register("m", Engine::builder(model.clone()).build())
        .unwrap();
    let server = Server::start(
        registry,
        BatchConfig {
            max_batch_size: 4,
            max_wait: Duration::from_millis(5),
            queue_capacity: 64,
            workers: 1,
        },
    );

    const CLIENTS: u64 = 3;
    const PER_CLIENT: u64 = 8;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let client = server.client();
            let model = model.clone();
            std::thread::spawn(move || {
                for i in 0..PER_CLIENT {
                    let tokens = tokens_for(&model, 4000 + c * PER_CLIENT + i);
                    client.classify("m", tokens).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = server.shutdown();
    let m = stats.model("m").expect("model served");
    let total = CLIENTS * PER_CLIENT;
    assert_eq!(m.requests, total);
    assert_eq!(m.latency_histogram.count, total);

    // One observation per request in each server-side stage; none in
    // serialize (no transport in this test).
    assert_eq!(m.stages.queue_wait.count, total);
    assert_eq!(m.stages.batch_assembly.count, total);
    assert_eq!(m.stages.compute.count, total);
    assert_eq!(m.stages.serialize.count, 0);

    // The stages partition the end-to-end latency: summed over all
    // requests, queue_wait + batch_assembly + compute equals the total
    // (same monotonic stamps on both sides, so only f64 rounding).
    let stage_sum =
        m.stages.queue_wait.sum_s + m.stages.batch_assembly.sum_s + m.stages.compute.sum_s;
    let e2e_sum = m.latency_histogram.sum_s;
    assert!(
        (stage_sum - e2e_sum).abs() <= 1e-6 * e2e_sum.max(1e-9) + 1e-7,
        "stage sums {stage_sum} must partition end-to-end {e2e_sum}"
    );
    // And the batcher was actually exercised: requests spent nonzero
    // time in assembly (max_wait co-batching) and in compute.
    assert!(m.stages.compute.sum_s > 0.0);
    assert!(m.stages.batch_assembly.sum_s > 0.0);
    // Histogram and exact-ring views agree on the mean end to end.
    assert!(
        (m.latency_histogram.mean_s() - e2e_sum / total as f64).abs() < 1e-12,
        "histogram mean must be sum/count"
    );
}

/// Head-sampled requests report a compute span tree that exactly
/// partitions into per-layer op leaves; unsampled requests report only
/// stage totals; per-op histograms and the achieved-Gop/s gauge land in
/// the stats; and the span rings round-trip with a non-destructive peek.
#[test]
fn traced_submits_report_partitioned_span_trees_and_op_stats() {
    let model = tiny_model(21, true);
    let depth = model.config().depth;
    let mut registry = ModelRegistry::new();
    registry
        .register("m", Engine::builder(model.clone()).build())
        .unwrap();
    let server = Server::start_with_tracing(
        registry,
        BatchConfig {
            max_batch_size: 2,
            max_wait: Duration::from_millis(5),
            queue_capacity: 64,
            workers: 1,
        },
        TracingConfig {
            sample_rate: 1.0,
            slow_threshold: None,
            tail: None,
        },
    );
    let client = server.client();
    assert!(client.sample_trace(), "rate 1.0 samples every request");

    let sampled = client
        .submit_traced("m", tokens_for(&model, 1), None, true)
        .unwrap();
    assert!(sampled.wait_timeout(Duration::from_secs(60)).is_ok());
    let report = sampled.take_stage_report().expect("sampled report");
    assert!(report.queue_wait_s >= 0.0 && report.batch_assembly_s >= 0.0);
    let compute = report.compute.expect("sampled compute span");
    assert_eq!(compute.name, "compute");
    assert!((compute.duration_s - report.compute_s).abs() < 1e-12);
    // Layers plus the `other` leaf partition compute exactly, and every
    // layer partitions into the engine's named ops.
    assert_eq!(compute.children.len(), depth + 1);
    assert!((compute.children_s() - compute.duration_s).abs() < 1e-9);
    for (i, layer) in compute.children[..depth].iter().enumerate() {
        assert_eq!(layer.name, format!("layer{i}"));
        let names: Vec<&str> = layer.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vitcod_engine::OP_NAMES.to_vec());
        assert!((layer.children_s() - layer.duration_s).abs() < 1e-9);
    }

    let plain = client.submit("m", tokens_for(&model, 2)).unwrap();
    assert!(plain.wait_timeout(Duration::from_secs(60)).is_ok());
    let report = plain.take_stage_report().expect("unsampled report");
    assert!(report.compute.is_none(), "fast path carries no span tree");
    assert!(report.compute_s > 0.0);

    let stats = server.stats();
    let m = stats.model("m").unwrap();
    assert_eq!(m.ops.len(), vitcod_engine::OP_COUNT);
    assert!(m.ops.iter().all(|(_, h)| h.count >= 1));
    assert!(m.achieved_gops.expect("gauge enriched from the engine") > 0.0);
    assert!(m.compute_batch_s > 0.0);

    // Ring round trip: record → peek (non-destructive) → take (drains).
    client.record_trace("t-1".into(), "m".into(), 0.5, Span::leaf("request", 0.5));
    client.record_slow(
        "t-1".into(),
        "m".into(),
        true,
        0.6,
        Span::leaf("request", 0.6),
    );
    assert_eq!(client.peek_traces().len(), 1);
    assert_eq!(client.take_traces().len(), 1);
    assert!(client.take_traces().is_empty());
    assert_eq!(client.peek_slowlog().len(), 1);
    assert_eq!(server.take_slowlog().len(), 1);
    assert_eq!(client.traces_dropped() + client.slowlog_dropped(), 0);
    server.shutdown();
}

/// Tail mode through the `Client` API: off by default (register/complete
/// are no-ops), on it tracks the pending buffer, keeps by completion
/// outcome, and `record_tail` lands in the traces ring with `sampled:
/// false` and the keep reason — the "tail-kept, not head-sampled"
/// distinction `/v1/traces` consumers rely on.
#[test]
fn tail_retention_tracks_pending_and_labels_kept_traces() {
    let model = tiny_model(23, false);
    let mut registry = ModelRegistry::new();
    registry
        .register("m", Engine::builder(model).build())
        .unwrap();
    let server = Server::start(registry, BatchConfig::default());
    let client = server.client();
    assert!(!client.tail_enabled(), "Server::start leaves the tail off");
    assert_eq!(client.tail_register("t-0", "m"), None);
    assert_eq!(
        client.tail_complete(None, false, true, RequestOutcome::Ok),
        None,
        "tail off: even slow completions are not tail-kept"
    );
    drop(server);

    let model = tiny_model(23, false);
    let mut registry = ModelRegistry::new();
    registry
        .register("m", Engine::builder(model).build())
        .unwrap();
    let server = Server::start_with_tracing(
        registry,
        BatchConfig::default(),
        TracingConfig {
            sample_rate: 0.0,
            slow_threshold: None,
            tail: Some(TailConfig {
                reservoir: 1,
                seed: 9,
                pending_capacity: 2,
            }),
        },
    );
    let client = server.client();
    assert!(client.tail_enabled());
    assert_eq!(client.model_shape("m").map(|(_, d)| d), Some(IN_DIM));
    assert_eq!(client.model_shape("nope"), None);
    let k0 = client.tail_register("t-0", "m");
    let k1 = client.tail_register("t-1", "m");
    assert!(k0.is_some() && k1.is_some());
    assert!(client.tail_register("t-2", "m").is_none(), "buffer full");
    assert_eq!(client.tail_pending().len(), 2);
    assert_eq!(client.tail_pending_dropped(), 1);
    // First completion: reservoir of 1 always keeps completion #1.
    let kept = client.tail_complete(k0, false, false, RequestOutcome::Ok);
    assert_eq!(kept, Some(KeepReason::Reservoir));
    client.record_tail(
        "t-0".into(),
        "m".into(),
        0.4,
        Span::leaf("request", 0.4),
        KeepReason::Reservoir,
    );
    // Expired completions are always kept.
    let kept = client.tail_complete(k1, false, false, RequestOutcome::Expired);
    assert_eq!(kept, Some(KeepReason::Error));
    assert!(client.tail_pending().is_empty());
    let traces = client.take_traces();
    assert_eq!(traces.len(), 1);
    assert!(!traces[0].sampled);
    assert_eq!(traces[0].kept, "reservoir");
    server.shutdown();
}
