//! Diagnostics, the rule registry, and report rendering (text + JSON).

use std::fmt::Write as _;

/// Every rule id `vitcod-lint` can emit, including the directive
/// hygiene pseudo-rule `V000`.
pub const RULE_IDS: [&str; 6] = ["V000", "V001", "V002", "V003", "V004", "V005"];

/// One finding, printed as `file:line: [V00x] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`V001`…).
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One edge of the lock-order graph: somewhere, `from` is held while
/// `to` is acquired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock held.
    pub from: String,
    /// Lock acquired under it.
    pub to: String,
    /// File of the inner acquisition.
    pub file: String,
    /// Line of the inner acquisition.
    pub line: u32,
    /// Function the nesting occurs in.
    pub function: String,
}

/// The serve/transport lock-acquisition graph the V002 pass builds.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    /// Every lock identity seen (`file_stem.field`), sorted.
    pub nodes: Vec<String>,
    /// Nested-acquisition edges, in discovery order.
    pub edges: Vec<LockEdge>,
    /// Lock identities participating in an order cycle (empty = the
    /// graph is deadlock-free by construction).
    pub cycles: Vec<Vec<String>>,
}

/// Full analysis output.
#[derive(Debug, Default)]
pub struct Report {
    /// Diagnostics after allow directives were applied, sorted by file
    /// then line.
    pub diagnostics: Vec<Diagnostic>,
    /// The V002 lock graph.
    pub lock_graph: LockGraph,
    /// Files scanned.
    pub files_scanned: usize,
    /// Allow directives that suppressed a diagnostic.
    pub allows_used: usize,
}

impl Report {
    /// Renders the machine-readable JSON form (stable key order,
    /// no dependencies).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                if i == 0 { "" } else { "," },
                json_str(&d.file),
                d.line,
                json_str(d.rule),
                json_str(&d.message)
            );
        }
        if !self.diagnostics.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"lock_graph\": {\"nodes\": [");
        for (i, n) in self.lock_graph.nodes.iter().enumerate() {
            let _ = write!(s, "{}{}", if i == 0 { "" } else { ", " }, json_str(n));
        }
        s.push_str("], \"edges\": [");
        for (i, e) in self.lock_graph.edges.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{\"from\": {}, \"to\": {}, \"file\": {}, \"line\": {}, \"function\": {}}}",
                if i == 0 { "" } else { "," },
                json_str(&e.from),
                json_str(&e.to),
                json_str(&e.file),
                e.line,
                json_str(&e.function)
            );
        }
        s.push_str("], \"cycles\": [");
        for (i, c) in self.lock_graph.cycles.iter().enumerate() {
            let _ = write!(s, "{}[", if i == 0 { "" } else { ", " });
            for (j, n) in c.iter().enumerate() {
                let _ = write!(s, "{}{}", if j == 0 { "" } else { ", " }, json_str(n));
            }
            s.push(']');
        }
        let _ = write!(
            s,
            "]}},\n  \"files_scanned\": {},\n  \"allows_used\": {}\n}}",
            self.files_scanned, self.allows_used
        );
        s
    }

    /// Renders the lock graph as text.
    pub fn lock_graph_text(&self) -> String {
        let g = &self.lock_graph;
        let mut s = String::from("lock-order graph (serve/transport):\n");
        for n in &g.nodes {
            let _ = writeln!(s, "  node {n}");
        }
        if g.edges.is_empty() {
            s.push_str("  (no nested acquisitions: the order graph is trivially acyclic)\n");
        }
        for e in &g.edges {
            let _ = writeln!(
                s,
                "  edge {} -> {}  ({}:{} in {})",
                e.from, e.to, e.file, e.line, e.function
            );
        }
        if g.cycles.is_empty() {
            s.push_str("  cycles: none\n");
        } else {
            for c in &g.cycles {
                let _ = writeln!(s, "  CYCLE: {}", c.join(" -> "));
            }
        }
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The `--explain` text for `rule`, or `None` for unknown ids.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "V000" => {
            "V000 — directive hygiene.\n\
             Every `// vitcod-lint: allow(V00x, reason)` directive must parse, name a known\n\
             rule, and state a non-empty reason (the invariant that makes the allowed code\n\
             safe). A directive that suppresses nothing is stale and reported too: allows\n\
             document living invariants, they are not a mute button."
        }
        "V001" => {
            "V001 — no panics in serving library code.\n\
             Scope: non-test library code of vitcod-serve, vitcod-transport, vitcod-engine.\n\
             Flags `.unwrap()`, `.expect(...)` (a file's own `self.expect(...)` parser\n\
             method is recognized and exempt), `panic!`, `todo!`, `unimplemented!` and\n\
             `unreachable!`. In vitcod-serve and vitcod-transport it additionally flags\n\
             scalar subscript indexing `a[i]` (range slicing `a[i..j]` is the parser idiom\n\
             and exempt). A panic on the serve path kills a worker's batch and with it the\n\
             determinism guarantees; recover (`unwrap_or_else(|e| e.into_inner())` for\n\
             poisoned locks), return a Result, or state the invariant in an allow."
        }
        "V002" => {
            "V002 — lock discipline in the serve/transport concurrency web.\n\
             Scope: non-test library code of vitcod-serve and vitcod-transport. Builds a\n\
             per-function lock-acquisition model (guards from zero-argument `.lock()`,\n\
             `.read()`, `.write()`; scope-tracked through `let` bindings, `drop(guard)`\n\
             and end-of-statement temporaries) and flags: (a) a guard held across a\n\
             blocking call — recv/recv_timeout/wait/wait_timeout/accept/connect/sleep/\n\
             join/pop_until and buffer I/O (`.read(buf)`, `.write_all(..)`, `.flush()`),\n\
             except the condvar handoff where the guard itself is an argument; (b) cycles\n\
             in the inter-lock order graph (lock B acquired while holding A adds edge\n\
             A->B; any cycle is a potential deadlock). The analysis is intra-procedural:\n\
             helpers that block internally (e.g. `BoundedQueue::push`) are listed\n\
             explicitly. Run with --lock-graph to print the graph."
        }
        "V003" => {
            "V003 — backend-contract coverage.\n\
             Scope: public functions of vitcod_tensor::{kernels, sparse, quant} whose\n\
             signature involves `Backend`. Every such entry point must be referenced by\n\
             name somewhere in crates/tensor/tests/ — the backend-agreement property\n\
             suites are what make \"fp32 bit-identical across Scalar/Blocked/Simd\" a\n\
             checked contract rather than a hope. Adding a backend-dispatching kernel\n\
             without wiring it into the agreement tests fails this rule."
        }
        "V004" => {
            "V004 — determinism hygiene.\n\
             (a) No `==`/`!=` against a non-zero float literal in non-test library code\n\
             anywhere in the workspace (exact-zero sentinel tests on sparsity masks are\n\
             deliberate and exempt); (b) no `Instant::now()` or environment reads\n\
             (`env::var*`) in vitcod-tensor library code — kernels must be pure functions\n\
             of their inputs (one-time cached process configuration can be allowed with a\n\
             stated invariant); (c) no float reductions (`.sum()`/`.product()`) on a\n\
             `par_*` chain — parallel reduction order would break bit-identical results\n\
             across worker counts."
        }
        "V005" => {
            "V005 — unsafe-free by construction.\n\
             Every workspace crate root (src/lib.rs, src/main.rs, src/bin/*.rs of\n\
             non-vendored members) must carry `#![forbid(unsafe_code)]`, and the token\n\
             `unsafe` must not appear anywhere in workspace source, tests included\n\
             (comments and strings do not count — the check is token-level). Vendored\n\
             stand-ins under vendor/ are out of scope."
        }
        _ => return None,
    })
}
