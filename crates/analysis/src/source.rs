//! The per-file source model the rules run over: lexed tokens plus the
//! structural facts a lightweight item/block scanner can recover —
//! brace depth per token, which tokens sit inside `#[cfg(test)]` /
//! `#[test]` regions or attributes, and every `fn` item's signature and
//! body span.

use crate::lexer::{lex, Lexed, TokenKind};

/// Where a file sits in its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library/binary source under `src/`.
    Lib,
    /// Test, bench or example code (`tests/`, `benches/`, `examples/`):
    /// exempt from the panic-free and determinism rules, still scanned
    /// for `unsafe`.
    TestCode,
}

/// One `fn` item (free function or method).
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Whether the item carries `pub`.
    pub is_pub: bool,
    /// Token range `[start, end)` of the signature (from `fn` to the
    /// body's `{` or the trailing `;`).
    pub sig: (usize, usize),
    /// Token range `[start, end)` of the body, brackets included;
    /// `None` for bodyless trait-method signatures.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// One analyzed source file.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Owning crate's package name (e.g. `vitcod-serve`).
    pub crate_name: String,
    /// Library or test-code classification.
    pub kind: FileKind,
    /// Whether this file is a crate root (`src/lib.rs`, `src/main.rs`,
    /// `src/bin/*.rs`).
    pub is_crate_root: bool,
    /// Lexed tokens and comments.
    pub lexed: Lexed,
    /// Brace depth per token (depth *before* the token takes effect, so
    /// an opening `{` carries the depth outside it).
    pub depth: Vec<u32>,
    /// Whether each token sits inside a `#[cfg(test)]` item or a
    /// `#[test]`/`#[bench]` function.
    pub test_mask: Vec<bool>,
    /// Whether each token sits inside an `#[...]` attribute.
    pub attr_mask: Vec<bool>,
    /// Every `fn` item found, outermost first.
    pub functions: Vec<FnSpan>,
}

impl SourceFile {
    /// Lexes and scans `text`.
    pub fn new(
        rel_path: &str,
        crate_name: &str,
        kind: FileKind,
        is_crate_root: bool,
        text: &str,
    ) -> Self {
        let lexed = lex(text);
        let depth = brace_depths(&lexed);
        let attr_mask = attr_mask(&lexed);
        let test_mask = test_mask(&lexed, &attr_mask);
        let functions = scan_functions(&lexed, &attr_mask);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            is_crate_root,
            lexed,
            depth,
            test_mask,
            attr_mask,
            functions,
        }
    }

    /// Whether the token at `i` is test code (a test file, or inside a
    /// `#[cfg(test)]`/`#[test]` region).
    pub fn is_test(&self, i: usize) -> bool {
        self.kind == FileKind::TestCode || self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// The file's base name (`lib.rs`, `kernels.rs`, …).
    pub fn file_name(&self) -> &str {
        self.rel_path.rsplit('/').next().unwrap_or(&self.rel_path)
    }

    /// The file's stem (`kernels` for `kernels.rs`), used to qualify
    /// lock identities.
    pub fn file_stem(&self) -> &str {
        self.file_name()
            .strip_suffix(".rs")
            .unwrap_or(self.file_name())
    }

    /// Whether this file defines its own `fn NAME` (e.g. a parser with
    /// an `expect` method, which must not be mistaken for
    /// `Result::expect`).
    pub fn defines_fn(&self, name: &str) -> bool {
        self.functions.iter().any(|f| f.name == name)
    }
}

fn brace_depths(lexed: &Lexed) -> Vec<u32> {
    let mut depth = 0u32;
    lexed
        .tokens
        .iter()
        .map(|t| {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "{" => {
                        let d = depth;
                        depth += 1;
                        return d;
                    }
                    "}" => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            depth
        })
        .collect()
}

/// Marks tokens inside `#[...]` / `#![...]` attributes.
fn attr_mask(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is("#") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is("!") {
                j += 1;
            }
            if j < toks.len() && toks[j].is("[") {
                // Bracket-match the attribute body.
                let mut depth = 0i32;
                let mut k = j;
                while k < toks.len() {
                    if toks[k].is("[") {
                        depth += 1;
                    } else if toks[k].is("]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                for m in mask.iter_mut().take((k + 1).min(toks.len())).skip(i) {
                    *m = true;
                }
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Whether the attribute starting at token `i` (`#`) is `#[cfg(test)]`
/// or `#[test]`/`#[bench]`; returns the token index just past `]`.
fn classify_attr(lexed: &Lexed, i: usize) -> Option<(bool, usize)> {
    let toks = &lexed.tokens;
    if !toks.get(i)?.is("#") || !toks.get(i + 1)?.is("[") {
        return None;
    }
    let mut depth = 0i32;
    let mut k = i + 1;
    while k < toks.len() {
        if toks[k].is("[") {
            depth += 1;
        } else if toks[k].is("]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        k += 1;
    }
    let body: Vec<&str> = toks[i + 2..k.min(toks.len())]
        .iter()
        .map(|t| t.text.as_str())
        .collect();
    let is_test_attr = matches!(body.as_slice(), ["test"] | ["bench"])
        || (body.len() >= 4 && body[0] == "cfg" && body.contains(&"test"));
    Some((is_test_attr, k + 1))
}

/// Marks tokens inside items annotated `#[cfg(test)]` (typically
/// `mod tests { … }`) and inside `#[test]` functions.
fn test_mask(lexed: &Lexed, attr_mask: &[bool]) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        let Some((is_test_attr, mut j)) = classify_attr(lexed, i) else {
            i += 1;
            continue;
        };
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item.
        while let Some((_, next)) = classify_attr(lexed, j) {
            j = next;
        }
        // Find the item's body: first `{` at bracket/paren depth 0, or
        // give up at a `;` (e.g. `mod tests;`).
        let mut pb = 0i32;
        let mut k = j;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "(" | "[" => pb += 1,
                ")" | "]" => pb -= 1,
                "{" if pb == 0 => break,
                ";" if pb == 0 => {
                    k = toks.len();
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        if k >= toks.len() {
            i = j;
            continue;
        }
        // Brace-match the body and mask it.
        let mut depth = 0i32;
        let mut end = k;
        while end < toks.len() {
            if toks[end].is("{") {
                depth += 1;
            } else if toks[end].is("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            end += 1;
        }
        for m in mask.iter_mut().take((end + 1).min(toks.len())).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    let _ = attr_mask;
    mask
}

/// Finds every `fn` item (free functions and methods at any depth).
fn scan_functions(lexed: &Lexed, attr_mask: &[bool]) -> Vec<FnSpan> {
    let toks = &lexed.tokens;
    let mut fns = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident || !toks[i].is("fn") || attr_mask[i] {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        // Look back over qualifiers for `pub` (`pub fn`, `pub(crate)
        // fn`, `pub async unsafe extern "C" fn`).
        let mut back = i;
        let mut is_pub = false;
        while back > 0 {
            back -= 1;
            match toks[back].text.as_str() {
                "pub" => {
                    is_pub = true;
                    break;
                }
                "async" | "const" | "unsafe" | "extern" | ")" | "(" | "crate" | "super" | "in" => {
                    continue
                }
                _ => {
                    if toks[back].kind == TokenKind::StrLit {
                        continue; // extern "C"
                    }
                    break;
                }
            }
        }
        // Scan the signature: to the body's `{` at paren/bracket depth
        // 0, or to `;` (trait method without a body).
        let mut pb = 0i32;
        let mut k = i + 2;
        let mut body = None;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "(" | "[" => pb += 1,
                ")" | "]" => pb -= 1,
                "{" if pb == 0 => {
                    // Brace-match the body.
                    let mut depth = 0i32;
                    let mut end = k;
                    while end < toks.len() {
                        if toks[end].is("{") {
                            depth += 1;
                        } else if toks[end].is("}") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        end += 1;
                    }
                    body = Some((k, (end + 1).min(toks.len())));
                    break;
                }
                ";" if pb == 0 => break,
                _ => {}
            }
            k += 1;
        }
        fns.push(FnSpan {
            name: name_tok.text.clone(),
            is_pub,
            sig: (i, k),
            body,
            line: toks[i].line,
        });
    }
    fns
}
