#![forbid(unsafe_code)]
//! `vitcod-lint` — the workspace static analyzer CLI.
//!
//! ```text
//! vitcod-lint [--root DIR] [--deny-all] [--format text|json] [--lock-graph]
//! vitcod-lint --explain V00x
//! ```
//!
//! Exit codes: 0 clean (or findings without `--deny-all`), 1 findings
//! under `--deny-all`, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    deny_all: bool,
    json: bool,
    lock_graph: bool,
    explain: Option<String>,
}

fn usage() -> &'static str {
    "usage: vitcod-lint [--root DIR] [--deny-all] [--format text|json] [--lock-graph]\n\
     \x20      vitcod-lint --explain V00x\n\
     \n\
     Checks the ViTCoD workspace invariants V001..V005 (see --explain).\n\
     --root DIR     workspace root (default: auto-detect from CWD)\n\
     --deny-all     exit 1 if any diagnostic remains after allows\n\
     --format FMT   text (default) or json\n\
     --lock-graph   print the serve/transport lock-order graph\n\
     --explain ID   describe one rule and exit"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::new(),
        deny_all: false,
        json: false,
        lock_graph: false,
        explain: None,
    };
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => opts.deny_all = true,
            "--lock-graph" => opts.lock_graph = true,
            "--root" => {
                let v = args.next().ok_or("--root requires a directory")?;
                root = Some(PathBuf::from(v));
            }
            "--format" => {
                let v = args.next().ok_or("--format requires text or json")?;
                match v.as_str() {
                    "json" => opts.json = true,
                    "text" => opts.json = false,
                    other => return Err(format!("unknown format '{other}'")),
                }
            }
            "--explain" => {
                let v = args
                    .next()
                    .ok_or("--explain requires a rule id (V001..V005)")?;
                opts.explain = Some(v);
            }
            "--help" | "-h" => return Err(String::new()),
            other => {
                if let Some(fmt) = other.strip_prefix("--format=") {
                    match fmt {
                        "json" => opts.json = true,
                        "text" => opts.json = false,
                        _ => return Err(format!("unknown format '{fmt}'")),
                    }
                } else {
                    return Err(format!("unknown argument '{other}'"));
                }
            }
        }
    }
    opts.root = match root {
        Some(r) => r,
        None => find_root()?,
    };
    Ok(opts)
}

/// Walks up from the CWD to the first directory whose `Cargo.toml`
/// declares a `[workspace]`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read CWD: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the CWD; pass --root".to_string());
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if let Some(rule) = &opts.explain {
        return match vitcod_analysis::diag::explain(rule) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "error: unknown rule '{rule}' (known: {})",
                    vitcod_analysis::diag::RULE_IDS.join(", ")
                );
                ExitCode::from(2)
            }
        };
    }
    let report = match vitcod_analysis::analyze(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.json {
        println!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        if opts.lock_graph {
            print!("{}", report.lock_graph_text());
        }
        eprintln!(
            "vitcod-lint: {} file(s) scanned, {} diagnostic(s), {} allow(s) used, \
             lock graph: {} node(s) / {} edge(s) / {} cycle(s)",
            report.files_scanned,
            report.diagnostics.len(),
            report.allows_used,
            report.lock_graph.nodes.len(),
            report.lock_graph.edges.len(),
            report.lock_graph.cycles.len()
        );
    }
    if opts.deny_all && !report.diagnostics.is_empty() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
