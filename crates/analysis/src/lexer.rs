//! A hand-rolled, dependency-free lexer for Rust source.
//!
//! The rules in this crate reason about *token* streams, never raw
//! text: `unwrap` inside a doc comment, a string literal, or a raw
//! string must not trip a lint. The lexer therefore understands every
//! construct that can hide arbitrary text inside a Rust file —
//! line/doc comments, (nested) block comments, plain and raw strings
//! with arbitrary hash fences, byte strings, char literals — and
//! disambiguates lifetimes (`'a`) from char literals (`'a'`), which is
//! the one genuinely ambiguous spot in Rust's lexical grammar.
//!
//! Comments are not discarded: they come back in a side channel
//! ([`Lexed::comments`]) because the allow-directive syntax
//! (`// vitcod-lint: allow(V00x, reason)`) lives in them.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `self`, …).
    Ident,
    /// Lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Character literal (`'x'`, `'\n'`, `'\u{1F600}'`).
    CharLit,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    StrLit,
    /// Numeric literal; [`Token::is_float`] distinguishes floats.
    NumLit,
    /// A single punctuation byte (`.`, `(`, `[`, `=`, …).
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Kind of token.
    pub kind: TokenKind,
    /// The token's text, as written (escapes unprocessed).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this is the identifier or punctuation `s`.
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }

    /// Whether this is a numeric literal with float syntax (a fraction,
    /// an exponent, or an `f32`/`f64` suffix).
    pub fn is_float(&self) -> bool {
        if self.kind != TokenKind::NumLit {
            return false;
        }
        let t = &self.text;
        if t.starts_with("0x") || t.starts_with("0o") || t.starts_with("0b") {
            return false;
        }
        t.ends_with("f32") || t.ends_with("f64") || t.contains('.') || t.contains(['e', 'E'])
    }

    /// Numeric value of a float literal (`None` for non-floats or
    /// unparseable text).
    pub fn float_value(&self) -> Option<f64> {
        if !self.is_float() {
            return None;
        }
        let cleaned: String = self.text.replace('_', "");
        let trimmed = cleaned
            .strip_suffix("f32")
            .or_else(|| cleaned.strip_suffix("f64"))
            .unwrap_or(&cleaned);
        trimmed.parse().ok()
    }
}

/// One comment, for directive scanning.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including its delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Whether any token precedes the comment on its starting line
    /// (trailing comments attach to their own line; leading comments
    /// attach to the next code line).
    pub has_code_before: bool,
}

/// Lexer output: code tokens plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, comments and whitespace stripped.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source`. Unterminated constructs never panic: the lexer
/// consumes to end of input and returns what it has (a linter must
/// degrade gracefully on code `rustc` would reject).
pub fn lex(source: &str) -> Lexed {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        last_token_line: 0,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    /// Line of the most recent code token (trailing-comment detection).
    last_token_line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'\'' => self.lifetime_or_char(),
                b'"' => self.string(self.pos),
                b'r' | b'b' | b'c' if self.starts_literal_prefix() => self.prefixed_literal(),
                b if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => self.ident(),
                b if b.is_ascii_digit() => self.number(),
                _ => {
                    self.push(TokenKind::Punct, self.pos, self.pos + 1);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, end: usize) {
        let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
        self.out.tokens.push(Token {
            kind,
            text,
            line: self.line,
        });
        self.last_token_line = self.line;
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        self.out.comments.push(Comment {
            text: String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned(),
            line: start_line,
            has_code_before: self.last_token_line == start_line,
        });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        let had_code = self.last_token_line == self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                self.line += 1;
                self.pos += 1;
            } else if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    break;
                }
            } else {
                self.pos += 1;
            }
        }
        self.out.comments.push(Comment {
            text: String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned(),
            line: start_line,
            has_code_before: had_code,
        });
    }

    /// `'` starts either a lifetime or a char literal. A char literal
    /// closes with `'` after one (possibly escaped) character; a
    /// lifetime is `'` + identifier with no closing quote.
    fn lifetime_or_char(&mut self) {
        let start = self.pos;
        match self.peek(1) {
            // `'\…'` — always a char literal.
            Some(b'\\') => {
                self.pos += 2; // past '\
                while let Some(&b) = self.bytes.get(self.pos) {
                    self.pos += 1;
                    if b == b'\'' {
                        break;
                    }
                    if b == b'\n' {
                        self.line += 1;
                        break; // unterminated; bail at EOL
                    }
                }
                self.push_span(TokenKind::CharLit, start);
            }
            Some(c) if c == b'_' || c.is_ascii_alphanumeric() => {
                // Run of identifier chars after the quote.
                let mut end = self.pos + 2;
                while self
                    .bytes
                    .get(end)
                    .is_some_and(|&b| b == b'_' || b.is_ascii_alphanumeric())
                {
                    end += 1;
                }
                if self.bytes.get(end) == Some(&b'\'') {
                    // `'a'`, `'字'` … closed: char literal.
                    self.pos = end + 1;
                    self.push_span(TokenKind::CharLit, start);
                } else {
                    // `'a`, `'static` … unclosed: lifetime.
                    self.pos = end;
                    self.push_span(TokenKind::Lifetime, start);
                }
            }
            // `'('`-style single-punct char literal, or a stray quote.
            Some(_) if self.peek(2) == Some(b'\'') => {
                self.pos += 3;
                self.push_span(TokenKind::CharLit, start);
            }
            _ => {
                self.pos += 1;
                self.push(TokenKind::Punct, start, self.pos);
            }
        }
    }

    fn push_span(&mut self, kind: TokenKind, start: usize) {
        self.push(kind, start, self.pos);
    }

    /// Whether the `r`/`b`/`c` at `pos` prefixes a string literal
    /// (`r"`, `r#"`, `br"`, `b"`, `b'`, `c"` …) rather than starting an
    /// identifier (including raw identifiers like `r#match`).
    fn starts_literal_prefix(&self) -> bool {
        let rest = &self.bytes[self.pos..];
        let after_prefix = |mut i: usize| -> Option<u8> {
            // Skip hash fence for raw forms.
            if rest.get(i) == Some(&b'#') {
                while rest.get(i) == Some(&b'#') {
                    i += 1;
                }
                // `r#ident` (raw identifier) has no quote after hashes.
                return rest.get(i).copied().filter(|&b| b == b'"');
            }
            rest.get(i).copied().filter(|&b| b == b'"' || b == b'\'')
        };
        match rest.first() {
            Some(b'r') | Some(b'c') => after_prefix(1).is_some(),
            Some(b'b') => match rest.get(1) {
                Some(b'r') => after_prefix(2) == Some(b'"'),
                Some(b'"') | Some(b'\'') => true,
                _ => false,
            },
            _ => false,
        }
    }

    /// Lexes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`, `c"…"`.
    fn prefixed_literal(&mut self) {
        let start = self.pos;
        // Consume the letter prefix.
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b == b'r' || b == b'b' || b == b'c')
        {
            self.pos += 1;
            if self.pos - start >= 2 {
                break;
            }
        }
        let raw = self.bytes[start..self.pos].contains(&b'r');
        if raw {
            let mut hashes = 0usize;
            while self.bytes.get(self.pos) == Some(&b'#') {
                hashes += 1;
                self.pos += 1;
            }
            self.pos += 1; // opening quote
                           // Raw string: ends at `"` followed by `hashes` hashes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'\n' {
                    self.line += 1;
                }
                if b == b'"' {
                    let mut k = 0usize;
                    while k < hashes && self.bytes.get(self.pos + 1 + k) == Some(&b'#') {
                        k += 1;
                    }
                    if k == hashes {
                        self.pos += 1 + hashes;
                        self.push_span(TokenKind::StrLit, start);
                        return;
                    }
                }
                self.pos += 1;
            }
            self.push_span(TokenKind::StrLit, start); // unterminated
        } else if self.bytes.get(self.pos) == Some(&b'\'') {
            // Byte char literal `b'x'`.
            self.pos += 1;
            self.char_body();
            self.push_span(TokenKind::CharLit, start);
        } else {
            self.string(start);
        }
    }

    /// Consumes a (possibly escaped) char-literal body up to and
    /// including the closing quote.
    fn char_body(&mut self) {
        let mut escaped = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                return;
            }
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'\'' {
                return;
            }
        }
    }

    /// Lexes a plain `"…"` string starting the token at `tok_start`
    /// (which may precede `pos` by a `b`/`c` prefix).
    fn string(&mut self, tok_start: usize) {
        self.pos += 1; // opening quote
        let mut escaped = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                escaped = false;
                continue;
            }
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                break;
            }
        }
        self.push_span(TokenKind::StrLit, tok_start);
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80)
        {
            self.pos += 1;
        }
        self.push_span(TokenKind::Ident, start);
    }

    fn number(&mut self) {
        let start = self.pos;
        let radix_prefixed = self.bytes[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x') | Some(b'o') | Some(b'b'));
        if radix_prefixed {
            self.pos += 2;
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.pos += 1;
            }
            self.push_span(TokenKind::NumLit, start);
            return;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_digit() || b == b'_')
        {
            self.pos += 1;
        }
        // Fraction — but `1..2` is a range and `1.method()` a call.
        if self.bytes.get(self.pos) == Some(&b'.')
            && self.peek(1).is_some_and(|b| b.is_ascii_digit())
        {
            self.pos += 1;
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|&b| b.is_ascii_digit() || b == b'_')
            {
                self.pos += 1;
            }
        } else if self.bytes.get(self.pos) == Some(&b'.')
            && !self
                .peek(1)
                .is_some_and(|b| b == b'.' || b == b'_' || b.is_ascii_alphabetic())
        {
            // Trailing-dot float like `1.`.
            self.pos += 1;
        }
        // Exponent.
        if self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b == b'e' || b == b'E')
            && self
                .peek(1)
                .is_some_and(|b| b.is_ascii_digit() || b == b'+' || b == b'-')
        {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // Type suffix (`f32`, `u64`, …).
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
        }
        self.push_span(TokenKind::NumLit, start);
    }
}
