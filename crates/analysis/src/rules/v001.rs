//! V001 — no panics in serving library code.
//!
//! The serve path's determinism story rests on "a request either
//! resolves or errors"; a stray `unwrap()` in the transport or the
//! batcher turns a poisoned lock or a malformed edge case into a dead
//! worker. See [`crate::diag::explain`]'s V001 entry for the contract.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::{FileKind, SourceFile};

/// Crates whose library code must be panic-free.
const PANIC_FREE_CRATES: [&str; 3] = ["vitcod-serve", "vitcod-transport", "vitcod-engine"];
/// Crates where scalar subscript indexing is additionally flagged.
const INDEX_FREE_CRATES: [&str; 2] = ["vitcod-serve", "vitcod-transport"];

/// Panicking macros flagged by name (when followed by `!`).
const PANIC_MACROS: [&str; 4] = ["panic", "todo", "unimplemented", "unreachable"];

pub(crate) fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.kind != FileKind::Lib || !PANIC_FREE_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let check_indexing = INDEX_FREE_CRATES.contains(&file.crate_name.as_str());
    let has_own_expect = file.defines_fn("expect");
    let toks = &file.lexed.tokens;
    let diag = |line: u32, message: String| Diagnostic {
        file: file.rel_path.clone(),
        line,
        rule: "V001",
        message,
    };
    for i in 0..toks.len() {
        if file.is_test(i) || file.attr_mask[i] {
            continue;
        }
        let t = &toks[i];
        // `.unwrap()` / `.expect(…)` method calls.
        if t.kind == TokenKind::Ident && i > 0 && toks[i - 1].is(".") {
            let called = toks.get(i + 1).is_some_and(|n| n.is("("));
            if called && t.is("unwrap") {
                out.push(diag(
                    t.line,
                    "`.unwrap()` can panic the serve path; handle the error \
                     (poisoned locks: `unwrap_or_else(|e| e.into_inner())`) or state the \
                     invariant in an allow directive"
                        .to_string(),
                ));
            } else if called && t.is("expect") {
                // A parser defining its own `fn expect` calls it as
                // `self.expect(…)`; that is not `Result::expect`.
                let own_method = has_own_expect && i >= 2 && toks[i - 2].is("self");
                if !own_method {
                    out.push(diag(
                        t.line,
                        "`.expect(…)` can panic the serve path; return a Result or \
                         recover, or state the invariant in an allow directive"
                            .to_string(),
                    ));
                }
            }
        }
        // `panic!` / `todo!` / `unimplemented!` / `unreachable!`.
        if t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is("!"))
            && !(i > 0 && toks[i - 1].is("."))
        {
            out.push(diag(
                t.line,
                format!(
                    "`{}!` aborts the worker that hits it; restructure so the case is \
                     handled, or state why it is unreachable in an allow directive",
                    t.text
                ),
            ));
        }
        // Scalar subscript indexing `expr[i]` (serve/transport only).
        if check_indexing && t.is("[") && i > 0 {
            let prev = &toks[i - 1];
            let postfix = match prev.kind {
                TokenKind::Ident => !super::KEYWORDS.contains(&prev.text.as_str()),
                TokenKind::Punct => prev.is(")") || prev.is("]"),
                _ => false,
            };
            if !postfix {
                continue;
            }
            // Bracket-match; ranges (`..` at depth 0) are slicing, which
            // the wire parsers use with checked bounds everywhere.
            let mut depth = 0i32;
            let mut j = i;
            let mut is_range = false;
            let mut empty = true;
            while j < toks.len() {
                let tj = &toks[j];
                if tj.is("[") || tj.is("(") || tj.is("{") {
                    depth += 1;
                } else if tj.is("]") || tj.is(")") || tj.is("}") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if j > i {
                        empty = false;
                    }
                    if depth == 1 && tj.is(".") && toks.get(j + 1).is_some_and(|n| n.is(".")) {
                        is_range = true;
                    }
                }
                j += 1;
            }
            if !is_range && !empty {
                out.push(diag(
                    t.line,
                    "scalar indexing `…[i]` panics out of bounds; use `.get(i)` / \
                     `.get_mut(i)` or state the bounds invariant in an allow directive"
                        .to_string(),
                ));
            }
        }
    }
}
