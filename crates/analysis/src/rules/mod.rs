//! The project-specific rule set; one module per rule.
//!
//! Rules receive the full workspace (every [`SourceFile`]) so that
//! cross-file rules (V003's test cross-reference, V002's global cycle
//! check) and per-file rules share one entry point.

use crate::diag::{Diagnostic, LockGraph};
use crate::source::SourceFile;

pub mod v001;
pub mod v002;
pub mod v003;
pub mod v004;
pub mod v005;

/// Runs every rule over `files`, returning raw (pre-allow-filtering)
/// diagnostics per file index, plus the lock graph.
pub fn run_all(files: &[SourceFile]) -> (Vec<Vec<Diagnostic>>, LockGraph) {
    let mut per_file: Vec<Vec<Diagnostic>> = files.iter().map(|_| Vec::new()).collect();
    for (i, file) in files.iter().enumerate() {
        v001::check(file, &mut per_file[i]);
        v004::check(file, &mut per_file[i]);
        v005::check_file(file, &mut per_file[i]);
    }
    let graph = v002::check(files, &mut per_file);
    v003::check(files, &mut per_file);
    (per_file, graph)
}

/// Rust keywords that can directly precede `[` without forming a
/// subscript expression.
pub(crate) const KEYWORDS: [&str; 28] = [
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn", "for",
    "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return",
    "static", "struct", "trait", "use", "while",
];
