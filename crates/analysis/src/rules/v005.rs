//! V005 — unsafe-free by construction.
//!
//! Every workspace crate root must carry `#![forbid(unsafe_code)]`,
//! and the `unsafe` token must not appear anywhere in workspace source
//! (tests included — test code exercising UB is still UB). The check
//! is token-level, so `unsafe` inside comments, doc examples rendered
//! as strings, or string literals does not trip it.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

pub(crate) fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.lexed.tokens;
    if file.is_crate_root {
        let has_forbid = (0..toks.len()).any(|i| {
            toks[i].is("forbid")
                && toks.get(i + 1).is_some_and(|n| n.is("("))
                && toks.get(i + 2).is_some_and(|n| n.is("unsafe_code"))
        });
        if !has_forbid {
            out.push(Diagnostic {
                file: file.rel_path.clone(),
                line: 1,
                rule: "V005",
                message: "crate root is missing `#![forbid(unsafe_code)]`; every workspace \
                          crate opts out of unsafe at the root so the guarantee is \
                          compiler-enforced, not reviewed-for"
                    .to_string(),
            });
        }
    }
    for t in toks {
        if t.kind == TokenKind::Ident && t.is("unsafe") {
            out.push(Diagnostic {
                file: file.rel_path.clone(),
                line: t.line,
                rule: "V005",
                message: "`unsafe` token in workspace source; the workspace is unsafe-free \
                          by policy — find a safe formulation or move the need into a \
                          vendored dependency boundary"
                    .to_string(),
            });
        }
    }
}
