//! V002 — lock discipline: a static deadlock/race detector tuned to the
//! serve/transport concurrency web.
//!
//! Two checks run over every function body in `vitcod-serve` and
//! `vitcod-transport` library code:
//!
//! 1. **Guards across blocking calls.** A `MutexGuard`/`RwLock` guard
//!    held while the thread parks (`recv`, `wait_timeout` on *another*
//!    lock's condvar, `accept`, socket I/O, `sleep`, `pop_until`, …)
//!    stalls every other thread contending for that lock — the classic
//!    serving-tail-latency bug. The condvar handoff (`cv.wait(guard)`)
//!    is the one legitimate shape and is recognized by the guard
//!    appearing as a call argument.
//! 2. **Lock-order cycles.** Acquiring `B` while holding `A` adds the
//!    edge `A -> B` to a global order graph; any cycle (including the
//!    self-edge of re-acquiring a held lock) is a potential deadlock
//!    and is reported with the witness locations.
//!
//! Guard tracking is lexical but scope-aware: `let`-bound guards live
//! to the end of their block (or an explicit `drop(guard)`); temporary
//! guards live to the end of their statement — except in a `match`
//! scrutinee, where Rust keeps the temporary alive for the whole match
//! (the infamous extended-temporary deadlock), and so does this pass.

use crate::diag::{Diagnostic, LockEdge, LockGraph};
use crate::lexer::{Token, TokenKind};
use crate::source::{FileKind, FnSpan, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose lock usage is modelled.
const LOCKED_CRATES: [&str; 2] = ["vitcod-serve", "vitcod-transport"];

/// Zero-argument methods that produce a guard.
const ACQUIRERS: [&str; 3] = ["lock", "read", "write"];

/// Calls that park the thread. `read`/`write`/`join` are contextual:
/// with arguments they are buffer I/O (blocking), with zero arguments
/// `read`/`write` are lock acquisitions and `join` is thread join
/// (blocking) vs `Path::join` (not).
const BLOCKING: [&str; 13] = [
    "recv",
    "recv_timeout",
    "recv_deadline",
    "wait",
    "wait_timeout",
    "wait_while",
    "wait_timeout_while",
    "accept",
    "connect",
    "sleep",
    "pop_until",
    "read_to_end",
    "read_exact",
];

/// Zero-argument blocking calls (`flush()`, `JoinHandle::join()`).
const BLOCKING_NO_ARGS: [&str; 2] = ["flush", "join"];

/// Blocking calls that require at least one argument (`stream.read(buf)`
/// vs the zero-argument `RwLock::read()`; `HttpClient::post` and
/// `post_with_header` are full request/response round trips on a
/// blocking socket, and `vitcod_obs::fetch_metrics` is a whole
/// connect-request-parse scrape).
const BLOCKING_WITH_ARGS: [&str; 6] = [
    "read",
    "write",
    "write_all",
    "post",
    "post_with_header",
    "fetch_metrics",
];

#[derive(Debug)]
struct Guard {
    lock: String,
    var: Option<String>,
    /// Brace depth the binding lives at (guards die when the walk
    /// leaves this depth); `None` for statement temporaries.
    block_depth: Option<u32>,
    /// For temporaries: token index past which the guard is dead
    /// (end of statement, or end of the enclosing `match`).
    dies_after: Option<usize>,
    line: u32,
}

pub(crate) fn check(files: &[SourceFile], out: &mut [Vec<Diagnostic>]) -> LockGraph {
    let mut nodes: BTreeSet<String> = BTreeSet::new();
    let mut edges: Vec<LockEdge> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if file.kind != FileKind::Lib || !LOCKED_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for f in &file.functions {
            let Some((body_start, body_end)) = f.body else {
                continue;
            };
            if file.is_test(body_start) {
                continue;
            }
            scan_function(
                file,
                f,
                body_start,
                body_end,
                &mut nodes,
                &mut edges,
                &mut out[fi],
            );
        }
    }
    let cycles = find_cycles(&nodes, &edges);
    for cycle in &cycles {
        // Attach the cycle diagnostic to a witness edge on the cycle.
        if let Some(e) = edges
            .iter()
            .find(|e| cycle.contains(&e.from) && cycle.contains(&e.to))
        {
            // Push onto the first scanned file's list that matches.
            for (fi, file) in files.iter().enumerate() {
                if file.rel_path == e.file {
                    out[fi].push(Diagnostic {
                        file: e.file.clone(),
                        line: e.line,
                        rule: "V002",
                        message: format!(
                            "lock-order cycle {}: these locks are acquired in \
                             conflicting orders somewhere in serve/transport — a \
                             potential deadlock (run with --lock-graph for the full graph)",
                            cycle.join(" -> ")
                        ),
                    });
                    break;
                }
            }
        }
    }
    LockGraph {
        nodes: nodes.into_iter().collect(),
        edges,
        cycles,
    }
}

#[allow(clippy::too_many_arguments)]
fn scan_function(
    file: &SourceFile,
    f: &FnSpan,
    body_start: usize,
    body_end: usize,
    nodes: &mut BTreeSet<String>,
    edges: &mut Vec<LockEdge>,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &file.lexed.tokens;
    let mut guards: Vec<Guard> = Vec::new();
    let mut stmt_start = body_start;
    for i in body_start..body_end.min(toks.len()) {
        let t = &toks[i];
        // Scope maintenance.
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                ";" | "{" | "}" => {
                    guards.retain(|g| match (g.block_depth, g.dies_after) {
                        // `let`-bound: dies with its block (below).
                        (Some(_), _) => true,
                        // Match-scrutinee temporary: extended lifetime.
                        (None, Some(end)) => i < end,
                        // Statement temporary: dead at this boundary.
                        (None, None) => false,
                    });
                    if t.is("}") {
                        // Leaving a block kills its `let`-bound guards.
                        let depth_after = file.depth[i];
                        guards.retain(|g| match g.block_depth {
                            Some(d) => depth_after >= d,
                            None => true,
                        });
                    }
                    stmt_start = i + 1;
                    continue;
                }
                _ => {}
            }
        }
        if t.kind != TokenKind::Ident {
            continue;
        }
        // Explicit `drop(guard)`.
        if t.is("drop") && toks.get(i + 1).is_some_and(|n| n.is("(")) {
            if let Some(arg) = toks.get(i + 2) {
                guards.retain(|g| g.var.as_deref() != Some(arg.text.as_str()));
            }
            continue;
        }
        let is_method = i > 0 && toks[i - 1].is(".");
        let open_paren = toks.get(i + 1).is_some_and(|n| n.is("("));
        if !open_paren {
            continue;
        }
        let (arg_idents, has_args, call_end) = call_args(toks, i + 1);
        // Lock acquisition: zero-argument `.lock()` / `.read()` /
        // `.write()`.
        if is_method && ACQUIRERS.contains(&t.text.as_str()) && !has_args {
            let lock = lock_identity(file, toks, i);
            nodes.insert(lock.clone());
            for g in &guards {
                if g.lock != lock {
                    edges.push(LockEdge {
                        from: g.lock.clone(),
                        to: lock.clone(),
                        file: file.rel_path.clone(),
                        line: t.line,
                        function: f.name.clone(),
                    });
                } else {
                    out.push(Diagnostic {
                        file: file.rel_path.clone(),
                        line: t.line,
                        rule: "V002",
                        message: format!(
                            "`{}` re-acquired while already held (guard from line {}): \
                             self-deadlock on a Mutex, writer starvation on an RwLock",
                            lock, g.line
                        ),
                    });
                }
            }
            guards.push(new_guard(file, toks, i, stmt_start, lock, t.line));
            continue;
        }
        // Blocking call while holding a guard?
        let blocking = BLOCKING.contains(&t.text.as_str())
            || (BLOCKING_NO_ARGS.contains(&t.text.as_str()) && !has_args && is_method)
            || (BLOCKING_WITH_ARGS.contains(&t.text.as_str()) && has_args && is_method);
        if blocking && !guards.is_empty() {
            // The condvar handoff: the guard itself rides into the call.
            let consumes_guard = guards
                .iter()
                .any(|g| g.var.as_deref().is_some_and(|v| arg_idents.contains(v)));
            if !consumes_guard {
                for g in &guards {
                    out.push(Diagnostic {
                        file: file.rel_path.clone(),
                        line: t.line,
                        rule: "V002",
                        message: format!(
                            "guard on `{}` (acquired line {}) held across blocking \
                             call `{}`; drop the guard first — every thread contending \
                             for that lock stalls behind this wait",
                            g.lock, g.line, t.text
                        ),
                    });
                }
            }
        }
        let _ = call_end;
    }
}

/// Collects the top-level argument identifiers of the call whose `(`
/// sits at `open`; returns (idents, any_args, index_past_close).
fn call_args(toks: &[Token], open: usize) -> (BTreeSet<String>, bool, usize) {
    let mut idents = BTreeSet::new();
    let mut depth = 0i32;
    let mut has_args = false;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is("(") || t.is("[") || t.is("{") {
            depth += 1;
        } else if t.is(")") || t.is("]") || t.is("}") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth >= 1 {
            has_args = true;
            if t.kind == TokenKind::Ident {
                idents.insert(t.text.clone());
            }
        }
        j += 1;
    }
    (idents, has_args, j + 1)
}

/// Lock identity of the acquisition at token `i` (the `lock`/`read`/
/// `write` ident): `file_stem.field`, where `field` is the receiver's
/// final field name — unifying `self.state.lock()` and
/// `self.inner.state.lock()` onto one identity per file.
fn lock_identity(file: &SourceFile, toks: &[Token], i: usize) -> String {
    let field = if i >= 2 {
        let prev = &toks[i - 2];
        if prev.kind == TokenKind::Ident && !prev.is("self") {
            prev.text.clone()
        } else if prev.is(")") {
            // `…get_or_init(||…).lock()` — name by the method called.
            let mut depth = 0i32;
            let mut j = i - 2;
            loop {
                if toks[j].is(")") {
                    depth += 1;
                } else if toks[j].is("(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            toks.get(j.wrapping_sub(1))
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_else(|| "anon".to_string())
        } else {
            "anon".to_string()
        }
    } else {
        "anon".to_string()
    };
    format!("{}.{}", file.file_stem(), field)
}

/// Builds the guard for the acquisition at token `i`, inferring its
/// scope from the statement shape.
fn new_guard(
    file: &SourceFile,
    toks: &[Token],
    i: usize,
    stmt_start: usize,
    lock: String,
    line: u32,
) -> Guard {
    // `let [mut] NAME = …` (or `let (A, B) = …`) binding? A deref
    // initializer (`let v = *x.lock()…`) copies the value out — the
    // guard itself is a statement temporary, not bound to `v`.
    let mut var = None;
    let mut k = stmt_start;
    while k < i {
        if toks[k].is("let") {
            let mut v = k + 1;
            while toks.get(v).is_some_and(|t| t.is("mut") || t.is("(")) {
                v += 1;
            }
            if let Some(name) = toks.get(v).filter(|t| t.kind == TokenKind::Ident) {
                let mut eq = v;
                let derefed = loop {
                    match toks.get(eq) {
                        Some(t) if t.is("=") => {
                            break toks.get(eq + 1).is_some_and(|n| n.is("*"));
                        }
                        Some(_) if eq < i => eq += 1,
                        _ => break false,
                    }
                };
                if !derefed {
                    var = Some(name.text.clone());
                }
            }
            break;
        }
        k += 1;
    }
    if var.is_some() {
        return Guard {
            lock,
            var,
            block_depth: Some(file.depth[i]),
            dies_after: None,
            line,
        };
    }
    // Temporary. In a `match` scrutinee, Rust extends the temporary to
    // the end of the match — model that, it is the classic
    // extended-borrow deadlock.
    let in_match = (stmt_start..i).any(|k| toks[k].is("match"));
    let dies_after = if in_match {
        // Find the match block's `{` and brace-match it.
        let mut j = i;
        while j < toks.len() && !toks[j].is("{") {
            j += 1;
        }
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is("{") {
                depth += 1;
            } else if toks[j].is("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        Some(j + 1)
    } else {
        // Dead at the next statement boundary (the scan drops it at the
        // next `;`/`{`/`}` it walks over).
        None
    };
    Guard {
        lock,
        var: None,
        block_depth: None,
        dies_after,
        line,
    }
}

/// Finds elementary cycles in the order graph (DFS back-edge walk; the
/// graph is tiny, so simplicity beats Johnson's algorithm).
fn find_cycles(nodes: &BTreeSet<String>, edges: &[LockEdge]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for start in nodes.iter().map(String::as_str) {
        if done.contains(start) {
            continue;
        }
        let mut stack: Vec<&str> = vec![start];
        let mut path: Vec<&str> = Vec::new();
        let mut on_path: BTreeSet<&str> = BTreeSet::new();
        // Iterative DFS with an explicit edge stack.
        let mut iter_stack: Vec<(&str, Vec<&str>)> = vec![(
            start,
            adj.get(start)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default(),
        )];
        path.push(start);
        on_path.insert(start);
        while let Some((node, succs)) = iter_stack.last_mut() {
            if let Some(next) = succs.pop() {
                if on_path.contains(next) {
                    // Back edge: record the cycle slice.
                    let pos = path.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        path[pos..].iter().map(|s| s.to_string()).collect();
                    cycle.push(next.to_string());
                    if !cycles.iter().any(|c| same_cycle(c, &cycle)) {
                        cycles.push(cycle);
                    }
                } else if !done.contains(next) {
                    path.push(next);
                    on_path.insert(next);
                    iter_stack.push((
                        next,
                        adj.get(next)
                            .map(|s| s.iter().copied().collect())
                            .unwrap_or_default(),
                    ));
                }
            } else {
                let node = *node;
                done.insert(node);
                on_path.remove(node);
                path.pop();
                iter_stack.pop();
            }
        }
        let _ = stack.pop();
    }
    cycles
}

/// Whether two cycle paths denote the same rotation-invariant cycle.
fn same_cycle(a: &[String], b: &[String]) -> bool {
    let strip = |c: &[String]| -> BTreeSet<String> { c.iter().cloned().collect() };
    strip(a) == strip(b)
}
