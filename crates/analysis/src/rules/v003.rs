//! V003 — backend-contract coverage.
//!
//! The tensor crate's core promise is that `Backend::Scalar`,
//! `Backend::Blocked` and `Backend::Simd` are bit-identical for fp32.
//! That promise is only as good as the agreement suites under
//! `crates/tensor/tests/`: a public kernel entry point that dispatches
//! on `Backend` but is referenced by no test there ships an unchecked
//! code path. This rule cross-references every such `pub fn` against
//! the identifiers appearing in the tensor test files.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::{FileKind, SourceFile};
use std::collections::BTreeSet;

/// Modules of `vitcod-tensor` whose public Backend surface must be
/// covered.
const COVERED_MODULES: [&str; 3] = ["kernels", "sparse", "quant"];

pub(crate) fn check(files: &[SourceFile], out: &mut [Vec<Diagnostic>]) {
    // Identifiers referenced anywhere in crates/tensor/tests/.
    let mut test_idents: BTreeSet<&str> = BTreeSet::new();
    for file in files {
        if file.crate_name == "vitcod-tensor" && file.kind == FileKind::TestCode {
            for t in &file.lexed.tokens {
                if t.kind == TokenKind::Ident {
                    test_idents.insert(t.text.as_str());
                }
            }
        }
    }
    for (fi, file) in files.iter().enumerate() {
        if file.crate_name != "vitcod-tensor"
            || file.kind != FileKind::Lib
            || !COVERED_MODULES.contains(&file.file_stem())
        {
            continue;
        }
        for f in &file.functions {
            if !f.is_pub || file.is_test(f.sig.0) {
                continue;
            }
            // Does the signature mention `Backend`?
            let sig_mentions_backend = (f.sig.0..f.sig.1.min(file.lexed.tokens.len()))
                .any(|i| file.lexed.tokens[i].is("Backend"));
            if !sig_mentions_backend {
                continue;
            }
            if !test_idents.contains(f.name.as_str()) {
                out[fi].push(Diagnostic {
                    file: file.rel_path.clone(),
                    line: f.line,
                    rule: "V003",
                    message: format!(
                        "`pub fn {}` dispatches on Backend but no test under \
                         crates/tensor/tests/ references it; wire it into the \
                         backend-agreement suite so the bit-identical contract is checked",
                        f.name
                    ),
                });
            }
        }
    }
}
