//! V004 — determinism hygiene.
//!
//! Three checks that keep "same artifact + same inputs = same bytes
//! out" true:
//!
//! * **(a)** no `==`/`!=` against a non-zero float literal in non-test
//!   library code, workspace-wide. Exact-zero compares are exempt: the
//!   sparsity masks use `0.0` as a structural sentinel on values that
//!   were *assigned*, never computed, so `== 0.0` is deliberate there.
//! * **(b)** no `Instant::now()` and no environment reads in
//!   `vitcod-tensor` library code — kernels are pure functions of
//!   their inputs. One-time cached process configuration
//!   (`VITCOD_BACKEND`, `VITCOD_NUM_THREADS`) is allowed with a stated
//!   invariant.
//! * **(c)** no `.sum()` / `.product()` at the end of a `par_*` chain —
//!   parallel float reduction order varies with worker count.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::source::{FileKind, SourceFile};

pub(crate) fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.kind != FileKind::Lib {
        return;
    }
    let toks = &file.lexed.tokens;
    let diag = |line: u32, message: String| Diagnostic {
        file: file.rel_path.clone(),
        line,
        rule: "V004",
        message,
    };
    let in_tensor = file.crate_name == "vitcod-tensor";
    for i in 0..toks.len() {
        if file.is_test(i) || file.attr_mask[i] {
            continue;
        }
        let t = &toks[i];
        // (a) float equality against a non-zero literal. The lexer
        // emits single-character puncts, so `==` is two adjacent `=`
        // tokens and `!=` is `!` then `=`.
        let is_eq = t.is("=")
            && toks.get(i + 1).is_some_and(|n| n.is("="))
            && !(i > 0 && matches!(toks[i - 1].text.as_str(), "=" | "<" | ">" | "!"));
        let is_ne = t.is("!") && toks.get(i + 1).is_some_and(|n| n.is("="));
        if is_eq || is_ne {
            let left = i.checked_sub(1).map(|j| &toks[j]);
            // Right operand may carry a unary minus.
            let mut r = i + 2;
            if toks.get(r).is_some_and(|n| n.is("-")) {
                r += 1;
            }
            let right = toks.get(r);
            let nonzero_float = |tok: Option<&crate::lexer::Token>| {
                tok.is_some_and(|tok| {
                    tok.kind == TokenKind::NumLit
                        && tok.is_float()
                        && tok.float_value() != Some(0.0)
                })
            };
            if nonzero_float(left) || nonzero_float(right) {
                out.push(diag(
                    t.line,
                    "exact equality against a non-zero float literal; floats computed \
                     through kernels are not exact — compare with a tolerance, or state \
                     why the value is structural in an allow directive"
                        .to_string(),
                ));
            }
        }
        if t.kind != TokenKind::Ident {
            continue;
        }
        // (b) wall clock / environment in tensor kernels.
        if in_tensor {
            if t.is("Instant")
                && toks.get(i + 1).is_some_and(|n| n.is(":"))
                && toks.get(i + 2).is_some_and(|n| n.is(":"))
                && toks.get(i + 3).is_some_and(|n| n.is("now"))
            {
                out.push(diag(
                    t.line,
                    "`Instant::now()` in tensor library code; kernels must be pure \
                     functions of their inputs — time belongs in the bench and serve \
                     layers"
                        .to_string(),
                ));
            }
            if t.is("env")
                && toks.get(i + 1).is_some_and(|n| n.is(":"))
                && toks.get(i + 2).is_some_and(|n| n.is(":"))
                && toks
                    .get(i + 3)
                    .is_some_and(|n| n.kind == TokenKind::Ident && n.text.starts_with("var"))
            {
                out.push(diag(
                    t.line,
                    "environment read in tensor library code; kernel behaviour must not \
                     depend on ambient process state — one-time cached configuration \
                     needs an allow directive stating the caching invariant"
                        .to_string(),
                ));
            }
        }
        // (c) reduction at the end of a `par_*` chain.
        if (t.is("sum") || t.is("product"))
            && i > 0
            && toks[i - 1].is(".")
            && toks.get(i + 1).is_some_and(|n| n.is("("))
        {
            // Scan back through the current statement for a `par_*` link.
            let mut j = i;
            let mut par = false;
            while j > 0 {
                j -= 1;
                let tj = &toks[j];
                if tj.is(";") || tj.is("{") || tj.is("}") {
                    break;
                }
                if tj.kind == TokenKind::Ident && tj.text.starts_with("par_") {
                    par = true;
                    break;
                }
            }
            if par {
                out.push(diag(
                    t.line,
                    format!(
                        "`.{}()` on a parallel iterator chain; float reduction order \
                         would vary with the worker count — reduce per-shard and combine \
                         in a fixed order",
                        t.text
                    ),
                ));
            }
        }
    }
}
