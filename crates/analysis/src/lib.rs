#![forbid(unsafe_code)]
//! `vitcod-analysis` — a dependency-free static analyzer for the
//! ViTCoD workspace, shipped as the `vitcod-lint` binary.
//!
//! The analyzer enforces the project's cross-cutting invariants —
//! the ones `rustc` and clippy cannot see because they are *this
//! codebase's* contracts, not the language's:
//!
//! | rule | contract |
//! |------|----------|
//! | V001 | serving library code never panics |
//! | V002 | lock discipline: no guard held across a blocking call, no lock-order cycles |
//! | V003 | every public Backend-dispatching kernel is covered by an agreement test |
//! | V004 | determinism hygiene: no float `==`, no wall clock/env in kernels |
//! | V005 | `#![forbid(unsafe_code)]` everywhere, zero `unsafe` tokens |
//!
//! The pipeline is a hand-rolled lexer ([`lexer`]) feeding a
//! lightweight item scanner ([`source`]); rules ([`rules`]) run over
//! tokens plus recovered structure, and inline
//! `// vitcod-lint: allow(V00x, reason)` directives ([`directives`])
//! filter the result. See [`diag::explain`] for the per-rule detail.

pub mod diag;
pub mod directives;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

use std::io;
use std::path::Path;

pub use diag::{Diagnostic, LockEdge, LockGraph, Report};
pub use source::{FileKind, SourceFile};

/// Analyzes pre-built [`SourceFile`]s (the fixture-test entry point).
pub fn analyze_files(files: &[SourceFile]) -> Report {
    let (per_file, lock_graph) = rules::run_all(files);
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut allows_used = 0usize;
    for (file, raw) in files.iter().zip(per_file) {
        let directives = directives::scan(file);
        diagnostics.extend(directives::apply(file, &directives, raw));
        allows_used += directives.allows.iter().filter(|a| a.used.get()).count();
    }
    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Report {
        diagnostics,
        lock_graph,
        files_scanned: files.len(),
        allows_used,
    }
}

/// Analyzes the workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`).
pub fn analyze(root: &Path) -> io::Result<Report> {
    let files = workspace::load_workspace(root)?;
    Ok(analyze_files(&files))
}
