//! Inline allow directives: `// vitcod-lint: allow(V00x, reason)`.
//!
//! A directive suppresses one rule on one line — the line it trails,
//! or, for a comment standing on its own line, the next line that
//! carries code. Every directive must state a reason: an allow is a
//! *documented invariant* ("infallible: length checked above"), not an
//! opt-out. Directives that fail to parse, name an unknown rule, omit
//! the reason, or suppress nothing are themselves diagnostics (`V000`),
//! so stale allows cannot accumulate.

use std::cell::Cell;

use crate::diag::{Diagnostic, RULE_IDS};
use crate::source::SourceFile;

/// One parsed allow directive.
#[derive(Debug)]
pub struct Allow {
    /// Rule being allowed (`V001`…).
    pub rule: String,
    /// The stated reason.
    pub reason: String,
    /// Line the directive applies to.
    pub applies_to: u32,
    /// Line the directive itself sits on.
    pub line: u32,
    /// Whether it suppressed at least one diagnostic.
    pub used: Cell<bool>,
}

/// Directive scan result: valid allows plus `V000` hygiene diagnostics.
#[derive(Debug, Default)]
pub struct Directives {
    /// Valid allows, in source order.
    pub allows: Vec<Allow>,
    /// Malformed-directive diagnostics.
    pub errors: Vec<Diagnostic>,
}

const MARKER: &str = "vitcod-lint:";

/// Scans `file`'s comments for directives.
pub fn scan(file: &SourceFile) -> Directives {
    let mut out = Directives::default();
    for comment in &file.lexed.comments {
        // Doc comments describe the directive syntax; only plain
        // comments carry live directives.
        let is_doc = comment.text.starts_with("///")
            || comment.text.starts_with("//!")
            || comment.text.starts_with("/**")
            || comment.text.starts_with("/*!");
        if is_doc {
            continue;
        }
        let Some(at) = comment.text.find(MARKER) else {
            continue;
        };
        let rest = comment.text[at + MARKER.len()..].trim();
        let err = |msg: String| Diagnostic {
            file: file.rel_path.clone(),
            line: comment.line,
            rule: "V000",
            message: msg,
        };
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.rfind(')').map(|end| &r[..end]))
        else {
            out.errors.push(err(format!(
                "malformed directive '{}': expected `vitcod-lint: allow(V00x, reason)`",
                rest.chars().take(60).collect::<String>()
            )));
            continue;
        };
        let Some((rule, reason)) = args.split_once(',') else {
            out.errors.push(err(
                "allow directive must carry a reason: `allow(V00x, reason)`".to_string(),
            ));
            continue;
        };
        let rule = rule.trim();
        let reason = reason.trim();
        if !RULE_IDS.contains(&rule) {
            out.errors.push(err(format!(
                "allow directive names unknown rule '{rule}' (known: {})",
                RULE_IDS.join(", ")
            )));
            continue;
        }
        if reason.is_empty() {
            out.errors.push(err(format!(
                "allow({rule}) directive must state a non-empty reason"
            )));
            continue;
        }
        let applies_to = if comment.has_code_before {
            comment.line
        } else {
            // A standalone directive comment governs the next code line.
            file.lexed
                .tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > comment.line)
                .unwrap_or(comment.line)
        };
        out.allows.push(Allow {
            rule: rule.to_string(),
            reason: reason.to_string(),
            applies_to,
            line: comment.line,
            used: Cell::new(false),
        });
    }
    out
}

/// Filters `diags`, consuming matching allows; appends a `V000` for
/// every allow that suppressed nothing.
pub fn apply(
    file: &SourceFile,
    directives: &Directives,
    diags: Vec<Diagnostic>,
) -> Vec<Diagnostic> {
    let mut kept: Vec<Diagnostic> = diags
        .into_iter()
        .filter(|d| {
            let allowed = directives
                .allows
                .iter()
                .find(|a| a.rule == d.rule && a.applies_to == d.line);
            if let Some(a) = allowed {
                a.used.set(true);
                false
            } else {
                true
            }
        })
        .collect();
    kept.extend(directives.errors.iter().cloned());
    for a in &directives.allows {
        if !a.used.get() {
            kept.push(Diagnostic {
                file: file.rel_path.clone(),
                line: a.line,
                rule: "V000",
                message: format!(
                    "unused allow({}) directive (line {} raises no {} diagnostic); remove it",
                    a.rule, a.applies_to, a.rule
                ),
            });
        }
    }
    kept
}
