//! Workspace discovery: reads the root `Cargo.toml` member list,
//! resolves each member's package name, and enumerates its Rust
//! sources. Vendored stand-ins under `vendor/` are out of scope (they
//! mirror external crates' APIs, not our invariants), as are build
//! artifacts under `target/` and the analyzer's own lint fixtures
//! under `tests/fixtures/` (which exist to violate the rules).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::source::{FileKind, SourceFile};

/// One discovered workspace member.
#[derive(Debug)]
pub struct Member {
    /// Package name from the member's `Cargo.toml`.
    pub name: String,
    /// Member directory, absolute.
    pub dir: PathBuf,
}

/// Parses the root manifest's `members = [...]` list plus the root
/// package itself (the workspace root doubles as the `vitcod` facade
/// crate), excluding `vendor/`.
pub fn discover_members(root: &Path) -> io::Result<Vec<Member>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with("members") && line.contains('[') {
            in_members = true;
        }
        if in_members {
            let mut rest = line;
            while let Some(start) = rest.find('"') {
                let tail = &rest[start + 1..];
                let Some(end) = tail.find('"') else { break };
                let member = &tail[..end];
                if !member.starts_with("vendor/") {
                    dirs.push(root.join(member));
                }
                rest = &tail[end + 1..];
            }
            if line.contains(']') {
                in_members = false;
            }
        }
    }
    // The root package (workspace manifest carries a [package] too).
    if manifest.contains("[package]") {
        dirs.push(root.to_path_buf());
    }
    let mut members = Vec::new();
    for dir in dirs {
        let name = package_name(&dir.join("Cargo.toml"))?;
        members.push(Member { name, dir });
    }
    Ok(members)
}

/// Extracts `name = "..."` from the `[package]` section.
fn package_name(manifest_path: &Path) -> io::Result<String> {
    let text = fs::read_to_string(manifest_path)?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package && line.starts_with("name") {
            if let Some(name) = line.split('"').nth(1) {
                return Ok(name.to_string());
            }
        }
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidData,
        format!("no [package] name in {}", manifest_path.display()),
    ))
}

/// Loads and scans every Rust source of every non-vendored member.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let members = discover_members(root)?;
    let mut files: Vec<SourceFile> = Vec::new();
    for m in &members {
        for sub in ["src", "tests", "benches", "examples"] {
            let dir = m.dir.join(sub);
            if !dir.is_dir() {
                continue;
            }
            let kind = if sub == "src" {
                FileKind::Lib
            } else {
                FileKind::TestCode
            };
            let mut paths = Vec::new();
            collect_rs(&dir, &mut paths)?;
            paths.sort();
            for path in paths {
                let rel = rel_path(root, &path);
                if rel.contains("/fixtures/") || rel.contains("/target/") {
                    continue;
                }
                // The root facade's src/ must not recurse into crates/.
                if m.dir == root && rel.starts_with("crates/") {
                    continue;
                }
                let text = fs::read_to_string(&path)?;
                let is_root = is_crate_root(&m.dir, &path);
                files.push(SourceFile::new(&rel, &m.name, kind, is_root, &text));
            }
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// `src/lib.rs`, `src/main.rs` and `src/bin/*.rs` are crate roots and
/// must carry `#![forbid(unsafe_code)]`.
fn is_crate_root(member_dir: &Path, path: &Path) -> bool {
    let Ok(rel) = path.strip_prefix(member_dir) else {
        return false;
    };
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    match parts.as_slice() {
        [src, file] if src == "src" => file == "lib.rs" || file == "main.rs",
        [src, bin, file] if src == "src" && bin == "bin" => file.ends_with(".rs"),
        _ => false,
    }
}
