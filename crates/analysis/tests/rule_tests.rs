//! Fixture-driven rule tests: every rule V000–V005 demonstrated on a
//! positive fixture (violations caught, with exact lines) and a
//! negative fixture (correct code stays clean).

use vitcod_analysis::{analyze_files, FileKind, Report, SourceFile};

fn serve_lib(file_name: &str, text: &str) -> SourceFile {
    SourceFile::new(
        &format!("crates/serve/src/{file_name}"),
        "vitcod-serve",
        FileKind::Lib,
        false,
        text,
    )
}

fn count(report: &Report, rule: &str) -> usize {
    report.diagnostics.iter().filter(|d| d.rule == rule).count()
}

fn lines(report: &Report, rule: &str) -> Vec<u32> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn v001_catches_every_panic_path() {
    let file = serve_lib("fixture.rs", include_str!("fixtures/v001_bad.rs"));
    let report = analyze_files(&[file]);
    assert_eq!(count(&report, "V001"), 6, "{:#?}", report.diagnostics);
    // unwrap, expect, panic!, todo!, unreachable!, v[i] — and nothing
    // from the range slice or the #[cfg(test)] module.
    assert_eq!(lines(&report, "V001"), [6, 10, 14, 18, 24, 29]);
    assert_eq!(report.diagnostics.len(), 6);
}

#[test]
fn v001_panic_free_code_is_clean() {
    let file = serve_lib("fixture.rs", include_str!("fixtures/v001_good.rs"));
    let report = analyze_files(&[file]);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    assert_eq!(report.allows_used, 1);
}

#[test]
fn v002_flags_guards_across_blocking_calls() {
    let file = serve_lib(
        "queue_fix.rs",
        include_str!("fixtures/v002_blocking_bad.rs"),
    );
    let report = analyze_files(&[file]);
    assert_eq!(count(&report, "V002"), 3, "{:#?}", report.diagnostics);
    // recv under guard, sleep under guard, re-acquisition.
    assert_eq!(lines(&report, "V002"), [16, 23, 29]);
    // The nested acquisition contributes an order edge, not a finding.
    assert_eq!(report.lock_graph.edges.len(), 1);
    let e = &report.lock_graph.edges[0];
    assert_eq!(e.from, "queue_fix.state");
    assert_eq!(e.to, "queue_fix.side");
    assert_eq!(e.function, "nested_order");
    assert!(report.lock_graph.cycles.is_empty());
}

#[test]
fn v002_detects_lock_order_cycles() {
    let file = serve_lib("pair_fix.rs", include_str!("fixtures/v002_cycle_bad.rs"));
    let report = analyze_files(&[file]);
    assert_eq!(report.lock_graph.cycles.len(), 1, "{:?}", report.lock_graph);
    let cycle = &report.lock_graph.cycles[0];
    assert!(cycle.contains(&"pair_fix.alpha".to_string()));
    assert!(cycle.contains(&"pair_fix.beta".to_string()));
    assert_eq!(count(&report, "V002"), 1);
    assert!(report.diagnostics[0].message.contains("cycle"));
}

#[test]
fn v002_correct_lock_discipline_is_clean() {
    let file = serve_lib("waiter_fix.rs", include_str!("fixtures/v002_good.rs"));
    let report = analyze_files(&[file]);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    // The lock still registers as a graph node, with no edges.
    assert!(report
        .lock_graph
        .nodes
        .contains(&"waiter_fix.state".to_string()));
    assert!(report.lock_graph.edges.is_empty());
}

#[test]
fn v003_requires_backend_entry_points_to_be_tested() {
    let lib_text = "pub fn covered(b: Backend) -> u32 { 1 }\n\
                    pub fn uncovered(b: Backend) -> u32 { 2 }\n\
                    pub fn no_backend(x: u32) -> u32 { x }\n\
                    fn private_helper(b: Backend) -> u32 { 3 }\n";
    let lib = SourceFile::new(
        "crates/tensor/src/kernels.rs",
        "vitcod-tensor",
        FileKind::Lib,
        false,
        lib_text,
    );
    let tests = SourceFile::new(
        "crates/tensor/tests/agreement.rs",
        "vitcod-tensor",
        FileKind::TestCode,
        false,
        "fn t() { covered(Backend::Scalar); }\n",
    );
    let report = analyze_files(&[lib, tests]);
    assert_eq!(count(&report, "V003"), 1, "{:#?}", report.diagnostics);
    assert!(report.diagnostics[0].message.contains("uncovered"));

    // Without the test file, both public Backend fns are flagged.
    let lib = SourceFile::new(
        "crates/tensor/src/kernels.rs",
        "vitcod-tensor",
        FileKind::Lib,
        false,
        lib_text,
    );
    let report = analyze_files(&[lib]);
    assert_eq!(count(&report, "V003"), 2);
}

#[test]
fn v003_ignores_modules_outside_the_covered_set() {
    let lib = SourceFile::new(
        "crates/tensor/src/layout.rs",
        "vitcod-tensor",
        FileKind::Lib,
        false,
        "pub fn helper(b: Backend) -> u32 { 1 }\n",
    );
    let report = analyze_files(&[lib]);
    assert!(report.diagnostics.is_empty());
}

#[test]
fn v004_catches_determinism_hazards() {
    let file = SourceFile::new(
        "crates/tensor/src/determinism_fix.rs",
        "vitcod-tensor",
        FileKind::Lib,
        false,
        include_str!("fixtures/v004_bad.rs"),
    );
    let report = analyze_files(&[file]);
    assert_eq!(count(&report, "V004"), 6, "{:#?}", report.diagnostics);
    // Three float compares, Instant::now, env read, par-chain sum —
    // the zero sentinel and the serial reduction stay clean.
    assert_eq!(lines(&report, "V004"), [5, 6, 7, 17, 22, 26]);
}

#[test]
fn v004_deterministic_code_is_clean() {
    let file = SourceFile::new(
        "crates/tensor/src/determinism_fix.rs",
        "vitcod-tensor",
        FileKind::Lib,
        false,
        include_str!("fixtures/v004_good.rs"),
    );
    let report = analyze_files(&[file]);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    assert_eq!(report.allows_used, 1);
}

#[test]
fn v005_requires_forbid_and_flags_unsafe() {
    let file = SourceFile::new(
        "crates/io/src/lib.rs",
        "vitcod-io",
        FileKind::Lib,
        true,
        include_str!("fixtures/v005_bad.rs"),
    );
    let report = analyze_files(&[file]);
    assert_eq!(count(&report, "V005"), 2, "{:#?}", report.diagnostics);
    assert_eq!(lines(&report, "V005"), [1, 6]);
}

#[test]
fn v005_forbidding_crate_root_is_clean() {
    let file = SourceFile::new(
        "crates/io/src/lib.rs",
        "vitcod-io",
        FileKind::Lib,
        true,
        include_str!("fixtures/v005_good.rs"),
    );
    let report = analyze_files(&[file]);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
}

#[test]
fn v000_directive_hygiene() {
    let file = serve_lib(
        "directives_fix.rs",
        include_str!("fixtures/v000_directives.rs"),
    );
    let report = analyze_files(&[file]);
    // Malformed, reason-less, unknown-rule, empty-reason, stale.
    assert_eq!(count(&report, "V000"), 5, "{:#?}", report.diagnostics);
    assert_eq!(lines(&report, "V000"), [11, 13, 15, 17, 19]);
    // The well-formed allow suppressed its V001 and is counted as used.
    assert_eq!(count(&report, "V001"), 0);
    assert_eq!(report.allows_used, 1);
}
