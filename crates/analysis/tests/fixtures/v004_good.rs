//! V004 fixture: the same shapes written deterministically, plus one
//! reasoned allow over a cached environment read. Expected: zero
//! diagnostics, one allow used.

pub fn tolerant_eq(x: f64) -> bool {
    (x - 1.5).abs() < 1e-9
}

pub fn zero_sentinel(v: &[f32]) -> usize {
    v.iter().filter(|&&x| x == 0.0).count()
}

pub fn cached_config() -> Option<String> {
    // vitcod-lint: allow(V004, fixture: read once and cached for the process lifetime)
    std::env::var("VITCOD_FIXTURE").ok()
}

pub fn serial_reduce(v: &[f32]) -> f32 {
    v.iter().sum()
}
