//! V000 fixture: directive hygiene, scanned as serve library code.
//! One well-formed, used allow (suppresses a V001 and raises nothing),
//! and five broken directives. Expected: five V000 diagnostics.

pub fn used_allow(x: Option<u32>) -> u32 {
    // vitcod-lint: allow(V001, fixture: demonstrates a consumed allow)
    x.expect("fixture invariant")
}

pub fn hygiene(a: u32, b: u32) -> u32 {
    // vitcod-lint: allow V001 missing parentheses
    let sum = a + b;
    // vitcod-lint: allow(V001)
    let double = sum * 2;
    // vitcod-lint: allow(V999, no such rule exists)
    let triple = sum * 3;
    // vitcod-lint: allow(V001,   )
    let quad = sum * 4;
    // vitcod-lint: allow(V004, this line raises no V004, so the allow is stale)
    double + triple + quad
}
