//! V004 fixture: determinism violations, scanned as vitcod-tensor
//! library code. Expected: six V004 diagnostics.

pub fn float_eq(x: f32, y: f64, z: f64) -> bool {
    let a = x == 1.5; // non-zero float equality: flagged
    let b = y != 2.5e-3; // non-zero float inequality: flagged
    let c = -0.5 == z; // literal on the left: flagged
    a && b && c
}

pub fn zero_sentinel(v: &[f32]) -> usize {
    // Exact-zero structural sentinel: exempt.
    v.iter().filter(|&&x| x == 0.0).count()
}

pub fn wall_clock() -> u64 {
    let t = std::time::Instant::now(); // flagged
    t.elapsed().as_nanos() as u64
}

pub fn ambient_config() -> Option<String> {
    std::env::var("VITCOD_FIXTURE").ok() // flagged
}

pub fn par_reduce(shards: &[Vec<f32>]) -> f32 {
    par_chunks(shards).map(|c| c.len() as f32).sum() // flagged
}

pub fn serial_reduce(v: &[f32]) -> f32 {
    v.iter().sum() // serial reduction: exempt
}

fn par_chunks(shards: &[Vec<f32>]) -> impl Iterator<Item = &Vec<f32>> {
    shards.iter()
}
