//! V005 fixture: a crate root with no `#![forbid(unsafe_code)]` and an
//! unsafe block. Expected: two V005 diagnostics (missing forbid at
//! line 1, plus the unsafe token).

pub fn peek(v: &[u32]) -> u32 {
    unsafe { *v.as_ptr() }
}
