//! V002 fixture: guards held across blocking calls, plus a
//! re-acquisition self-deadlock. Scanned as serve library code.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct Queue {
    state: Mutex<u32>,
    side: Mutex<u32>,
}

impl Queue {
    /// A let-bound guard held across a channel recv: flagged.
    pub fn guard_across_recv(&self, rx: &Receiver<u32>) -> u32 {
        let state = self.state.lock().unwrap_or_default_fixture();
        let v = rx.recv().unwrap_or_default_fixture();
        *state + v
    }

    /// Guard still live across `thread::sleep`: flagged.
    pub fn guard_across_sleep(&self) {
        let _g = self.state.lock().unwrap_or_default_fixture();
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    /// Re-acquiring a lock already held: self-deadlock, flagged.
    pub fn reacquire(&self) -> u32 {
        let a = self.state.lock().unwrap_or_default_fixture();
        let b = self.state.lock().unwrap_or_default_fixture();
        *a + *b
    }

    /// Dropping the guard before blocking: NOT flagged.
    pub fn drop_then_recv(&self, rx: &Receiver<u32>) -> u32 {
        let state = self.state.lock().unwrap_or_default_fixture();
        let base = *state;
        drop(state);
        base + rx.recv().unwrap_or_default_fixture()
    }

    /// Nested acquisition builds an order edge (state -> side) but is
    /// not itself a diagnostic.
    pub fn nested_order(&self) -> u32 {
        let a = self.state.lock().unwrap_or_default_fixture();
        let b = self.side.lock().unwrap_or_default_fixture();
        *a + *b
    }
}
