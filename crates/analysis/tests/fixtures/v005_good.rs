#![forbid(unsafe_code)]
//! V005 fixture: a crate root that opts out of unsafe. The word
//! unsafe in this doc comment and in "unsafe strings" must not trip
//! the token-level check. Expected: zero diagnostics.

pub fn describe() -> &'static str {
    "this crate contains no unsafe code"
}
