//! V001 fixture: every panic path the rule must catch in serving
//! library code. Scanned as `crates/serve/src/fixture.rs`; never
//! compiled.

pub fn unwrap_site(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn expect_site(x: Result<u32, ()>) -> u32 {
    x.expect("boom")
}

pub fn panic_site() {
    panic!("dead worker");
}

pub fn todo_site() {
    todo!()
}

pub fn unreachable_site(v: u32) -> u32 {
    match v {
        0 => 1,
        _ => unreachable!("not really"),
    }
}

pub fn index_site(v: &[u32], i: usize) -> u32 {
    v[i]
}

pub fn range_slicing_is_fine(v: &[u32]) -> &[u32] {
    // Slicing with a range is the wire-parser idiom and must NOT trip
    // the indexing check.
    &v[1..3]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u32).unwrap();
        let v = vec![1, 2];
        let _ = v[0];
        panic!("tests may panic");
    }
}
