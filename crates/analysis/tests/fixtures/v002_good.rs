//! V002 fixture: correct lock discipline — condvar handoffs, temporary
//! guards that die at end of statement, and scope-bounded guards. Must
//! produce zero diagnostics.

use std::sync::mpsc::Receiver;
use std::sync::{Condvar, Mutex};

pub struct Waiter {
    state: Mutex<u32>,
    ready: Condvar,
}

impl Waiter {
    /// The condvar handoff: the guard rides into `wait`, which releases
    /// the lock while parked. NOT flagged.
    pub fn condvar_wait(&self) -> u32 {
        let mut inner = self.state.lock().unwrap_or_default_fixture();
        while *inner == 0 {
            inner = self.ready.wait(inner).unwrap_or_default_fixture();
        }
        *inner
    }

    /// Same for the timeout variant (guard is an argument).
    pub fn condvar_wait_timeout(&self) -> u32 {
        let mut inner = self.state.lock().unwrap_or_default_fixture();
        let dur = std::time::Duration::from_millis(5);
        while *inner == 0 {
            let (guard, _timeout) = self
                .ready
                .wait_timeout(inner, dur)
                .unwrap_or_default_fixture();
            inner = guard;
        }
        *inner
    }

    /// A temporary guard dies at the end of its statement; the recv on
    /// the next line runs lock-free. NOT flagged.
    pub fn temporary_then_recv(&self, rx: &Receiver<u32>) -> u32 {
        let base = *self.state.lock().unwrap_or_default_fixture();
        base + rx.recv().unwrap_or_default_fixture()
    }

    /// A guard bound inside a block is dead once the block closes.
    pub fn scoped_then_sleep(&self) -> u32 {
        let base = {
            let g = self.state.lock().unwrap_or_default_fixture();
            *g
        };
        std::thread::sleep(std::time::Duration::from_millis(1));
        base
    }
}
