//! V001 fixture: the same shapes written panic-free, plus a reasoned
//! allow. Must produce zero diagnostics.

use std::sync::{Mutex, PoisonError};

pub fn recovered_lock(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn checked_index(v: &[u32], i: usize) -> Option<u32> {
    v.get(i).copied()
}

pub fn allowed_expect(x: Option<u32>) -> u32 {
    // vitcod-lint: allow(V001, fixture invariant: x is always Some here)
    x.expect("fixture invariant")
}

struct Parser {
    pos: usize,
}

impl Parser {
    fn expect(&mut self, b: u8) -> Result<(), ()> {
        let _ = b;
        self.pos += 1;
        Ok(())
    }

    pub fn parse(&mut self) -> Result<(), ()> {
        // A file's own `self.expect(...)` parser method is not
        // `Result::expect` and must not be flagged.
        self.expect(b'[')
    }
}
