//! V002 fixture: two functions acquiring two locks in opposite orders —
//! the classic AB/BA deadlock. The order graph must contain a cycle.

use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock().unwrap_or_default_fixture();
        let b = self.beta.lock().unwrap_or_default_fixture();
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = self.beta.lock().unwrap_or_default_fixture();
        let a = self.alpha.lock().unwrap_or_default_fixture();
        *a + *b
    }
}
