//! The analyzer's strongest test: the workspace it ships in passes its
//! own `--deny-all` bar. Any PR that introduces a panic path in the
//! serve web, an untested Backend kernel, or a lock-order inversion
//! fails this test locally, not just in the CI lint leg.

use std::path::PathBuf;

#[test]
fn workspace_passes_deny_all() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = vitcod_analysis::analyze(&root).expect("workspace must be analyzable");
    assert!(
        report.diagnostics.is_empty(),
        "the workspace must lint clean; found:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // A meaningful scan, not a silently-empty one.
    assert!(
        report.files_scanned > 100,
        "scanned {}",
        report.files_scanned
    );
    // Every allow in the tree is consumed (V000 enforces the reverse).
    assert!(
        report.allows_used >= 5,
        "allows used: {}",
        report.allows_used
    );
}

#[test]
fn lock_graph_is_acyclic_with_known_nodes() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = vitcod_analysis::analyze(&root).expect("workspace must be analyzable");
    assert!(
        report.lock_graph.cycles.is_empty(),
        "lock-order cycles: {:?}",
        report.lock_graph.cycles
    );
    // The serve web's real locks all register as nodes.
    for lock in [
        "queue.inner",
        "ticket.state",
        "stats.inner",
        "server.engines",
    ] {
        assert!(
            report.lock_graph.nodes.contains(&lock.to_string()),
            "missing lock node {lock}; nodes: {:?}",
            report.lock_graph.nodes
        );
    }
}
