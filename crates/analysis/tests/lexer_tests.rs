//! Lexer unit suite: every construct that can hide arbitrary text
//! inside a Rust file must round-trip without leaking fake tokens —
//! `unwrap` inside a raw string or a nested block comment is not a
//! call site.

use vitcod_analysis::lexer::{lex, TokenKind};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
        .collect()
}

fn kinds(src: &str) -> Vec<TokenKind> {
    lex(src).tokens.iter().map(|t| t.kind).collect()
}

#[test]
fn raw_strings_hide_their_content() {
    let src = r##"let s = r#"x.unwrap() "quoted""#;"##;
    assert_eq!(idents(src), ["let", "s"]);
    let lexed = lex(src);
    let strs: Vec<_> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::StrLit)
        .collect();
    assert_eq!(strs.len(), 1);
    assert!(strs[0].text.starts_with("r#\""));
}

#[test]
fn raw_string_hash_fences_must_match() {
    let src = r###"r##"ends at "# no, here"##"###;
    let lexed = lex(src);
    assert_eq!(lexed.tokens.len(), 1);
    assert_eq!(lexed.tokens[0].kind, TokenKind::StrLit);
    assert!(lexed.tokens[0].text.contains("no, here"));
}

#[test]
fn block_comments_nest() {
    let src = "/* a /* b */ c */ fn f() {}";
    assert_eq!(idents(src), ["fn", "f"]);
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 1);
    assert!(lexed.comments[0].text.contains("a /* b */ c"));
}

#[test]
fn lifetimes_are_not_char_literals() {
    let lexed = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
    let lifetimes: Vec<_> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .collect();
    let chars: Vec<_> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::CharLit)
        .collect();
    assert_eq!(lifetimes.len(), 2);
    assert!(lifetimes.iter().all(|t| t.text == "'a"));
    assert_eq!(chars.len(), 1);
    assert_eq!(chars[0].text, "'a'");
}

#[test]
fn escaped_chars_and_static_lifetime() {
    assert_eq!(kinds(r"'\n'"), [TokenKind::CharLit]);
    assert_eq!(kinds("'static"), [TokenKind::Lifetime]);
    assert_eq!(kinds(r"'\u{1F600}'"), [TokenKind::CharLit]);
}

#[test]
fn float_literal_detection() {
    let value = |src: &str| lex(src).tokens[0].float_value();
    assert_eq!(value("1.5"), Some(1.5));
    assert_eq!(value("2.5e-3"), Some(0.0025));
    assert_eq!(value("1_000.5f32"), Some(1000.5));
    assert_eq!(value("0.0"), Some(0.0));
    assert_eq!(value("3"), None);
    assert_eq!(value("0x1F"), None);
    assert!(!lex("1e9").tokens[0].is_float() || lex("1e9").tokens[0].float_value() == Some(1e9));
}

#[test]
fn ranges_do_not_merge_into_floats() {
    // `v[1..3]` must lex `1` and `3` as integers, not `1.` as a float.
    let lexed = lex("v[1..3]");
    let nums: Vec<_> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::NumLit)
        .collect();
    assert_eq!(nums.len(), 2);
    assert!(nums.iter().all(|t| !t.is_float()));
}

#[test]
fn byte_and_c_string_prefixes() {
    assert_eq!(kinds(r#"b"bytes""#), [TokenKind::StrLit]);
    assert_eq!(kinds("b'x'"), [TokenKind::CharLit]);
    assert_eq!(kinds(r###"br#"raw bytes"#"###), [TokenKind::StrLit]);
    assert_eq!(kinds(r#"c"cstr""#), [TokenKind::StrLit]);
    // A bare `b` or `r` followed by something else is an identifier.
    assert_eq!(idents("let b = r + 1;"), ["let", "b", "r"]);
}

#[test]
fn comment_side_channel_positions() {
    let src = "let x = 1; // trailing note\n// standalone line\nlet y = 2;";
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 2);
    assert!(lexed.comments[0].has_code_before);
    assert_eq!(lexed.comments[0].line, 1);
    assert_eq!(lexed.comments[0].text, "// trailing note");
    assert!(!lexed.comments[1].has_code_before);
    assert_eq!(lexed.comments[1].line, 2);
}

#[test]
fn line_numbers_survive_multiline_constructs() {
    let src = "let a = \"two\nlines\";\nlet b = 1;";
    let lexed = lex(src);
    let b = lexed.tokens.iter().find(|t| t.is("b")).unwrap();
    assert_eq!(b.line, 3);
}

#[test]
fn unterminated_constructs_never_panic() {
    for src in [
        "\"open string",
        "/* open comment",
        "r#\"open raw",
        "'x",
        "b'",
    ] {
        let _ = lex(src);
    }
}

#[test]
fn equality_is_two_single_puncts() {
    // The rules rely on `==` arriving as two adjacent `=` tokens.
    let lexed = lex("a == b != c");
    let puncts: Vec<String> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Punct)
        .map(|t| t.text.clone())
        .collect();
    assert_eq!(puncts, ["=", "=", "!", "="]);
}
