#!/usr/bin/env bash
# Run the concurrency-heavy test suites under ThreadSanitizer and
# AddressSanitizer.
#
# Sanitizers need the nightly toolchain (-Zsanitizer + -Zbuild-std); on
# a machine without nightly or the rust-src component this script skips
# gracefully rather than failing, so it can sit in CI as a best-effort
# leg and still be useful locally:
#
#   ./scripts/sanitizers.sh            # tsan + asan
#   ./scripts/sanitizers.sh tsan      # just ThreadSanitizer
#
# TSan findings in the serve/transport suites are almost always real:
# the scoped-thread fan-outs in the kernels are structured so that
# worker writes are disjoint, and the serve web hands data between
# threads only through Mutex/Condvar/channels. See README "Static
# analysis & sanitizers".

set -u

cd "$(dirname "$0")/.."

TARGET_TRIPLE="${TARGET_TRIPLE:-$(rustc -vV | sed -n 's/^host: //p')}"
# The concurrency web: lock handoffs, scoped-thread kernels, sockets.
SAN_PACKAGES=(-p vitcod-tensor -p vitcod-engine -p vitcod-serve -p vitcod-transport)

if ! command -v rustup >/dev/null 2>&1; then
    echo "sanitizers: rustup not found; skipping (sanitizers need nightly)" >&2
    exit 0
fi
if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    echo "sanitizers: no nightly toolchain installed; skipping" >&2
    echo "            (install with: rustup toolchain install nightly --component rust-src)" >&2
    exit 0
fi
if ! rustup component list --toolchain nightly 2>/dev/null \
        | grep -q '^rust-src.*(installed)'; then
    echo "sanitizers: nightly rust-src missing (-Zbuild-std needs it); skipping" >&2
    echo "            (install with: rustup component add rust-src --toolchain nightly)" >&2
    exit 0
fi

run_san() {
    local name="$1" flag="$2"
    echo "=== ${name}: cargo +nightly test (${TARGET_TRIPLE}) ==="
    # Separate target dirs: sanitized artifacts must never mix with the
    # regular build (or with each other).
    RUSTFLAGS="-Zsanitizer=${flag}" \
    RUSTDOCFLAGS="-Zsanitizer=${flag}" \
    CARGO_TARGET_DIR="target/${name}" \
    cargo +nightly test -q -Zbuild-std --target "${TARGET_TRIPLE}" \
        "${SAN_PACKAGES[@]}"
}

status=0
modes="${*:-tsan asan}"
for san in $modes; do
    case "$san" in
        tsan) run_san tsan thread || status=1 ;;
        asan) run_san asan address || status=1 ;;
        *)
            echo "sanitizers: unknown mode '$san' (expected tsan|asan)" >&2
            status=2
            ;;
    esac
done
exit "$status"
