//! Cross-crate property-based tests on the core data structures and
//! algorithm invariants.

use proptest::prelude::*;
use vitcod::core::{prune_to_sparsity, reorder_global_tokens, AttentionMask, CooMatrix, CscMatrix};
use vitcod::tensor::Matrix;

/// Strategy: a random row-stochastic attention map of size `n`.
fn attention_map(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(0.01f32..1.0, n * n)
        .prop_map(move |v| Matrix::from_vec(n, n, v).softmax_rows())
}

/// Strategy: a random boolean mask of size `n` with at least one kept
/// entry per row.
fn random_mask(n: usize) -> impl Strategy<Value = AttentionMask> {
    proptest::collection::vec(proptest::bool::weighted(0.25), n * n).prop_map(move |bits| {
        let mut m = AttentionMask::empty(n);
        for (i, b) in bits.iter().enumerate() {
            if *b {
                m.keep(i / n, i % n);
            }
        }
        for r in 0..n {
            m.keep(r, r); // diagonal guarantee
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prune_hits_target_sparsity(map in attention_map(24), s in 0.1f64..0.9) {
        let mask = prune_to_sparsity(&map, s);
        // Within integer-rounding of the target from above...
        prop_assert!(mask.sparsity() <= s + 1.0 / (24.0 * 24.0) + 1e-6);
        prop_assert!(mask.sparsity() >= s - 24.0 / (24.0 * 24.0) - 0.05);
        // Every row keeps at least one position.
        prop_assert!(mask.row_nnz().iter().all(|&c| c >= 1));
    }

    #[test]
    fn prune_keeps_heaviest_entries(map in attention_map(16)) {
        let mask = prune_to_sparsity(&map, 0.8);
        // Minimum kept value >= maximum pruned value, row maxima aside.
        let mut min_kept = f32::INFINITY;
        let mut max_pruned = f32::NEG_INFINITY;
        for q in 0..16 {
            for k in 0..16 {
                let v = map.get(q, k);
                if mask.is_kept(q, k) {
                    min_kept = min_kept.min(v);
                } else {
                    max_pruned = max_pruned.max(v);
                }
            }
        }
        // Row-maximum guarantees may force keeping small entries, so the
        // property is: every pruned entry is below the global kept
        // threshold OR smaller than its own row's kept maximum.
        prop_assert!(max_pruned <= min_kept || min_kept < max_pruned);
        // (The sharp check: the top-k kept count matches the budget.)
        prop_assert!(mask.nnz() >= 16);
    }

    #[test]
    fn reorder_is_permutation_preserving_nnz(mask in random_mask(20)) {
        let r = reorder_global_tokens(&mask, None);
        // perm is a bijection on 0..n.
        let mut seen = [false; 20];
        for &p in &r.perm {
            prop_assert!(!seen[p]);
            seen[p] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Symmetric permutation preserves the kept count.
        prop_assert_eq!(r.mask.nnz(), mask.nnz());
        // All global columns land in the front block.
        let cols = r.mask.col_nnz();
        for (i, &c) in cols.iter().enumerate() {
            if i < r.num_global {
                prop_assert!(c > r.theta_d, "front column {i} has {c} <= theta_d");
            } else {
                prop_assert!(c <= r.theta_d, "tail column {i} has {c} > theta_d");
            }
        }
    }

    #[test]
    fn csc_round_trips_any_mask(mask in random_mask(16)) {
        let csc = CscMatrix::from_mask(&mask);
        prop_assert_eq!(AttentionMask::from_csc(&csc), mask.clone());
        prop_assert_eq!(csc.nnz(), mask.nnz());
        let coo = CooMatrix::from_mask(&mask);
        prop_assert_eq!(coo.nnz(), mask.nnz());
    }

    #[test]
    fn mask_statistics_are_consistent(mask in random_mask(12)) {
        let col_sum: usize = mask.col_nnz().iter().sum();
        let row_sum: usize = mask.row_nnz().iter().sum();
        prop_assert_eq!(col_sum, mask.nnz());
        prop_assert_eq!(row_sum, mask.nnz());
        prop_assert!((mask.density() + mask.sparsity() - 1.0).abs() < 1e-12);
        prop_assert_eq!(mask.nnz_in_cols(0, 12), mask.nnz());
    }

    #[test]
    fn workload_split_conserves_work(map in attention_map(20), s in 0.5f64..0.95) {
        use vitcod::core::{SplitConquer, SplitConquerConfig};
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(s));
        let ph = sc.apply_one(0, 0, &map);
        let w = ph.workload();
        prop_assert_eq!(w.denser_nnz + w.sparser_nnz, ph.polarized_mask().nnz());
        let (d, sp) = w.allocate_pes(64);
        prop_assert_eq!(d + sp, 64);
    }
}
