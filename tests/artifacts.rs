//! Integration test: the deployment artifacts (compiled program + mask
//! set) round-trip through their serialized forms and drive identical
//! simulation and finetuning behaviour.

// These tests assert bit-identical replay of simulated/serialized
// floats; exact comparison is the point.
#![allow(clippy::float_cmp)]

use vitcod::core::{
    compile_model, load_masks, load_program, save_masks, save_program, AutoEncoderConfig,
    SplitConquer, SplitConquerConfig,
};
use vitcod::model::{AttentionStats, ViTConfig};
use vitcod::sim::{check_buffers, schedule_head, AcceleratorConfig, Phase, ViTCoDAccelerator};

#[test]
fn program_artifact_drives_identical_simulation() {
    let model = ViTConfig::deit_small();
    let stats = AttentionStats::for_model(&model, 0xA51);
    let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
    let program = compile_model(
        &model,
        &sc.apply(&stats.maps),
        Some(AutoEncoderConfig::half(model.heads)),
    );
    let restored = load_program(&save_program(&program)).expect("round trip");

    let acc = ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper());
    let a = acc.simulate_attention(&program);
    let b = acc.simulate_attention(&restored);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(a.macs, b.macs);

    // Buffer feasibility and schedules agree too.
    let hw = AcceleratorConfig::vitcod_paper();
    let ra = check_buffers(&hw, &program);
    let rb = check_buffers(&hw, &restored);
    assert_eq!(ra.len(), rb.len());
    for (x, y) in ra.iter().zip(rb.iter()) {
        assert_eq!(x.demand, y.demand);
    }
    for (la, lb) in program.layers.iter().zip(restored.layers.iter()) {
        for (ha, hb) in la.heads.iter().zip(lb.heads.iter()) {
            let sa = schedule_head(ha, 8);
            let sb = schedule_head(hb, 8);
            assert_eq!(
                sa.scores_in_phase(Phase::Sddmm),
                sb.scores_in_phase(Phase::Sddmm)
            );
        }
    }
}

#[test]
fn mask_artifact_reinstalls_into_a_model() {
    use rand::SeedableRng;
    use vitcod::autograd::ParamStore;
    use vitcod::model::{SyntheticTask, SyntheticTaskConfig, VisionTransformer};

    let task = SyntheticTask::generate(SyntheticTaskConfig {
        train_samples: 8,
        test_samples: 4,
        ..Default::default()
    });
    let cfg = ViTConfig::deit_tiny().reduced_for_training();
    let mut store = ParamStore::new();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
    let mut vit = VisionTransformer::new(
        &cfg,
        task.config.in_dim,
        task.config.num_classes,
        &mut store,
        &mut rng,
    );

    // Derive masks, serialize, reload, install.
    let maps = vit.averaged_attention_maps(&store, &task.train);
    let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.8));
    let heads = sc.apply(&maps);
    let masks: Vec<Vec<vitcod::core::AttentionMask>> = heads
        .iter()
        .map(|l| l.iter().map(|h| h.pruned.clone()).collect())
        .collect();
    let restored = load_masks(&save_masks(&masks)).expect("mask round trip");
    let plan: vitcod::model::SparsityPlan = restored
        .iter()
        .map(|l| l.iter().map(|m| Some(m.to_matrix())).collect())
        .collect();
    vit.set_sparsity_plan(plan);
    assert!(vit.has_masks());

    // The model still runs and respects the pruned positions.
    let mut tape = vitcod::autograd::Tape::new();
    let out = vit.forward(&mut tape, &store, &task.train[0].tokens);
    let probs = tape.head_probs(out.attention_nodes[0], 0);
    for q in 0..restored[0][0].size() {
        for k in 0..restored[0][0].size() {
            if !restored[0][0].is_kept(q, k) {
                assert_eq!(probs.get(q, k), 0.0, "pruned ({q},{k}) must stay zero");
            }
        }
    }
}
