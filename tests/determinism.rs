//! Integration test: every stage of the stack is a pure function of its
//! seeds — identical runs produce bit-identical artifacts.

// Bit-identical floats are the contract under test here, so strict
// comparison is the assertion, not the bug.
#![allow(clippy::float_cmp)]

use vitcod::core::{compile_model, SplitConquer, SplitConquerConfig};
use vitcod::model::{AttentionStats, SyntheticTask, SyntheticTaskConfig, ViTConfig};
use vitcod::sim::{AcceleratorConfig, ViTCoDAccelerator};

#[test]
fn attention_stats_deterministic() {
    let a = AttentionStats::for_model(&ViTConfig::deit_small(), 123);
    let b = AttentionStats::for_model(&ViTConfig::deit_small(), 123);
    for (l, h, m) in a.iter() {
        assert_eq!(m, &b.maps[l][h]);
    }
}

#[test]
fn split_conquer_deterministic() {
    let stats = AttentionStats::for_model(&ViTConfig::deit_tiny(), 7);
    let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
    let a = sc.apply(&stats.maps);
    let b = sc.apply(&stats.maps);
    for (la, lb) in a.iter().zip(b.iter()) {
        for (ha, hb) in la.iter().zip(lb.iter()) {
            assert_eq!(ha.reorder.perm, hb.reorder.perm);
            assert_eq!(ha.pruned, hb.pruned);
            assert_eq!(ha.num_global(), hb.num_global());
        }
    }
}

#[test]
fn simulator_deterministic() {
    let m = ViTConfig::deit_tiny();
    let stats = AttentionStats::for_model(&m, 7);
    let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
    let program = compile_model(&m, &sc.apply(&stats.maps), None);
    let acc = ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper());
    let a = acc.simulate_attention(&program);
    let b = acc.simulate_attention(&program);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(a.macs, b.macs);
}

#[test]
fn synthetic_task_and_training_deterministic() {
    use rand::SeedableRng;
    use vitcod::autograd::ParamStore;
    use vitcod::model::{TrainConfig, Trainer, VisionTransformer};

    let mk = || {
        let task = SyntheticTask::generate(SyntheticTaskConfig {
            train_samples: 24,
            test_samples: 12,
            ..Default::default()
        });
        let cfg = ViTConfig::deit_tiny().reduced_for_training();
        let mut store = ParamStore::new();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let vit = VisionTransformer::new(
            &cfg,
            task.config.in_dim,
            task.config.num_classes,
            &mut store,
            &mut rng,
        );
        let mut trainer = Trainer::new(vit, store);
        let traj = trainer.train(
            &task,
            &TrainConfig {
                epochs: 2,
                ..Default::default()
            },
        );
        (traj, trainer.evaluate(&task.test))
    };
    let (ta, aa) = mk();
    let (tb, ab) = mk();
    assert_eq!(aa, ab);
    for (ea, eb) in ta.epochs.iter().zip(tb.epochs.iter()) {
        assert_eq!(ea.train_loss, eb.train_loss);
        assert_eq!(ea.test_accuracy, eb.test_accuracy);
    }
}
