//! Integration test: the complete ViTCoD flow across every crate —
//! train a ViT on the synthetic task, extract averaged attention maps,
//! split-and-conquer, compile, and simulate on the accelerator against
//! the baselines.

use vitcod::baselines::{SangerSim, SpAttenSim};
use vitcod::core::{
    compile_model, AutoEncoderConfig, PipelineConfig, SplitConquer, SplitConquerConfig,
    ViTCoDPipeline,
};
use vitcod::model::{SyntheticTask, SyntheticTaskConfig, TrainConfig, ViTConfig};
use vitcod::sim::{AcceleratorConfig, ViTCoDAccelerator};

fn quick_task() -> SyntheticTask {
    SyntheticTask::generate(SyntheticTaskConfig {
        train_samples: 64,
        test_samples: 32,
        ..Default::default()
    })
}

#[test]
fn trained_model_masks_flow_to_hardware() {
    let task = quick_task();
    let model = ViTConfig::deit_tiny().reduced_for_training();
    let mut cfg = PipelineConfig::paper_default(model.clone());
    cfg.pretrain = TrainConfig {
        epochs: 5,
        ..Default::default()
    };
    cfg.finetune = TrainConfig {
        epochs: 3,
        lr: 1e-3,
        ..Default::default()
    };
    let report = ViTCoDPipeline::new(cfg).run(&task);

    // Algorithm-side invariants.
    assert!(
        report.achieved_sparsity > 0.8,
        "sparsity {}",
        report.achieved_sparsity
    );
    assert!(!report.polarized.is_empty());

    // Compile the *trained* model's masks for the accelerator and run.
    let program = compile_model(
        &model,
        &report.polarized,
        Some(AutoEncoderConfig::half(model.heads)),
    );
    assert!((program.overall_sparsity() - report.achieved_sparsity).abs() < 0.05);
    let acc = ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper());
    let sim = acc.simulate_attention(&program);
    assert!(sim.total_cycles > 0);
    assert!(sim.utilization > 0.0);
}

#[test]
fn vitcod_beats_baselines_at_paper_sparsity() {
    let model = ViTConfig::deit_small();
    let stats = vitcod::model::AttentionStats::for_model(&model, 99);
    let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
    let program = compile_model(
        &model,
        &sc.apply(&stats.maps),
        Some(AutoEncoderConfig::half(model.heads)),
    );
    let hw = AcceleratorConfig::vitcod_paper();
    let vitcod = ViTCoDAccelerator::new(hw).simulate_attention_scaled(&program, &model);
    let spatten = SpAttenSim::new(hw).simulate_attention(&model, 0.9);
    let sanger = SangerSim::new(hw).simulate_attention(&model, 0.9);

    assert!(
        vitcod.latency_s < sanger.latency_s,
        "ViTCoD {} should beat Sanger {}",
        vitcod.latency_s,
        sanger.latency_s
    );
    assert!(vitcod.latency_s < spatten.latency_s);
    // Fig. 15 shape: SpAtten slower than Sanger on ViTs at 90%.
    assert!(spatten.latency_s > sanger.latency_s);
    // Fig. 19 shape: ViTCoD is also the most energy-efficient.
    assert!(vitcod.energy_j < sanger.energy_j);
    assert!(vitcod.energy_j < spatten.energy_j);
}

#[test]
fn end_to_end_includes_mlp_work_on_all_platforms() {
    let model = ViTConfig::levit_128();
    let hw = AcceleratorConfig::vitcod_paper();
    let stats = vitcod::model::AttentionStats::for_model(&model, 5);
    let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.8));
    let program = compile_model(&model, &sc.apply(&stats.maps), None);

    let v = ViTCoDAccelerator::new(hw);
    assert!(
        v.simulate_end_to_end(&program, &model).total_cycles
            > v.simulate_attention_scaled(&program, &model).total_cycles
    );
    let sp = SpAttenSim::new(hw);
    assert!(
        sp.simulate_end_to_end(&model, 0.8).total_cycles
            > sp.simulate_attention(&model, 0.8).total_cycles
    );
    let sa = SangerSim::new(hw);
    assert!(
        sa.simulate_end_to_end(&model, 0.8).total_cycles
            > sa.simulate_attention(&model, 0.8).total_cycles
    );
}

#[test]
fn finetuning_recovers_accuracy_under_masks() {
    // The paper's core algorithm claim: fixed 80-90% sparse masks plus
    // finetuning keep accuracy close to dense.
    let task = quick_task();
    let model = ViTConfig::deit_small().reduced_for_training();
    let mut cfg = PipelineConfig::paper_default(model);
    cfg.auto_encoder = None; // isolate split-and-conquer
    cfg.split_conquer = Some(SplitConquerConfig::with_sparsity(0.8));
    cfg.pretrain = TrainConfig {
        epochs: 10,
        ..Default::default()
    };
    cfg.finetune = TrainConfig {
        epochs: 8,
        lr: 1e-3,
        ..Default::default()
    };
    let report = ViTCoDPipeline::new(cfg).run(&task);
    assert!(
        report.accuracy_drop() < 0.15,
        "drop {:.3} too large (dense {:.3} -> sparse {:.3})",
        report.accuracy_drop(),
        report.dense_accuracy,
        report.final_accuracy
    );
}
