//! Integration tests asserting the qualitative claims of the paper's
//! evaluation hold in this reproduction (shapes, orderings, crossovers —
//! not absolute numbers).

// These tests assert bit-identical replay of simulated/serialized
// floats; exact comparison is the point.
#![allow(clippy::float_cmp)]

use vitcod::baselines::{GeneralPlatform, SangerSim, SpAttenSim};
use vitcod::core::{compile_model, AutoEncoderConfig, SplitConquer, SplitConquerConfig};
use vitcod::model::{AttentionStats, ViTConfig};
use vitcod::sim::{AcceleratorConfig, Roofline, ViTCoDAccelerator};

fn vitcod_report(model: &ViTConfig, sparsity: f64, ae: bool) -> vitcod::sim::SimReport {
    let stats = AttentionStats::for_model(model, 0xB0A7);
    let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(sparsity));
    let ae_cfg = ae.then(|| AutoEncoderConfig::half(model.heads));
    let program = compile_model(model, &sc.apply(&stats.maps), ae_cfg);
    ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper())
        .simulate_attention_scaled(&program, model)
}

#[test]
fn speedup_grows_with_sparsity() {
    // Fig. 15 / Fig. 17: more sparsity, more speedup, monotonically.
    let m = ViTConfig::deit_small();
    let mut prev = f64::INFINITY;
    for s in [0.5, 0.6, 0.7, 0.8, 0.9, 0.95] {
        let lat = vitcod_report(&m, s, true).latency_s;
        assert!(lat < prev, "latency must fall with sparsity (s={s}: {lat})");
        prev = lat;
    }
}

#[test]
fn general_platforms_rank_cpu_edge_gpu() {
    // Fig. 15(a): CPU slowest, then EdgeGPU, then GPU, for every model.
    for m in ViTConfig::all_paper_models() {
        let cpu = GeneralPlatform::cpu_xeon_6230r()
            .simulate_attention(&m)
            .latency_s;
        let edge = GeneralPlatform::edgegpu_xavier_nx()
            .simulate_attention(&m)
            .latency_s;
        let gpu = GeneralPlatform::gpu_2080ti()
            .simulate_attention(&m)
            .latency_s;
        assert!(
            cpu > edge && edge > gpu,
            "{}: {cpu} / {edge} / {gpu}",
            m.name
        );
    }
}

#[test]
fn vitcod_speedup_over_sanger_in_paper_band() {
    // Paper: 6.8x at 90%, 3.2x at 80% (core attention, DeiT+LeViT mean).
    // Accept the right neighbourhood: [3, 14] at 90%, [1.5, 7] at 80%.
    let hw = AcceleratorConfig::vitcod_paper();
    let sanger = SangerSim::new(hw);
    for (s, lo, hi) in [(0.9, 3.0, 14.0), (0.8, 1.5, 7.0)] {
        let mut ratios = vec![];
        for m in ViTConfig::classification_models() {
            let v = vitcod_report(&m, s, true).latency_s;
            ratios.push(sanger.simulate_attention(&m, s).latency_s / v);
        }
        let mean = ratios
            .iter()
            .product::<f64>()
            .powf(1.0 / ratios.len() as f64);
        assert!(
            (lo..hi).contains(&mean),
            "sparsity {s}: speedup over Sanger {mean:.2} outside [{lo}, {hi}]"
        );
    }
}

#[test]
fn spatten_saturates_beyond_token_granularity() {
    // Table I: SpAtten's coarse-grained pruning caps its exploitable
    // sparsity; beyond the cap extra sparsity gains nothing.
    let sp = SpAttenSim::new(AcceleratorConfig::vitcod_paper());
    let m = ViTConfig::deit_base();
    let r90 = sp.simulate_attention(&m, 0.9).latency_s;
    let r95 = sp.simulate_attention(&m, 0.95).latency_s;
    assert_eq!(
        r90, r95,
        "SpAtten should saturate past its granularity limit"
    );
    // ViTCoD keeps improving.
    assert!(vitcod_report(&m, 0.95, true).latency_s < vitcod_report(&m, 0.9, true).latency_s);
}

#[test]
fn sanger_pays_prediction_on_every_input() {
    // Table I / Fig. 19: dynamic methods carry per-input preprocessing;
    // ViTCoD's fixed masks make preprocessing negligible.
    let m = ViTConfig::deit_base();
    let sanger = SangerSim::new(AcceleratorConfig::vitcod_paper()).simulate_attention(&m, 0.9);
    let vitcod = vitcod_report(&m, 0.9, true);
    let sanger_pre = sanger.breakdown.preprocess_cycles as f64 / sanger.breakdown.total() as f64;
    let vitcod_pre = vitcod.breakdown.preprocess_cycles as f64 / vitcod.breakdown.total() as f64;
    assert!(sanger_pre > 0.25, "Sanger preprocess share {sanger_pre:.2}");
    assert!(vitcod_pre < 0.10, "ViTCoD preprocess share {vitcod_pre:.2}");
}

#[test]
fn auto_encoder_trades_movement_for_compute() {
    // Sec. IV-C / Fig. 19: the AE cuts DRAM traffic and the
    // data-movement latency share, at a small codec compute cost.
    let m = ViTConfig::deit_base();
    let without = vitcod_report(&m, 0.9, false);
    let with = vitcod_report(&m, 0.9, true);
    assert!(with.traffic.dram_total() < without.traffic.dram_total());
    assert!(with.latency_s <= without.latency_s);
    assert!(
        with.breakdown.data_movement_fraction() < without.breakdown.data_movement_fraction(),
        "dm share {:.2} -> {:.2}",
        without.breakdown.data_movement_fraction(),
        with.breakdown.data_movement_fraction()
    );
    assert!(with.phases.codec > 0, "codec compute must be accounted");
}

#[test]
fn roofline_sparse_is_bandwidth_bound_dense_is_not() {
    // Fig. 3: polarized-sparse (no AE) sits in the bandwidth-bound
    // region; the AE moves the workload toward the compute roof.
    let roof = Roofline::from_config(&AcceleratorConfig::vitcod_paper());
    let m = ViTConfig::deit_base();
    let sparse = vitcod_report(&m, 0.9, false);
    let with_ae = vitcod_report(&m, 0.9, true);
    assert!(
        with_ae.arithmetic_intensity() > sparse.arithmetic_intensity(),
        "AE must raise arithmetic intensity"
    );
    // The polarized-sparse workload hugs the bandwidth roof (at or below
    // ~1.5x the ridge), while the AE variant clears it decisively.
    assert!(
        sparse.arithmetic_intensity() < 1.5 * roof.ridge_intensity(),
        "sparse intensity {:.2} vs ridge {:.2}",
        sparse.arithmetic_intensity(),
        roof.ridge_intensity()
    );
    assert!(with_ae.arithmetic_intensity() > roof.ridge_intensity());
}

#[test]
fn reordering_reduces_load_imbalance() {
    // Sec. VI-C: reordering polarizes workloads; without it the global
    // columns sit in the sparser engine and skew the per-line loads.
    use vitcod::core::PruneCriterion;
    let m = ViTConfig::deit_base();
    let stats = AttentionStats::for_model(&m, 0xB0A7);
    let both = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
    let prune_only = SplitConquer::new(SplitConquerConfig {
        criterion: PruneCriterion::TargetSparsity(0.9),
        theta_d: Some(usize::MAX),
    });
    let p_both = compile_model(&m, &both.apply(&stats.maps), None);
    let p_prune = compile_model(&m, &prune_only.apply(&stats.maps), None);
    let imb = |p: &vitcod::core::AcceleratorProgram| {
        let mut v = 0.0;
        let mut c = 0;
        for l in &p.layers {
            for h in &l.heads {
                v += h.sparser_imbalance();
                c += 1;
            }
        }
        v / c as f64
    };
    assert!(
        imb(&p_both) < imb(&p_prune),
        "reordered imbalance {:.2} should be below prune-only {:.2}",
        imb(&p_both),
        imb(&p_prune)
    );
}

#[test]
fn fixed_masks_have_zero_marginal_prediction_cost() {
    // The same compiled program can serve any number of inputs: latency
    // is input-independent (static masks), unlike dynamic baselines.
    let m = ViTConfig::deit_tiny();
    let a = vitcod_report(&m, 0.9, true);
    let b = vitcod_report(&m, 0.9, true);
    assert_eq!(a.total_cycles, b.total_cycles);
}
