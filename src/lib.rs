//! Facade crate for the ViTCoD reproduction workspace.
//!
//! Re-exports every sub-crate under one roof so examples and downstream
//! users write `vitcod::core::...` / `vitcod::sim::...` without tracking
//! the individual packages:
//!
//! * [`tensor`] — dense matrix kernels and int8 quantization;
//! * [`autograd`] — tape-based reverse-mode AD and optimizers;
//! * [`model`] — ViT configurations, FLOPs accounting, the trainable
//!   substrate and synthetic tasks;
//! * [`core`] — the ViTCoD algorithm (split-and-conquer, auto-encoder
//!   accounting, formats, pipeline, compiler interface);
//! * [`sim`] — the cycle-level accelerator simulator, functional
//!   dataflow executors, schedules, buffers, energy/area/roofline;
//! * [`engine`] — compile-once / serve-many inference: frozen
//!   [`engine::CompiledVit`] artifacts (with bit-exact on-disk
//!   save/load) and the batched, tape-free [`engine::Engine`] with
//!   truly-sparse attention;
//! * [`train`] — the sparse-aware training subsystem:
//!   [`train::SparseFinetuner`] owns the polarize → prune →
//!   sparse-finetune → compile loop, with batched single-tape training
//!   steps and nnz-scaled sparse attention backward kernels;
//! * [`serve`] — the serving layer: [`serve::Server`]'s bounded request
//!   queue with dynamic batching (request deadlines, round-robin
//!   per-model fairness, hot engine reload), the multi-model
//!   [`serve::ModelRegistry`] (loadable from disk), and per-model
//!   latency/throughput statistics;
//! * [`transport`] — the network front end: a dependency-free
//!   HTTP/1.1 server ([`transport::HttpServer`]) over the serving
//!   layer, with classify/stats/health/reload endpoints and a minimal
//!   [`transport::HttpClient`];
//! * [`baselines`] — CPU/EdgeGPU/GPU platform models plus the SpAtten
//!   and Sanger simulators.
//!
//! # Example
//!
//! ```
//! use vitcod::core::{compile_model, SplitConquer, SplitConquerConfig};
//! use vitcod::model::{AttentionStats, ViTConfig};
//! use vitcod::sim::{AcceleratorConfig, ViTCoDAccelerator};
//!
//! let model = ViTConfig::deit_tiny();
//! let stats = AttentionStats::for_model(&model, 0);
//! let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
//! let program = compile_model(&model, &sc.apply(&stats.maps), None);
//! let report = ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper())
//!     .simulate_attention(&program);
//! assert!(report.total_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vitcod_autograd as autograd;
pub use vitcod_baselines as baselines;
pub use vitcod_core as core;
pub use vitcod_engine as engine;
pub use vitcod_model as model;
pub use vitcod_serve as serve;
pub use vitcod_sim as sim;
pub use vitcod_tensor as tensor;
pub use vitcod_train as train;
pub use vitcod_transport as transport;
