//! Execution-timeline inspection: render a per-layer ASCII Gantt of the
//! denser/sparser engines, memory phase and preprocessing — the textual
//! analogue of watching the accelerator's waveforms.
//!
//! Run with: `cargo run --example timeline --release`

use vitcod::core::{compile_model, AutoEncoderConfig, SplitConquer, SplitConquerConfig};
use vitcod::model::{AttentionStats, ViTConfig};
use vitcod::sim::{AcceleratorConfig, ViTCoDAccelerator};

fn main() {
    let model = ViTConfig::deit_small();
    let stats = AttentionStats::for_model(&model, 42);
    let acc = ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper());

    for (label, sparsity, ae) in [
        ("split-and-conquer only, 90% sparsity", 0.9, false),
        ("with auto-encoder, 90% sparsity", 0.9, true),
    ] {
        let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(sparsity));
        let ae_cfg = ae.then(|| AutoEncoderConfig::half(model.heads));
        let program = compile_model(&model, &sc.apply(&stats.maps), ae_cfg);
        let (report, trace) = acc.simulate_attention_traced(&program);

        println!(
            "=== {} — {} ({:.1} us) ===",
            model.name,
            label,
            report.latency_s * 1e6
        );
        print!("{}", trace.render(48));
        println!(
            "memory-bound layers: {:.0}%, mean engine balance: {:.2}\n",
            trace.memory_bound_fraction() * 100.0,
            trace.mean_engine_balance()
        );
    }
    println!("reading: '#' marks denser+sparser engines overlapping; M past the engines means");
    println!("the layer waits on DRAM — the region the auto-encoder removes.");
}
