//! Sparse-finetune smoke example: the complete `vitcod-train` loop —
//! train a dense ViT, polarize/prune its attention with
//! split-and-conquer, finetune under the frozen CSC masks on the
//! nnz-scaled sparse path, save the compiled artifact to disk, and
//! serve it through the request-queue server.
//!
//! ```bash
//! cargo run --example finetune_sparse --release
//! ```

use std::time::Duration;

use vitcod::engine::{save_compiled_vit, CompiledVit, Engine, Precision};
use vitcod::model::{SyntheticTask, SyntheticTaskConfig, ViTConfig};
use vitcod::serve::{BatchConfig, ModelRegistry, Server};
use vitcod::train::{SparseFinetuneConfig, SparseFinetuner};

fn main() {
    // 1. The polarize -> prune -> sparse-finetune -> compile loop.
    let task = SyntheticTask::generate(SyntheticTaskConfig {
        train_samples: 64,
        test_samples: 32,
        ..Default::default()
    });
    let cfg = SparseFinetuneConfig::quick(ViTConfig::deit_tiny().reduced_for_training());
    println!(
        "sparse finetune: {} substrate, target sparsity 90%, warmup {} + finetune {} epochs",
        cfg.model.name, cfg.warmup.epochs, cfg.finetune.epochs
    );
    let report = SparseFinetuner::new(cfg).run(&task);
    println!(
        "dense warmup accuracy {:.2} -> sparse accuracy {:.2} \
         ({} heads frozen sparse at {:.1}% mean sparsity, drop {:+.2})",
        report.dense_accuracy,
        report.sparse_accuracy,
        report.sparse_heads,
        report.achieved_sparsity * 100.0,
        report.accuracy_drop()
    );
    assert!(report.sparse_heads > 0, "no heads froze sparse");

    // 2. Persist the finetuned artifact — the training -> serving
    //    boundary is one text file.
    let dir = std::env::temp_dir().join(format!("vitcod-finetune-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    let path = dir.join("deit-finetuned.vitcod");
    std::fs::write(&path, save_compiled_vit(&report.compiled, Precision::Fp32))
        .expect("write artifact");
    println!("saved artifact: {}", path.display());

    // 3. Reload and serve it behind the request queue; predictions must
    //    match the pre-save engine bit for bit.
    let text = std::fs::read_to_string(&path).expect("read artifact");
    let loaded = CompiledVit::load(&text).expect("artifact parses");
    let direct = Engine::builder(report.compiled.clone())
        .build()
        .infer_batch(&task.test);

    let mut registry = ModelRegistry::new();
    registry
        .register("deit-finetuned", Engine::builder(loaded).build())
        .expect("register model");
    let server = Server::start(
        registry,
        BatchConfig {
            max_batch_size: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 64,
            workers: 1,
        },
    );
    let client = server.client();
    for (i, sample) in task.test.iter().enumerate() {
        let served = client
            .classify("deit-finetuned", sample.tokens.clone())
            .expect("serve");
        assert_eq!(served.logits, direct[i].logits, "sample {i} not bit-exact");
    }
    let stats = server.shutdown();
    let model_stats = stats.model("deit-finetuned").expect("served");
    println!(
        "served {} requests through the queue, p99 {:.1} ms — logits bit-exact with the \
         pre-save engine",
        task.test.len(),
        model_stats.p99_latency_s * 1e3
    );

    std::fs::remove_dir_all(&dir).ok();
    println!("ok");
}
