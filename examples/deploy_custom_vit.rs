//! Reconfigurability (paper Fig. 14): deploying a *new* ViT variant with
//! no silicon change — and, since the serving API landed, no retraining
//! of the serving stack either. The same two artifacts cover both
//! targets: a `CompiledVit` for the host engine and an
//! `AcceleratorProgram` for the accelerator.
//!
//! Part 1 trains a small custom variant end to end and serves it through
//! `vitcod::engine`. Part 2 lowers a full-size 577-token custom variant
//! onto the stock accelerator, as the original network-parser +
//! hardware-compiler flow does.
//!
//! Run with: `cargo run --example deploy_custom_vit --release`

use vitcod::core::{
    compile_model, AutoEncoderConfig, PipelineConfig, SplitConquer, SplitConquerConfig,
    ViTCoDPipeline,
};
use vitcod::engine::{accuracy, CompileReport, Engine, Precision};
use vitcod::model::{
    AttentionStats, ModelFamily, StageConfig, SyntheticTask, SyntheticTaskConfig, TrainConfig,
    ViTConfig,
};
use vitcod::sim::{AcceleratorConfig, ViTCoDAccelerator};

/// A custom variant: 384x384 input at patch size 16 -> 577 tokens,
/// 8 heads, 10 layers. Not one of the paper's seven models.
fn custom_full() -> ViTConfig {
    let stage = StageConfig {
        tokens: 577,
        dim: 512,
        heads: 8,
        depth: 10,
    };
    ViTConfig {
        name: "Custom-ViT-384",
        family: ModelFamily::DeiT,
        tokens: stage.tokens,
        dim: stage.dim,
        heads: stage.heads,
        depth: stage.depth,
        mlp_ratio: 4,
        stages: vec![stage],
        stem_macs: 0,
        paper_sparsity: 0.9,
    }
}

fn main() {
    let custom = custom_full();
    println!(
        "deploying {}: {} tokens, {} heads, {} layers",
        custom.name, custom.tokens, custom.heads, custom.depth
    );

    // ---- Part 1: train a reduced twin, compile once, serve many. ----
    let task = SyntheticTask::generate(SyntheticTaskConfig {
        grid: 5, // 26 tokens: a shape none of the stock models use
        ..SyntheticTaskConfig::default()
    });
    let reduced = ViTConfig {
        tokens: 26,
        dim: 32,
        heads: 4,
        depth: 3,
        mlp_ratio: 2,
        stages: vec![StageConfig {
            tokens: 26,
            dim: 32,
            heads: 4,
            depth: 3,
        }],
        ..custom.clone()
    };
    let cfg = PipelineConfig {
        model: reduced,
        pretrain: TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        },
        finetune: TrainConfig {
            epochs: 4,
            lr: 1e-3,
            ..TrainConfig::default()
        },
        auto_encoder: None,
        split_conquer: Some(SplitConquerConfig::with_sparsity(custom.paper_sparsity)),
        seed: 0xCAFE,
    };
    println!("\ntraining a reduced twin on the synthetic task ...");
    let report = ViTCoDPipeline::new(cfg).run(&task);
    println!(
        "accuracy: dense {:.1}% -> sparse {:.1}% at {:.1}% sparsity",
        report.dense_accuracy * 100.0,
        report.final_accuracy * 100.0,
        report.achieved_sparsity * 100.0
    );
    let compiled = report.compile();
    let engine = Engine::builder(compiled)
        .precision(Precision::Int8)
        .workers(2)
        .build();
    let predictions = engine.infer_batch(&task.test);
    println!(
        "served {} samples through the int8 engine, accuracy {:.1}%, {} int8 weight bytes",
        predictions.len(),
        accuracy(&predictions, &task.test) * 100.0,
        engine.int8_weight_bytes().unwrap_or(0)
    );

    // ---- Part 2: lower the full-size variant onto the accelerator. ----
    // Parser stage: averaged attention maps -> split-and-conquer.
    let stats = AttentionStats::for_model(&custom, 7);
    let polarized = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9)).apply(&stats.maps);

    // Compiler stage: per-layer programs with global-token counts and
    // PE-allocation hints.
    let program = compile_model(
        &custom,
        &polarized,
        Some(AutoEncoderConfig::half(custom.heads)),
    );
    println!(
        "\ncompiled {} layers for the accelerator; per-layer mean global tokens:",
        program.layers.len()
    );
    for layer in &program.layers {
        println!(
            "  layer {:>2}: {:>5.1} global tokens, {:>9} attention MACs",
            layer.layer,
            layer.mean_global_tokens(),
            layer.total_macs()
        );
    }
    println!(
        "\noverall sparsity {:.1}%, total attention MACs {:.1} M",
        program.overall_sparsity() * 100.0,
        program.total_macs() as f64 / 1e6
    );

    // Execute on the unchanged accelerator.
    let acc = ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper());
    let sim = acc.simulate_attention(&program);
    println!(
        "simulated on the stock 3 mm^2 accelerator: {:.1} us core-attention latency, {:.1}% MAC utilization",
        sim.latency_s * 1e6,
        sim.utilization * 100.0
    );
}
