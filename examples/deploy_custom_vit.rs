//! Reconfigurability (paper Fig. 14): deploying a *new* ViT variant on
//! the already-built accelerator. The network parser extracts the
//! configuration (token count, heads, global tokens per layer) and the
//! hardware compiler lowers it to an accelerator program — a one-time
//! compilation per task, no silicon change.
//!
//! Run with: `cargo run --example deploy_custom_vit --release`

use vitcod::core::{compile_model, AutoEncoderConfig, SplitConquer, SplitConquerConfig};
use vitcod::model::{AttentionStats, ModelFamily, StageConfig, ViTConfig};
use vitcod::sim::{AcceleratorConfig, ViTCoDAccelerator};

fn main() {
    // A custom variant: a 384x384 input at patch size 16 -> 577 tokens,
    // 8 heads, 10 layers. Not one of the paper's seven models.
    let stage = StageConfig {
        tokens: 577,
        dim: 512,
        heads: 8,
        depth: 10,
    };
    let custom = ViTConfig {
        name: "Custom-ViT-384",
        family: ModelFamily::DeiT,
        tokens: stage.tokens,
        dim: stage.dim,
        heads: stage.heads,
        depth: stage.depth,
        mlp_ratio: 4,
        stages: vec![stage],
        stem_macs: 0,
        paper_sparsity: 0.9,
    };
    println!(
        "deploying {}: {} tokens, {} heads, {} layers",
        custom.name, custom.tokens, custom.heads, custom.depth
    );

    // Parser stage: averaged attention maps -> split-and-conquer.
    let stats = AttentionStats::for_model(&custom, 7);
    let polarized = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9)).apply(&stats.maps);

    // Compiler stage: per-layer programs with global-token counts and
    // PE-allocation hints.
    let program = compile_model(
        &custom,
        &polarized,
        Some(AutoEncoderConfig::half(custom.heads)),
    );
    println!(
        "\ncompiled {} layers; per-layer mean global tokens:",
        program.layers.len()
    );
    for layer in &program.layers {
        println!(
            "  layer {:>2}: {:>5.1} global tokens, {:>9} attention MACs",
            layer.layer,
            layer.mean_global_tokens(),
            layer.total_macs()
        );
    }
    println!(
        "\noverall sparsity {:.1}%, total attention MACs {:.1} M",
        program.overall_sparsity() * 100.0,
        program.total_macs() as f64 / 1e6
    );

    // Execute on the unchanged accelerator.
    let acc = ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper());
    let report = acc.simulate_attention(&program);
    println!(
        "\nsimulated on the stock 3 mm^2 accelerator: {:.1} us core-attention latency, {:.1}% MAC utilization",
        report.latency_s * 1e6,
        report.utilization * 100.0
    );
}
