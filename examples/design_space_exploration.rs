//! Hardware design-space exploration: sweep MAC-line counts, DRAM
//! bandwidth and the auto-encoder toggle for DeiT-Base at 90 % sparsity,
//! reporting latency / energy / area so an architect can pick an
//! operating point.
//!
//! Run with: `cargo run --example design_space_exploration --release`

use vitcod::core::{compile_model, AutoEncoderConfig, SplitConquer, SplitConquerConfig};
use vitcod::model::{AttentionStats, ViTConfig};
use vitcod::sim::{total_area_mm2, AcceleratorConfig, ViTCoDAccelerator};

fn main() {
    let model = ViTConfig::deit_base();
    let stats = AttentionStats::for_model(&model, 42);
    let polarized = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9)).apply(&stats.maps);

    println!("Design-space exploration — DeiT-Base core attention @90% sparsity\n");
    println!(
        "{:>9} {:>10} {:>5} {:>13} {:>11} {:>10} {:>11}",
        "MAC lines", "BW (GB/s)", "AE", "latency (us)", "energy (uJ)", "area(mm2)", "util"
    );

    let mut best: Option<(f64, String)> = None;
    for &lines in &[16usize, 32, 64, 128] {
        for &bw in &[38.4e9, 76.8e9, 153.6e9] {
            for &ae in &[false, true] {
                let cfg = AcceleratorConfig {
                    mac_lines: lines,
                    dram_bw_bytes_per_sec: bw,
                    ..AcceleratorConfig::vitcod_paper()
                };
                let ae_cfg = ae.then(|| AutoEncoderConfig::half(model.heads));
                let program = compile_model(&model, &polarized, ae_cfg);
                let report =
                    ViTCoDAccelerator::new(cfg).simulate_attention_scaled(&program, &model);
                let area = total_area_mm2(&cfg);
                println!(
                    "{:>9} {:>10.1} {:>5} {:>13.1} {:>11.1} {:>10.2} {:>10.1}%",
                    lines,
                    bw / 1e9,
                    if ae { "yes" } else { "no" },
                    report.latency_s * 1e6,
                    report.energy_j * 1e6,
                    area,
                    report.utilization * 100.0
                );
                // Objective: energy-delay product per mm^2.
                let edp = report.latency_s * report.energy_j * area;
                let label = format!("{lines} lines, {:.1} GB/s, AE={ae}", bw / 1e9);
                if best.as_ref().map(|(b, _)| edp < *b).unwrap_or(true) {
                    best = Some((edp, label));
                }
            }
        }
    }
    let (edp, label) = best.unwrap();
    println!("\nbest energy-delay-area product: {label} (EDP*area = {edp:.3e})");
    println!("paper's operating point: 64 lines, 76.8 GB/s, AE=true (3 mm^2, 323.9 mW).");
}
