//! Quickstart: sparsify a ViT's attention with ViTCoD's split-and-conquer
//! algorithm, compile it for the accelerator, and measure the speedup
//! over running the same model dense on the same hardware.
//!
//! Run with: `cargo run --example quickstart --release`

use vitcod::core::{compile_model, AutoEncoderConfig, SplitConquer, SplitConquerConfig};
use vitcod::model::{AttentionStats, ViTConfig};
use vitcod::sim::{AcceleratorConfig, ViTCoDAccelerator};

fn main() {
    // 1. Pick a model and obtain its averaged attention maps. Here we use
    //    the statistical ensemble generator; with a trained model you
    //    would call `VisionTransformer::averaged_attention_maps` instead.
    let model = ViTConfig::deit_base();
    let stats = AttentionStats::for_model(&model, 42);
    println!(
        "model: {} ({} tokens, {} heads x {} layers)",
        model.name, model.tokens, model.heads, model.depth
    );

    // 2. Split and conquer: prune to 90 % sparsity and polarize each head
    //    into a denser global-token block plus a sparse residue.
    let sc = SplitConquer::new(SplitConquerConfig::with_sparsity(0.9));
    let polarized = sc.apply(&stats.maps);
    let mean_globals: f64 = polarized
        .iter()
        .flatten()
        .map(|h| h.num_global() as f64)
        .sum::<f64>()
        / (model.depth * model.heads) as f64;
    println!(
        "split-and-conquer: {:.1}% sparsity, {:.1} global tokens per head on average",
        SplitConquer::mean_sparsity(&polarized) * 100.0,
        mean_globals
    );

    // 3. Compile for the accelerator, with the 50 % Q/K auto-encoder.
    let program = compile_model(
        &model,
        &polarized,
        Some(AutoEncoderConfig::half(model.heads)),
    );

    // 4. Simulate on the paper's 3 mm^2 configuration and compare with
    //    the dense workload on identical hardware.
    let acc = ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper());
    let sparse = acc.simulate_attention_scaled(&program, &model);
    let dense_prog = compile_model(
        &model,
        &SplitConquer::new(SplitConquerConfig::with_sparsity(0.0)).apply(&stats.maps),
        None,
    );
    let dense = acc.simulate_attention_scaled(&dense_prog, &model);

    println!(
        "attention-core latency: dense {:.1} us -> ViTCoD {:.1} us  ({:.1}x speedup)",
        dense.latency_s * 1e6,
        sparse.latency_s * 1e6,
        sparse.speedup_over(&dense)
    );
    println!(
        "off-chip traffic: dense {:.1} MB -> ViTCoD {:.1} MB",
        dense.traffic.dram_total() as f64 / 1e6,
        sparse.traffic.dram_total() as f64 / 1e6
    );
    println!(
        "energy: dense {:.0} uJ -> ViTCoD {:.0} uJ",
        dense.energy_j * 1e6,
        sparse.energy_j * 1e6
    );
}
