//! Quickstart: the full ViTCoD lifecycle — **train** a ViT with the
//! two-step sparsification pipeline, **compile** the result into a
//! frozen inference artifact, **serve** it through the batched engine
//! (fp32 and int8), and **simulate** the same workload on the paper's
//! accelerator.
//!
//! Run with: `cargo run --example quickstart --release`

use std::time::Instant;

use vitcod::core::{
    compile_model, AutoEncoderConfig, PipelineConfig, SplitConquer, SplitConquerConfig,
    ViTCoDPipeline,
};
use vitcod::engine::{accuracy, CompileReport, Engine, Precision};
use vitcod::model::{SyntheticTask, SyntheticTaskConfig, TrainConfig, ViTConfig};
use vitcod::sim::{AcceleratorConfig, ViTCoDAccelerator};

fn main() {
    // 1. Train: run the paper's pipeline (pretrain → insert AE, finetune
    //    → split-and-conquer, finetune) on a synthetic task with a
    //    reduced DeiT-Tiny twin, so the example finishes in seconds.
    let task = SyntheticTask::generate(SyntheticTaskConfig::default());
    let model = ViTConfig::deit_tiny().reduced_for_training();
    let mut cfg = PipelineConfig::paper_default(model.clone());
    cfg.pretrain = TrainConfig {
        epochs: 8,
        ..TrainConfig::default()
    };
    cfg.finetune = TrainConfig {
        epochs: 4,
        lr: 1e-3,
        ..TrainConfig::default()
    };
    println!("training {} on the synthetic task ...", model.name);
    let report = ViTCoDPipeline::new(cfg).run(&task);
    println!(
        "pipeline: dense accuracy {:.1}% -> sparse accuracy {:.1}% at {:.1}% attention sparsity",
        report.dense_accuracy * 100.0,
        report.final_accuracy * 100.0,
        report.achieved_sparsity * 100.0
    );

    // 2. Lower the same sparsified model onto the accelerator while the
    //    report still owns its split-and-conquer output, plus an
    //    all-dense comparison program from the trained model's averaged
    //    attention maps (sparsity 0.0 keeps every position).
    let program = compile_model(
        &model,
        &report.polarized,
        Some(AutoEncoderConfig::half(model.heads)),
    );
    let maps = report.trainer.averaged_attention_maps(&task);
    let dense_heads = SplitConquer::new(SplitConquerConfig::with_sparsity(0.0)).apply(&maps);
    let dense_prog = compile_model(&model, &dense_heads, None);

    // 3. Compile: freeze the finetuned weights and per-head CSC indexes
    //    into the serve-many artifact.
    let compiled = report.compile();
    println!(
        "compiled artifact: {} weight scalars, {} sparse heads, {:.1}% mean attention sparsity",
        compiled.num_weight_scalars(),
        compiled.num_sparse_heads(),
        compiled.mean_attention_sparsity() * 100.0
    );

    // 4. Serve: batched tape-free inference. Sparse heads run the real
    //    SDDMM -> sparse-softmax -> SpMM dataflow over their CSC indexes.
    for precision in [Precision::Fp32, Precision::Int8] {
        let engine = Engine::builder(compiled.clone())
            .precision(precision)
            .build();
        let start = Instant::now();
        let predictions = engine.infer_batch(&task.test);
        let elapsed = start.elapsed().as_secs_f64();
        println!(
            "serve {:?}: {} samples in {:.1} ms ({:.0} samples/s), accuracy {:.1}%",
            precision,
            predictions.len(),
            elapsed * 1e3,
            predictions.len() as f64 / elapsed,
            accuracy(&predictions, &task.test) * 100.0
        );
    }

    // 5. Simulate: the same sparse workload on the paper's 3 mm^2
    //    accelerator versus a dense program on identical hardware.
    let acc = ViTCoDAccelerator::new(AcceleratorConfig::vitcod_paper());
    let sparse_sim = acc.simulate_attention(&program);
    let dense_sim = acc.simulate_attention(&dense_prog);
    println!(
        "simulated attention core: dense {:.2} us -> ViTCoD {:.2} us ({:.1}x speedup)",
        dense_sim.latency_s * 1e6,
        sparse_sim.latency_s * 1e6,
        sparse_sim.speedup_over(&dense_sim)
    );
}
