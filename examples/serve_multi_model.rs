//! Multi-model serving smoke example: two compiled ViTs — one fp32
//! dense, one int8 sparse — behind one `vitcod::serve::Server`, with
//! the sparse model round-tripped through an on-disk artifact first.
//!
//! ```bash
//! cargo run --example serve_multi_model --release
//! ```
//!
//! Walks the full serving story: compile → `save_compiled_vit` to a
//! `*.vitcod` file → `ModelRegistry::load_dir` → concurrent clients
//! submitting through the bounded queue → dynamic batches → per-model
//! p50/p99 and batch-fill stats.

use std::time::Duration;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod::autograd::ParamStore;
use vitcod::engine::{save_compiled_vit, CompiledVit, Engine, Precision};
use vitcod::model::{SparsityPlan, ViTConfig, VisionTransformer};
use vitcod::serve::{BatchConfig, ModelRegistry, Server};
use vitcod::tensor::{Initializer, Matrix};

const IN_DIM: usize = 8;
const CLASSES: usize = 4;

fn compile(seed: u64, sparse: bool) -> CompiledVit {
    let cfg = ViTConfig::deit_tiny().reduced_for_training();
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut vit = VisionTransformer::new(&cfg, IN_DIM, CLASSES, &mut store, &mut rng);
    if sparse {
        let n = cfg.tokens;
        let mut mask = Matrix::zeros(n, n);
        for q in 0..n {
            mask.set(q, q, 1.0);
            mask.set(q, 0, 1.0);
            mask.set(q, (q + 1) % n, 1.0);
        }
        let plan: SparsityPlan = (0..cfg.depth)
            .map(|_| (0..cfg.heads).map(|_| Some(mask.clone())).collect())
            .collect();
        vit.set_sparsity_plan(plan);
    }
    CompiledVit::from_parts(&vit, &store)
}

fn main() {
    // 1. Compile two models and persist the sparse one as an int8
    //    artifact — the compile-to-artifact-then-serve lifecycle.
    let dense = compile(1, false);
    let sparse = compile(2, true);
    let dir = std::env::temp_dir().join(format!("vitcod-serve-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    let path = dir.join("deit-sparse.vitcod");
    let text = save_compiled_vit(&sparse, Precision::Int8);
    std::fs::write(&path, &text).expect("write artifact");
    println!(
        "saved int8 artifact: {} ({:.1} KiB, {} sparse heads, {:.0}% attention sparsity)",
        path.display(),
        text.len() as f64 / 1024.0,
        sparse.num_sparse_heads(),
        sparse.mean_attention_sparsity() * 100.0
    );

    // 2. Registry: the sparse model reloaded from disk (it serves at
    //    the artifact's stored int8 precision), the dense one
    //    registered in-process — independent settings per model id.
    let mut registry = ModelRegistry::load_dir(&dir).expect("load artifacts");
    registry
        .register("deit-dense", Engine::builder(dense.clone()).build())
        .expect("register dense");
    println!("registry models: {:?}", registry.ids());

    // 3. Serve: bounded queue, batches flushed at 8 requests or 2 ms.
    let server = Server::start(
        registry,
        BatchConfig {
            max_batch_size: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 32,
            workers: 2,
        },
    );

    // 4. Four concurrent clients, each mixing both models.
    let handles: Vec<_> = (0..4)
        .map(|c| {
            let client = server.client();
            let cfg = dense.config().clone();
            std::thread::spawn(move || {
                for i in 0..8u64 {
                    let tokens =
                        Initializer::Normal { std: 1.0 }.sample(cfg.tokens, IN_DIM, c * 100 + i);
                    let model = if i % 2 == 0 {
                        "deit-dense"
                    } else {
                        "deit-sparse"
                    };
                    let prediction = client.classify(model, tokens).expect("classify");
                    assert!(prediction.class < CLASSES);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    // 5. Stats: per-model latency percentiles and batch fill.
    let stats = server.shutdown();
    println!("\nserved for {:.2}s:", stats.uptime_s);
    for m in &stats.models {
        println!(
            "  {:<12} {:>3} requests in {:>2} batches  fill {:.2}  p50 {:.2}ms  p99 {:.2}ms",
            m.model,
            m.requests,
            m.batches,
            m.mean_batch_fill,
            m.p50_latency_s * 1e3,
            m.p99_latency_s * 1e3
        );
    }
    assert_eq!(stats.total_requests(), 32);
    let _ = std::fs::remove_dir_all(&dir);
    println!("\nserve_multi_model: OK");
}
