//! The full ViTCoD algorithm pipeline (paper Fig. 10) on a trainable
//! model: pretrain a small ViT on a synthetic vision task, insert the
//! learnable Q/K auto-encoder and finetune, then apply split-and-conquer
//! and finetune again — verifying the accuracy survives 90 % attention
//! sparsity.
//!
//! Run with: `cargo run --example train_sparse_vit --release`

use vitcod::core::{PipelineConfig, ViTCoDPipeline};
use vitcod::model::{SyntheticTask, SyntheticTaskConfig, TrainConfig, ViTConfig};

fn main() {
    // A synthetic classification task standing in for ImageNet: smooth
    // background fields (local correlations) plus class anchors at fixed
    // salient positions (global tokens).
    let task = SyntheticTask::generate(SyntheticTaskConfig::default());
    println!(
        "task: {} train / {} test samples, {} tokens, {} classes",
        task.train.len(),
        task.test.len(),
        task.num_tokens(),
        task.config.num_classes
    );

    let model = ViTConfig::deit_small().reduced_for_training();
    let mut cfg = PipelineConfig::paper_default(model);
    cfg.pretrain = TrainConfig {
        epochs: 16,
        ..Default::default()
    };
    cfg.finetune = TrainConfig {
        epochs: 8,
        lr: 1e-3,
        ..Default::default()
    };

    println!("\nrunning: pretrain -> insert AE + finetune -> split&conquer + finetune ...");
    let report = ViTCoDPipeline::new(cfg).run(&task);

    println!("\nresults:");
    println!(
        "  dense (pretrained) accuracy : {:.1}%",
        report.dense_accuracy * 100.0
    );
    if let Some(ae) = &report.ae_trajectory {
        println!(
            "  after AE finetune           : {:.1}% (recon loss {:.4} -> {:.4})",
            ae.final_accuracy() * 100.0,
            ae.epochs.first().map(|e| e.recon_loss).unwrap_or(0.0),
            ae.final_recon_loss()
        );
    }
    println!(
        "  after split&conquer         : {:.1}% at {:.1}% attention sparsity",
        report.final_accuracy * 100.0,
        report.achieved_sparsity * 100.0
    );
    println!(
        "  accuracy drop               : {:+.1}%",
        report.accuracy_drop() * 100.0
    );

    // Inspect one polarized head.
    let head = &report.polarized[0][0];
    println!(
        "\nlayer 0 / head 0 after split&conquer: {} global tokens, denser density {:.2}, sparser density {:.3}",
        head.num_global(),
        head.reorder.denser_density(),
        head.reorder.sparser_density()
    );
    println!("\nmask (█ kept / · pruned):\n{}", head.polarized_mask());
}
