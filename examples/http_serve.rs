//! HTTP serving smoke example: a compiled ViT behind the full network
//! stack — artifact on disk → registry → `Server` → `HttpServer` on a
//! loopback socket — exercised end to end with the bundled client:
//! healthz, single and batch classify, stats, a hot artifact reload,
//! and a graceful shutdown.
//!
//! ```bash
//! cargo run --example http_serve --release
//! ```

use std::time::Duration;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vitcod::autograd::ParamStore;
use vitcod::engine::{save_compiled_vit, CompiledVit, Precision};
use vitcod::model::{ViTConfig, VisionTransformer};
use vitcod::serve::{BatchConfig, ModelRegistry, Server};
use vitcod::tensor::{Initializer, Matrix};
use vitcod::transport::{api::tokens_json, HttpClient, HttpServer, Json, TransportConfig};

const IN_DIM: usize = 8;
const CLASSES: usize = 4;

fn compile(seed: u64) -> CompiledVit {
    let cfg = ViTConfig::deit_tiny().reduced_for_training();
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let vit = VisionTransformer::new(&cfg, IN_DIM, CLASSES, &mut store, &mut rng);
    CompiledVit::from_parts(&vit, &store)
}

fn sample_tokens(seed: u64) -> Matrix {
    let cfg = ViTConfig::deit_tiny().reduced_for_training();
    Initializer::Normal { std: 1.0 }.sample(cfg.tokens, IN_DIM, seed)
}

fn main() {
    // 1. Compile and persist two artifact versions.
    let dir = std::env::temp_dir().join(format!("vitcod-http-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    let v1_path = dir.join("deit-tiny.vitcod");
    let v2_path = dir.join("deit-tiny-v2.vitcod");
    std::fs::write(&v1_path, save_compiled_vit(&compile(1), Precision::Fp32)).unwrap();
    std::fs::write(&v2_path, save_compiled_vit(&compile(2), Precision::Fp32)).unwrap();

    // 2. Serve v1 over a loopback socket.
    let registry = ModelRegistry::load_dir(&dir).expect("load artifacts");
    let server = Server::start(
        registry,
        BatchConfig {
            max_batch_size: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 32,
            workers: 2,
        },
    );
    let http = HttpServer::bind(
        "127.0.0.1:0",
        server,
        TransportConfig {
            // Opt in to wire-triggered reloads, confined to our own
            // artifact directory.
            artifact_root: Some(dir.clone()),
            ..TransportConfig::default()
        },
    )
    .expect("bind loopback");
    println!("serving on http://{}", http.local_addr());

    let mut client = HttpClient::connect(http.local_addr()).expect("connect");

    // 3. Health + a single classify with a wire-level deadline.
    let health = client.get("/healthz").unwrap();
    println!("GET /healthz -> {} {}", health.status, health.body_str());
    assert_eq!(health.status, 200);

    let body = Json::Object(vec![
        ("tokens".into(), tokens_json(&sample_tokens(100))),
        ("timeout_ms".into(), Json::Number(2000.0)),
    ])
    .to_string();
    let resp = client.post("/v1/models/deit-tiny/classify", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let class = resp.json().unwrap().get("class").unwrap().as_u64().unwrap();
    println!("POST classify (single) -> class {class}");
    assert!((class as usize) < CLASSES);

    // 4. A batch classify: one round trip, four serving-layer tickets.
    let batch = Json::Object(vec![(
        "batch".into(),
        Json::Array(
            (0..4)
                .map(|i| {
                    Json::Object(vec![(
                        "tokens".into(),
                        tokens_json(&sample_tokens(200 + i)),
                    )])
                })
                .collect(),
        ),
    )])
    .to_string();
    let resp = client
        .post("/v1/models/deit-tiny/classify", &batch)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let results = resp.json().unwrap();
    let results = results.get("results").unwrap().as_array().unwrap().len();
    println!("POST classify (batch)  -> {results} predictions");
    assert_eq!(results, 4);

    // 5. Hot-swap the artifact and classify again — no restart.
    let reload_body = Json::Object(vec![(
        "path".into(),
        Json::String(v2_path.display().to_string()),
    )])
    .to_string();
    let resp = client
        .post("/v1/models/deit-tiny/reload", &reload_body)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    println!("POST reload -> {}", resp.body_str());
    assert_eq!(
        resp.json().unwrap().get("replaced").unwrap().as_bool(),
        Some(true)
    );
    let resp = client
        .post(
            "/v1/models/deit-tiny/classify",
            &Json::Object(vec![("tokens".into(), tokens_json(&sample_tokens(300)))]).to_string(),
        )
        .unwrap();
    assert_eq!(resp.status, 200);

    // 6. Stats over the wire, then a graceful shutdown.
    let stats = client.get("/v1/stats").unwrap();
    assert_eq!(stats.status, 200);
    let stats = stats.json().unwrap();
    let m = &stats.get("models").unwrap().as_array().unwrap()[0];
    println!(
        "GET /v1/stats -> {} requests, p50 {:.2} ms",
        m.get("requests").unwrap().as_u64().unwrap(),
        m.get("p50_latency_s").unwrap().as_f64().unwrap() * 1e3
    );
    assert_eq!(m.get("requests").unwrap().as_u64(), Some(6));

    let final_stats = http.shutdown();
    assert_eq!(final_stats.total_requests(), 6);
    let _ = std::fs::remove_dir_all(&dir);
    println!("\nhttp_serve: OK");
}
